//! # gpumemsurvey — facade crate
//!
//! Re-exports every crate in the workspace so examples, integration tests
//! and downstream users can depend on a single package. See `README.md` for
//! the architecture overview and `DESIGN.md` for the system inventory.

pub use alloc_atomic;
pub use alloc_cuda;
pub use dyn_graph;
pub use gpu_sim;
pub use gpu_workloads;
pub use gpumem_bench as bench;
pub use gpumem_core as core;

pub use alloc_fdg;
pub use alloc_halloc;
pub use alloc_ouroboros;
pub use alloc_regeff;
pub use alloc_scatter;
pub use alloc_xmalloc;

/// Convenience prelude: the types almost every user touches.
pub mod prelude {
    pub use gpu_sim::{Device, DeviceSpec, LaunchReport, SchedStats};
    pub use gpumem_bench::registry::{
        all_managers, create_manager, ManagerBuilder, ManagerKind, ManagerSelection,
    };
    pub use gpumem_core::{
        chrome_trace_json, occupancy_timeline, validate_chrome_json, EventKind, LatencyHistogram,
        OccupancyTimeline, OpLatencies, Trace, TraceRecorder, Traced,
    };
    pub use gpumem_core::{
        validate_openmetrics, Sample, SloSpec, Telemetry, TelemetryConfig, TelemetrySink,
        TimeSeries,
    };
    pub use gpumem_core::{
        AllocError, Counter, CounterSnapshot, DeviceAllocator, DeviceHeap, DevicePtr, HeapBackend,
        HeapBackendKind, HeapError, HeapSpec, ManagerInfo, Metrics, Pretouch, Sanitized,
        SanitizerConfig, SanitizerReport, ThreadCtx, WarpCtx,
    };
}
