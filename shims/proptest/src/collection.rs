//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length constraint accepted by [`vec`] — built from a `usize` range so the
/// call sites' bare `1..300` literals infer `usize`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.hi - self.len.lo) as u64;
        let n = self.len.lo + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec(strategy, 1..300)`: a vector with length drawn from the range.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_range() {
        let mut rng = TestRng::deterministic("collection-tests");
        let s = vec(0u64..10, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
