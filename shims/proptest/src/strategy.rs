//! Strategies: composable value generators.

use std::marker::PhantomData;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (the arms of [`Union`]).
pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V: std::fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Weighted choice between strategies of one value type — what
/// [`crate::prop_oneof!`] expands to.
#[derive(Clone, Debug)]
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total_weight: u64,
}

impl<V: std::fmt::Debug> Union<V> {
    /// Builds a union; at least one arm, all weights non-zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union { arms, total_weight }
    }
}

/// Type-erases a strategy (used by [`crate::prop_oneof!`] for union arms).
pub fn boxed<S>(s: S) -> BoxedStrategy<S::Value>
where
    S: Strategy + 'static,
{
    BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
}

impl<V: std::fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping")
    }
}

/// Implements `Strategy` for half-open integer ranges (`1u64..9000`).
macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, usize);

/// Types with a canonical "anything" strategy ([`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full value domain of `T` (`any::<u64>()`).
#[derive(Clone, Debug)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A / 0, B / 1), (A / 0, B / 1, C / 2), (A / 0, B / 1, C / 2, D / 3),);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut r);
            assert!((10..20).contains(&v));
            let w = (0usize..3).generate(&mut r);
            assert!(w < 3);
        }
    }

    #[test]
    fn map_applies_function() {
        let mut r = rng();
        let s = (1u64..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut r = rng();
        let s = crate::prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..1000).filter(|_| s.generate(&mut r) == 1).count();
        assert!(ones > 700, "weighted arm should dominate: {ones}");
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b) = (1u64..5, 10u32..12).generate(&mut r);
        assert!((1..5).contains(&a));
        assert!((10..12).contains(&b));
    }
}
