//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The benchmark container builds with no network access, so the real
//! proptest cannot be vendored. This crate re-implements the *subset* of the
//! proptest API the workspace's property tests use — deterministic strategy
//! sampling driven by a seeded xorshift generator — with the same surface
//! syntax (`proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`,
//! `collection::vec`, `any`, `Just`, `ProptestConfig`).
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated input as-is
//!   (`max_shrink_iters` is accepted and ignored).
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   function's name, so failures reproduce across runs and machines.
//! * **Uniform-ish sampling only.** Ranges sample by modulo reduction; no
//!   bias correction, no recursive strategies, no regex strategies.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything the test files import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) choice between strategies producing one value
/// type. Expands to a [`strategy::Union`].
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Asserts a condition inside a property, returning a [`test_runner::TestCaseError`]
/// instead of panicking so the harness can attach the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} (`{:?}` vs `{:?}`)", format!($($fmt)+), l, r);
    }};
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{} (both `{:?}`)", format!($($fmt)+), l, r);
    }};
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test]` functions whose arguments are drawn from
/// strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal: expands each property function inside a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}\ninput: {:#?}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e,
                        ($(&$arg,)+)
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
