//! Test-runner types: configuration, the case-failure error, and the
//! deterministic RNG behind every strategy.

/// Configuration accepted by `#![proptest_config(..)]`. Only `cases` has an
/// effect; `max_shrink_iters` is accepted for source compatibility (this
/// shim never shrinks).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Ignored (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A failed property case — carries the formatted assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// xorshift64* generator seeded from the test name: deterministic across
/// runs and machines, distinct between tests.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (FNV-1a over the bytes).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `[lo, hi)` (modulo reduction; `hi > lo`).
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_label() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x");
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = TestRng::deterministic("y");
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
