//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The benchmark container builds with no network access, so the real
//! criterion cannot be vendored. This crate keeps the workspace's
//! `cargo bench` targets compiling and producing *usable* (if statistically
//! unsophisticated) numbers: every benchmark runs a short warm-up, then
//! `sample_size` timed iterations bounded by `measurement_time`, and the
//! mean/min wall-clock per iteration is printed in a criterion-like format.
//!
//! No outlier analysis, no HTML reports, no comparison against saved
//! baselines.

use std::time::{Duration, Instant};

/// Opaque identifier for one benchmark within a group
/// (`BenchmarkId::new("ScatterAlloc", 64)`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display as `name/param`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// How `iter_batched` amortises setup cost. Accepted and ignored: the shim
/// always re-runs setup per iteration, outside the timed section.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    warm_up: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }

    /// Times `routine` on inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

/// A named set of related benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations to attempt per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Untimed warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Timed measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            target_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b.samples);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing happened per-benchmark).
    pub fn finish(self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        let line = if samples.is_empty() {
            format!("{}/{}: no samples", self.name, id.label)
        } else {
            let total: Duration = samples.iter().sum();
            let mean = total / samples.len() as u32;
            let min = samples.iter().min().expect("non-empty");
            format!(
                "{}/{}: mean {:>12?}  min {:>12?}  ({} samples)",
                self.name,
                id.label,
                mean,
                min,
                samples.len()
            )
        };
        println!("{line}");
        self.criterion.lines.push(line);
    }
}

/// The top-level harness state, passed `&mut` to every group function.
#[derive(Default)]
pub struct Criterion {
    lines: Vec<String>,
}

impl Criterion {
    /// Accepted for compatibility with generated mains; no CLI parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Convenience single-benchmark entry point.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string()).bench_function(name, f);
        self
    }
}

/// Identity function the optimiser must assume reads/writes its argument —
/// same contract as `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function that runs each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert_eq!(c.lines.len(), 2);
        assert!(c.lines[0].starts_with("g/noop:"));
    }

    #[test]
    fn iter_batched_runs_setup_untimed() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("b");
        g.sample_size(2).measurement_time(Duration::from_millis(20));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        g.finish();
        assert_eq!(c.lines.len(), 1);
    }
}
