//! Offline stand-in for the `loom` model checker.
//!
//! The build container has no network access, so the real `loom` crate is
//! unavailable; this shim covers the subset of its API the workspace uses
//! (`loom::model`, `loom::thread::{spawn, yield_now}`, `loom::sync::Arc`,
//! `loom::sync::atomic::*`, `loom::hint::spin_loop`) with a working
//! model checker:
//!
//! * **Cooperative scheduling.** Model threads run on real OS threads, but a
//!   mutex/condvar baton guarantees exactly one runs at a time. Every atomic
//!   operation, fence, yield, spawn and join is a *scheduling point* where
//!   the scheduler picks which thread runs next.
//! * **Exhaustive DFS over schedules.** Each execution records its sequence
//!   of scheduling decisions; [`model`] replays the prefix and systematically
//!   advances the last unexhausted decision until the (bounded) schedule
//!   space is exhausted. Identical prefixes replay deterministically.
//! * **Preemption bounding.** Involuntary context switches per execution are
//!   capped (`LOOM_MAX_PREEMPTIONS`, default 2) — the CHESS result: almost
//!   all concurrency bugs manifest within two preemptions, and the bound
//!   keeps the schedule space tractable. Voluntary switches (yield/spin
//!   hints, blocking joins, thread exit) are unbounded.
//! * **Sequentially consistent exploration.** Atomics are `repr(transparent)`
//!   wrappers over `std` atomics; with one runnable thread at a time and a
//!   mutex handoff between steps, every interleaving the checker explores is
//!   sequentially consistent. Weak-memory reorderings are *not* modeled —
//!   the workspace's `memlint` static pass covers ordering discipline, and
//!   DESIGN.md §9 documents the division of labor.
//!
//! Bugs surface as panics inside the model closure (assertion failures,
//! detected deadlocks, livelocks via the per-execution step cap); [`model`]
//! reports the failing iteration and re-raises the original panic payload.
//!
//! Outside [`model`], every operation falls back to the plain `std`
//! behaviour, so code compiled with `--cfg loom` still runs correctly from
//! ordinary threads (e.g. non-model unit tests or helper threads).

mod rt;

pub use rt::model;

/// Scheduling-aware thread handling (`spawn` / `yield_now` / `JoinHandle`).
pub mod thread {
    pub use crate::rt::{spawn, yield_now, JoinHandle};
}

/// Scheduling-aware spin hint.
pub mod hint {
    /// A spin-loop hint that is also a *yield* scheduling point: inside a
    /// model the current thread steps aside so a peer can make the progress
    /// the spin is waiting for (otherwise a spin loop would explore an
    /// infinity of self-schedules).
    pub fn spin_loop() {
        crate::rt::yield_point();
        std::hint::spin_loop();
    }
}

/// Synchronization primitives (`Arc`, `atomic`).
pub mod sync {
    pub use std::sync::Arc;

    /// Model-checked atomic types, mirroring `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        use crate::rt::op_point;

        /// An atomic fence; a scheduling point inside a model.
        ///
        /// Under cooperative sequentially-consistent scheduling the fence
        /// itself is a no-op for visibility; it still participates in
        /// schedule exploration so fence-adjacent interleavings are covered.
        pub fn fence(order: Ordering) {
            op_point();
            if order != Ordering::Relaxed {
                std::sync::atomic::fence(order);
            }
        }

        macro_rules! atomic_int {
            ($name:ident, $std:ident, $ty:ty) => {
                /// Model-checked atomic integer. `repr(transparent)` over the
                /// `std` atomic, so in-place views of raw memory (and
                /// `Box<[u64]> -> Box<[Atomic..]>` transmutes) stay sound
                /// under `cfg(loom)`.
                #[repr(transparent)]
                #[derive(Default)]
                pub struct $name(std::sync::atomic::$std);

                impl $name {
                    /// Creates a new atomic (const, unlike real loom).
                    pub const fn new(v: $ty) -> Self {
                        Self(std::sync::atomic::$std::new(v))
                    }

                    pub fn load(&self, order: Ordering) -> $ty {
                        op_point();
                        self.0.load(order)
                    }

                    pub fn store(&self, v: $ty, order: Ordering) {
                        op_point();
                        self.0.store(v, order)
                    }

                    pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.swap(v, order)
                    }

                    pub fn compare_exchange(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        op_point();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    /// Treated as the strong variant: spurious failure is a
                    /// scheduling artifact this SC checker does not model.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $ty,
                        new: $ty,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$ty, $ty> {
                        self.compare_exchange(current, new, success, failure)
                    }

                    pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_add(v, order)
                    }

                    pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_sub(v, order)
                    }

                    pub fn fetch_and(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_and(v, order)
                    }

                    pub fn fetch_or(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_or(v, order)
                    }

                    pub fn fetch_xor(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_xor(v, order)
                    }

                    pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_max(v, order)
                    }

                    pub fn fetch_min(&self, v: $ty, order: Ordering) -> $ty {
                        op_point();
                        self.0.fetch_min(v, order)
                    }

                    /// Non-atomic read through exclusive access (not a
                    /// scheduling point: `&mut self` proves no concurrency).
                    pub fn get_mut(&mut self) -> &mut $ty {
                        self.0.get_mut()
                    }

                    pub fn into_inner(self) -> $ty {
                        self.0.into_inner()
                    }
                }

                impl std::fmt::Debug for $name {
                    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                        // Direct (non-scheduling) read: formatting must not
                        // perturb the explored schedule space.
                        f.debug_tuple(stringify!($name))
                            .field(&self.0.load(Ordering::SeqCst))
                            .finish()
                    }
                }

                impl From<$ty> for $name {
                    fn from(v: $ty) -> Self {
                        Self::new(v)
                    }
                }
            };
        }

        atomic_int!(AtomicU32, AtomicU32, u32);
        atomic_int!(AtomicU64, AtomicU64, u64);
        atomic_int!(AtomicUsize, AtomicUsize, usize);
        atomic_int!(AtomicU8, AtomicU8, u8);
        atomic_int!(AtomicI64, AtomicI64, i64);

        /// Model-checked atomic boolean (see [`AtomicU32`] for semantics).
        #[repr(transparent)]
        #[derive(Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub const fn new(v: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn load(&self, order: Ordering) -> bool {
                op_point();
                self.0.load(order)
            }

            pub fn store(&self, v: bool, order: Ordering) {
                op_point();
                self.0.store(v, order)
            }

            pub fn swap(&self, v: bool, order: Ordering) -> bool {
                op_point();
                self.0.swap(v, order)
            }

            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                op_point();
                self.0.compare_exchange(current, new, success, failure)
            }

            pub fn compare_exchange_weak(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                self.compare_exchange(current, new, success, failure)
            }

            pub fn fetch_and(&self, v: bool, order: Ordering) -> bool {
                op_point();
                self.0.fetch_and(v, order)
            }

            pub fn fetch_or(&self, v: bool, order: Ordering) -> bool {
                op_point();
                self.0.fetch_or(v, order)
            }

            pub fn get_mut(&mut self) -> &mut bool {
                self.0.get_mut()
            }

            pub fn into_inner(self) -> bool {
                self.0.into_inner()
            }
        }

        impl std::fmt::Debug for AtomicBool {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_tuple("AtomicBool").field(&self.0.load(Ordering::SeqCst)).finish()
            }
        }

        impl From<bool> for AtomicBool {
            fn from(v: bool) -> Self {
                Self::new(v)
            }
        }
    }
}
