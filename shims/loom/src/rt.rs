//! Cooperative-scheduling model-checker runtime.
//!
//! One OS thread per model thread, exactly one runnable at a time via a
//! mutex/condvar baton. Scheduling decisions form a path; [`model`] explores
//! the path space depth-first with deterministic replay of shared prefixes.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

const DEFAULT_MAX_PREEMPTIONS: usize = 2;
const DEFAULT_MAX_STEPS: usize = 40_000;
const DEFAULT_MAX_ITERATIONS: usize = 1_000_000;

/// Panic payload used to unwind model threads when the execution aborts
/// (another thread hit a bug, or the step cap tripped). The thread wrapper
/// recognises and swallows it; only the *original* failure propagates.
struct AbortToken;

fn env_limit(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    /// Blocked joining the thread with this id.
    Joining(usize),
    Finished,
}

/// One recorded scheduling decision.
struct Choice {
    /// Threads that were eligible at this point, in exploration order.
    candidates: Vec<usize>,
    /// Index into `candidates` currently being explored.
    selected: usize,
    /// The thread that was running *and still runnable* when the decision
    /// was taken (`None` for voluntary handoffs: yields, blocks, exits).
    /// Selecting a different thread than this one costs a preemption.
    current: Option<usize>,
}

struct State {
    threads: Vec<Run>,
    active: usize,
    finished: usize,
    path: Vec<Choice>,
    cursor: usize,
    preemptions: usize,
    steps: usize,
    abort: Option<Box<dyn Any + Send>>,
    max_preemptions: usize,
    max_steps: usize,
}

struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn current_ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

impl Scheduler {
    fn new(path: Vec<Choice>, max_preemptions: usize, max_steps: usize) -> Self {
        Scheduler {
            state: Mutex::new(State {
                threads: vec![Run::Runnable],
                active: 0,
                finished: 0,
                path,
                cursor: 0,
                preemptions: 0,
                steps: 0,
                abort: None,
                max_preemptions,
                max_steps,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        // A poisoned scheduler mutex means a panic escaped the runtime's own
        // bookkeeping (model panics are caught before reaching it); the
        // state is still coherent enough to keep unwinding.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Abort the execution with `payload` (first abort wins).
    fn set_abort(&self, payload: Box<dyn Any + Send>) {
        let mut st = self.lock();
        if st.abort.is_none() {
            st.abort = Some(payload);
        }
        self.cv.notify_all();
    }

    /// Pick the next thread at a scheduling point and hand the baton over.
    ///
    /// `me` is the deciding thread; `runnable_me` says whether it remains
    /// eligible (false for blocks/exits), `yield_point` steps it aside when
    /// a peer is runnable. Returns without blocking when `me` keeps running.
    fn schedule(
        &self,
        mut st: MutexGuard<'_, State>,
        me: usize,
        runnable_me: bool,
        yield_point: bool,
    ) {
        if st.abort.is_some() {
            drop(st);
            abort_unwind();
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            let msg = format!(
                "loom: execution exceeded {} scheduling steps (LOOM_MAX_STEPS) — \
                 likely livelock or unmodelled blocking under this schedule",
                st.max_steps
            );
            st.abort = Some(Box::new(msg));
            self.cv.notify_all();
            drop(st);
            abort_unwind();
        }
        debug_assert_eq!(st.active, me, "only the active thread may reach a scheduling point");

        let next = if st.cursor < st.path.len() {
            // Replay: preserve the recorded decision; recompute preemption
            // accounting so bound checks stay consistent past the prefix.
            let c = &st.path[st.cursor];
            let next = c.candidates[c.selected];
            if let Some(cur) = c.current {
                if next != cur {
                    st.preemptions += 1;
                }
            }
            next
        } else {
            // Fresh decision: enumerate candidates in exploration order.
            let mut candidates: Vec<usize> = Vec::new();
            if runnable_me && !yield_point {
                // Depth-first bias: "keep running" is explored first, so the
                // zero-preemption schedule is the first full execution.
                candidates.push(me);
            }
            // Peers in round-robin order starting after `me` — NOT ascending
            // thread id. With three or more threads, ascending order lets two
            // spinners yield to each other forever (0→1, 1→0) while the
            // thread that would unblock them starves; rotation makes every
            // all-fresh suffix a fair schedule, so spin loops always make
            // global progress on the first execution of each backtrack.
            for off in 1..st.threads.len() {
                let t = (me + off) % st.threads.len();
                if st.threads[t] == Run::Runnable && t != me {
                    candidates.push(t);
                }
            }
            if candidates.is_empty() {
                if runnable_me {
                    // Yield point with no peer: keep spinning alone.
                    candidates.push(me);
                } else if st.finished == st.threads.len() {
                    // Execution complete; wake the orchestrator.
                    self.cv.notify_all();
                    return;
                } else {
                    let blocked: Vec<String> = st
                        .threads
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| matches!(r, Run::Joining(_)))
                        .map(|(t, r)| format!("thread {t} {r:?}"))
                        .collect();
                    let msg =
                        format!("loom: deadlock — no runnable thread ({})", blocked.join(", "));
                    st.abort = Some(Box::new(msg));
                    self.cv.notify_all();
                    return;
                }
            }
            let current = if runnable_me && !yield_point { Some(me) } else { None };
            // Preemption bound: once spent, an involuntarily-switchable
            // thread must keep running.
            let bounded = current.is_some() && st.preemptions >= st.max_preemptions;
            if bounded {
                candidates = vec![me];
            } else if yield_point && candidates.len() > 1 {
                // Yields are voluntary, so they sit outside the preemption
                // bound — branching on *which* peer runs would make every
                // spin iteration a fork and blow the path space up
                // exponentially (CHESS keeps non-preemptive points
                // deterministic for the same reason). The fair rotation
                // above decides; interleaving diversity comes from the
                // preemption-bounded branching at atomic-op points.
                candidates.truncate(1);
            }
            let next = candidates[0];
            if let Some(cur) = current {
                if next != cur {
                    st.preemptions += 1;
                }
            }
            st.path.push(Choice { candidates, selected: 0, current });
            next
        };
        st.cursor += 1;
        st.active = next;
        if next != me {
            self.cv.notify_all();
            if runnable_me {
                self.wait_for_turn(st, me);
            }
        }
    }

    /// Block until `me` holds the baton (or the execution aborts).
    fn wait_for_turn(&self, mut st: MutexGuard<'_, State>, me: usize) {
        loop {
            if st.abort.is_some() {
                drop(st);
                abort_unwind();
            }
            if st.active == me && st.threads[me] == Run::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Mark `me` finished, wake joiners, hand the baton onward.
    fn finish_thread(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = Run::Finished;
        st.finished += 1;
        for r in st.threads.iter_mut() {
            if *r == Run::Joining(me) {
                *r = Run::Runnable;
            }
        }
        if st.abort.is_some() {
            self.cv.notify_all();
            return;
        }
        if st.active == me {
            // The handoff can itself abort (step cap, deadlock); this thread
            // is already past its catch_unwind, so swallow the AbortToken
            // here — the orchestrator propagates the recorded failure.
            let _ = panic::catch_unwind(AssertUnwindSafe(|| self.schedule(st, me, false, false)));
        }
    }
}

fn abort_unwind() -> ! {
    if std::thread::panicking() {
        // Already unwinding (e.g. a Drop impl hit a scheduling point while
        // an AbortToken panic is in flight); don't double-panic.
        // Unreachable in practice because callers check `panicking` first,
        // but keep the runtime abort-safe.
        std::process::abort();
    }
    panic::panic_any(AbortToken);
}

/// Scheduling point for an atomic operation or fence. No-op outside a model.
pub(crate) fn op_point() {
    if std::thread::panicking() {
        // Drop impls running during an abort unwind may touch atomics;
        // perform the operation directly rather than re-entering the
        // scheduler mid-panic.
        return;
    }
    if let Some((sched, me)) = current_ctx() {
        let st = sched.lock();
        sched.schedule(st, me, true, false);
    }
}

/// Yield-flavoured scheduling point (spin hints, `yield_now`): prefers to
/// run a peer so the condition being spun on can change.
pub(crate) fn yield_point() {
    if std::thread::panicking() {
        return;
    }
    if let Some((sched, me)) = current_ctx() {
        let st = sched.lock();
        sched.schedule(st, me, true, true);
    }
}

/// `loom::thread::yield_now`.
pub fn yield_now() {
    if current_ctx().is_some() {
        yield_point();
    } else {
        std::thread::yield_now();
    }
}

/// Handle to a model (or, outside a model, plain `std`) spawned thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    /// Model thread id; `None` when spawned outside a model.
    id: Option<usize>,
}

impl<T> JoinHandle<T> {
    /// Joins the thread, blocking (as a scheduling point) until it exits.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(target), Some((sched, me))) = (self.id, current_ctx()) {
            loop {
                let mut st = sched.lock();
                if st.abort.is_some() {
                    drop(st);
                    abort_unwind();
                }
                if st.threads[target] == Run::Finished {
                    break;
                }
                st.threads[me] = Run::Joining(target);
                sched.schedule(st, me, false, false);
                let st2 = sched.lock();
                sched.wait_for_turn(st2, me);
            }
        }
        match self.inner.join() {
            Ok(Some(v)) => Ok(v),
            // The child unwound via AbortToken; the original failure is
            // propagated by the orchestrator, so unwind quietly here too.
            Ok(None) => abort_unwind(),
            Err(e) => Err(e),
        }
    }
}

/// `loom::thread::spawn`. Inside a model the child becomes a scheduled model
/// thread; outside it degrades to `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        None => {
            let inner = std::thread::spawn(move || Some(f()));
            JoinHandle { inner, id: None }
        }
        Some((sched, me)) => {
            let id = {
                let mut st = sched.lock();
                st.threads.push(Run::Runnable);
                st.threads.len() - 1
            };
            let child_sched = sched.clone();
            let inner = std::thread::spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some((child_sched.clone(), id)));
                {
                    let st = child_sched.lock();
                    // Wait to be scheduled for the first time. AbortToken
                    // unwinds land in the catch below.
                    let r = panic::catch_unwind(AssertUnwindSafe(|| {
                        child_sched.wait_for_turn(st, id);
                    }));
                    if r.is_err() {
                        child_sched.finish_thread(id);
                        return None;
                    }
                }
                let out = panic::catch_unwind(AssertUnwindSafe(f));
                match out {
                    Ok(v) => {
                        child_sched.finish_thread(id);
                        Some(v)
                    }
                    Err(payload) => {
                        if !payload.is::<AbortToken>() {
                            child_sched.set_abort(payload);
                        }
                        child_sched.finish_thread(id);
                        None
                    }
                }
            });
            // The spawn itself is a scheduling point: the child may run
            // before the parent's next step.
            let st = sched.lock();
            sched.schedule(st, me, true, false);
            JoinHandle { inner, id: Some(id) }
        }
    }
}

/// Run `f` under the model checker, exploring every schedule within the
/// preemption bound. Panics (with the original payload) if any explored
/// schedule makes `f` panic; prints the counterexample iteration first.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let f = Arc::new(f);
    let max_preemptions = env_limit("LOOM_MAX_PREEMPTIONS", DEFAULT_MAX_PREEMPTIONS);
    let max_steps = env_limit("LOOM_MAX_STEPS", DEFAULT_MAX_STEPS);
    let max_iterations = env_limit("LOOM_MAX_ITERATIONS", DEFAULT_MAX_ITERATIONS);
    let log = std::env::var("LOOM_LOG").is_ok();

    let mut path: Vec<Choice> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        if iterations > max_iterations {
            panic!(
                "loom: schedule space not exhausted after {max_iterations} executions \
                 (LOOM_MAX_ITERATIONS) — shrink the model or raise the limit"
            );
        }
        let sched = Arc::new(Scheduler::new(std::mem::take(&mut path), max_preemptions, max_steps));
        let root_sched = sched.clone();
        let root_f = f.clone();
        let root = std::thread::spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((root_sched.clone(), 0)));
            let out = panic::catch_unwind(AssertUnwindSafe(|| root_f()));
            if let Err(payload) = out {
                if !payload.is::<AbortToken>() {
                    root_sched.set_abort(payload);
                }
            }
            root_sched.finish_thread(0);
        });

        // Wait for the execution to complete or abort.
        let abort = {
            let mut st = sched.lock();
            loop {
                if st.abort.is_some() || st.finished == st.threads.len() {
                    break;
                }
                st = sched.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            st.abort.take()
        };
        let _ = root.join();

        if let Some(payload) = abort {
            eprintln!(
                "loom: counterexample found on iteration {iterations} \
                 (max_preemptions={max_preemptions})"
            );
            // Runtime-generated aborts (step cap, deadlock) are recorded
            // without panicking, and `resume_unwind` bypasses the panic
            // hook — print the message here or it is lost.
            if let Some(msg) = payload.downcast_ref::<String>() {
                eprintln!("{msg}");
            }
            panic::resume_unwind(payload);
        }

        // Reclaim the recorded path and backtrack to the deepest decision
        // with an unexplored alternative.
        path = std::mem::take(&mut sched.lock().path);
        loop {
            match path.last_mut() {
                None => {
                    if log {
                        eprintln!(
                            "loom: explored {iterations} executions \
                             (max_preemptions={max_preemptions})"
                        );
                    }
                    return;
                }
                Some(c) => {
                    if c.selected + 1 < c.candidates.len() {
                        c.selected += 1;
                        break;
                    }
                    path.pop();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicU32, Ordering};
    use crate::sync::Arc;

    /// Two CAS-incrementing threads: correct under every schedule.
    #[test]
    fn cas_counter_is_race_free() {
        super::model(|| {
            let n = Arc::new(AtomicU32::new(0));
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let n = n.clone();
                    super::spawn(move || loop {
                        let v = n.load(Ordering::Acquire);
                        if n.compare_exchange(v, v + 1, Ordering::AcqRel, Ordering::Relaxed).is_ok()
                        {
                            break;
                        }
                        crate::hint::spin_loop();
                    })
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Acquire), 2);
        });
    }

    /// Load-then-store increment: the checker must find the lost update.
    #[test]
    fn finds_lost_update() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let n = Arc::new(AtomicU32::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let n = n.clone();
                        super::spawn(move || {
                            let v = n.load(Ordering::SeqCst);
                            n.store(v + 1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in h {
                    h.join().unwrap();
                }
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            });
        });
        assert!(found.is_err(), "model checker must catch the lost update");
    }

    /// A correct spin-lock-protected counter: the checker must terminate on
    /// a model with spin loops (yield points step the spinner aside) and
    /// verify it under every schedule.
    #[test]
    fn spin_lock_counter_terminates_and_passes() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let lock = Arc::new(AtomicU32::new(0));
                let data = Arc::new(AtomicU32::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let lock = lock.clone();
                        let data = data.clone();
                        super::spawn(move || {
                            while lock
                                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                                .is_err()
                            {
                                crate::hint::spin_loop();
                            }
                            let v = data.load(Ordering::Relaxed);
                            data.store(v + 1, Ordering::Relaxed);
                            lock.store(0, Ordering::Release);
                        })
                    })
                    .collect();
                for h in h {
                    h.join().unwrap();
                }
                assert_eq!(data.load(Ordering::SeqCst), 2);
            });
        });
        assert!(found.is_ok(), "spin-lock counter model must pass and terminate");
    }

    /// A spin-lock with a broken release (store of the *wrong* value leaves
    /// the lock held... modelled as unlocking before the protected store):
    /// the checker must find the torn critical section.
    #[test]
    fn finds_broken_critical_section() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let lock = Arc::new(AtomicU32::new(0));
                let data = Arc::new(AtomicU32::new(0));
                let h: Vec<_> = (0..2)
                    .map(|_| {
                        let lock = lock.clone();
                        let data = data.clone();
                        super::spawn(move || {
                            while lock
                                .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                                .is_err()
                            {
                                crate::hint::spin_loop();
                            }
                            let v = data.load(Ordering::Relaxed);
                            // BUG: release the lock before the write-back —
                            // the other thread can read the same `v`.
                            lock.store(0, Ordering::Release);
                            data.store(v + 1, Ordering::Relaxed);
                        })
                    })
                    .collect();
                for h in h {
                    h.join().unwrap();
                }
                assert_eq!(data.load(Ordering::SeqCst), 2, "lost update in critical section");
            });
        });
        assert!(found.is_err(), "model checker must catch the torn critical section");
    }

    /// Deadlock detection: self-join-style circular wait via two locks.
    #[test]
    fn detects_deadlock() {
        let found = std::panic::catch_unwind(|| {
            super::model(|| {
                let a = Arc::new(AtomicU32::new(0));
                let b = Arc::new(AtomicU32::new(0));
                let mk = |first: Arc<AtomicU32>, second: Arc<AtomicU32>| {
                    super::spawn(move || {
                        while first
                            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_err()
                        {
                            crate::hint::spin_loop();
                        }
                        while second
                            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_err()
                        {
                            crate::hint::spin_loop();
                        }
                        second.store(0, Ordering::Release);
                        first.store(0, Ordering::Release);
                    })
                };
                let h1 = mk(a.clone(), b.clone());
                let h2 = mk(b.clone(), a.clone());
                h1.join().unwrap();
                h2.join().unwrap();
            });
        });
        // AB/BA lock order: some schedule livelocks both spinners; the step
        // cap must flag it instead of hanging.
        assert!(found.is_err(), "model checker must catch the AB/BA deadlock");
    }

    /// Outside `model`, atomics and spawn degrade to plain std behaviour.
    #[test]
    fn fallback_outside_model() {
        let n = Arc::new(AtomicU32::new(0));
        let n2 = n.clone();
        let h = super::spawn(move || {
            n2.fetch_add(1, Ordering::SeqCst);
        });
        h.join().unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }
}
