//! Quickstart: the survey framework's promise — "integrate a memory manager
//! into an existing project and simply swap out one declaration to change
//! between memory managers".
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- s        # ScatterAlloc only
//! cargo run --release --example quickstart -- o+s+h    # artifact selector
//! cargo run --release --example quickstart -- s@mmap   # mmap-backed heap
//! ```

use std::sync::Arc;

use gpumemsurvey::bench::registry::ManagerSelection;
use gpumemsurvey::prelude::*;

fn main() {
    // Pick managers with the artifact's selector syntax (default: all);
    // an `@mmap`/`@numa` suffix swaps the heap substrate too.
    let sel: ManagerSelection = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("bad selector"))
        .unwrap_or_else(ManagerSelection::default_set);

    // A simulated TITAN V and a small kernel: every thread allocates 64 B,
    // writes to it and (if the manager supports it) frees it again.
    let device = Device::new(DeviceSpec::titan_v());
    const N: u32 = 10_000;

    println!("{:<16}{:>12}{:>12}{:>10}", "manager", "alloc_ms", "free_ms", "ok");
    for &kind in sel.kinds() {
        // The one declaration you swap:
        let alloc: Arc<dyn DeviceAllocator> = kind
            .builder()
            .heap(256 << 20)
            .heap_backend(sel.backend)
            .sms(device.spec().num_sms)
            .build();

        let ptrs = gpumemsurvey::gpu_sim::PerThread::<DevicePtr>::new(N as usize);
        let heap = alloc.heap();
        let t_alloc = device.launch(N, |ctx| match alloc.malloc(ctx, 64) {
            Ok(p) => {
                heap.fill(p, 64, ctx.thread_id as u8 | 1);
                ptrs.set(ctx.thread_id as usize, p);
            }
            Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
        });
        let ptrs = ptrs.into_vec();
        let ok = ptrs.iter().filter(|p| !p.is_null()).count();

        let t_free = if alloc.info().supports_free {
            let d = device.launch(N, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    alloc.free(ctx, p).expect("valid pointer");
                }
            });
            format!("{:.4}", d.as_secs_f64() * 1e3)
        } else if alloc.info().warp_level_only {
            let d = device.launch_warps(N.div_ceil(32), |w| {
                let _ = alloc.free_warp_all(w);
            });
            format!("{:.4}*", d.as_secs_f64() * 1e3)
        } else {
            "n/a".to_string()
        };

        println!(
            "{:<16}{:>12.4}{:>12}{:>9}/{N}",
            kind.label(),
            t_alloc.as_secs_f64() * 1e3,
            t_free,
            ok,
        );
    }
    println!("(* = warp-collective tidy-up, FDGMalloc has no per-allocation free)");
}
