//! Dynamic graph on device memory (the paper's §4.4.3/§4.4.4 scenario):
//! initialise a graph whose adjacencies live in manager-allocated memory,
//! then stream in edge insertions that force power-of-two re-allocations.
//!
//! ```text
//! cargo run --release --example dynamic_graph
//! cargo run --release --example dynamic_graph -- coAuthorsCiteseer
//! ```

use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::dyn_graph::{self, DynGraph};
use gpumemsurvey::prelude::*;

fn main() {
    let graph_name = std::env::args().nth(1).unwrap_or_else(|| "fe_body".to_string());
    let device = Device::new(DeviceSpec::titan_v());
    let csr = dyn_graph::generate(&graph_name, 16, 42);
    println!(
        "graph {}: {} vertices, {} edges (avg degree {:.1})",
        csr.name,
        csr.vertices(),
        csr.edges(),
        csr.avg_degree()
    );

    for kind in [ManagerKind::ScatterAlloc, ManagerKind::OuroVLP, ManagerKind::Halloc] {
        let alloc = kind.builder().heap(1 << 30).sms(device.spec().num_sms).build();
        let (graph, t_init) = DynGraph::init(alloc.as_ref(), &device, &csr);
        assert_eq!(graph.failures(), 0, "{}: init failed", kind.label());

        // Focused updates: heavy churn on few source vertices.
        let edges = dyn_graph::focused_edges(csr.vertices(), 50_000, 20, 7);
        let t_update = graph.insert_edges(&device, &edges);
        assert_eq!(graph.failures(), 0, "{}: updates failed", kind.label());

        // Validate: every edge is stored.
        assert_eq!(graph.total_edges(), csr.edges() + edges.len() as u64);
        let t_destroy = graph.destroy(&device);

        println!(
            "{:<16} init {:>9.4} ms   +50k edges {:>9.4} ms   teardown {:>9.4} ms",
            kind.label(),
            t_init.as_secs_f64() * 1e3,
            t_update.as_secs_f64() * 1e3,
            t_destroy.as_secs_f64() * 1e3,
        );
    }
}
