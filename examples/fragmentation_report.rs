//! Fragmentation and memory-utilization report (the paper's §4.3 test
//! cases): address-range expansion per manager and out-of-memory heap
//! utilization, printed as a table.
//!
//! ```text
//! cargo run --release --example fragmentation_report
//! ```

use gpumemsurvey::bench::registry::{ManagerKind, DEFAULT_KINDS};
use gpumemsurvey::bench::runners::{fragmentation, oom, Bench};
use gpumemsurvey::prelude::*;

fn main() {
    let mut bench = Bench::new(Device::new(DeviceSpec::titan_v()));
    bench.cell_timeout = std::time::Duration::from_secs(5);
    let num = 5_000;

    println!("fragmentation: address range after {num} allocations (× packed baseline)");
    print!("{:<16}", "manager");
    let sizes = [16u64, 256, 4096];
    for s in sizes {
        print!("{s:>10} B");
    }
    println!("{:>14}", "OOM util %");

    for &kind in DEFAULT_KINDS.iter() {
        if kind == ManagerKind::Atomic {
            continue; // the baseline is the definition of 1.0×
        }
        print!("{:<16}", kind.label());
        for s in sizes {
            let cell = fragmentation(&bench, kind, num, s, 2);
            print!("{:>10.2}x", cell.initial.expansion_factor());
        }
        let o = oom(&bench, kind, 64 << 20, 1024);
        println!("{:>13.1}%{}", o.utilization * 100.0, if o.timed_out { " (timeout)" } else { "" });
    }
    println!(
        "\nReading: Ouroboros variants stay near 1x and >95% utilization; \
         the CUDA-Allocator model spans the whole heap (paper Fig. 11a/11b)."
    );
}
