//! Work generation (the paper's §4.4.1 motivating scenario): a kernel whose
//! threads each produce a variable amount of output, compared against the
//! canonical prefix-sum + bulk-allocation baseline.
//!
//! ```text
//! cargo run --release --example work_generation             # 4-64 B
//! cargo run --release --example work_generation -- 4 4096   # 4-4096 B
//! ```

use gpumemsurvey::bench::registry::ManagerKind;
use gpumemsurvey::bench::runners::{work_generation, work_generation_baseline, Bench};
use gpumemsurvey::prelude::*;

fn main() {
    let args: Vec<u64> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
    let (lo, hi) = match args.as_slice() {
        [lo, hi, ..] => (*lo, *hi),
        _ => (4, 64),
    };

    let bench = Bench::new(Device::new(DeviceSpec::titan_v()));
    let kinds = [
        ManagerKind::ScatterAlloc,
        ManagerKind::Halloc,
        ManagerKind::OuroSP,
        ManagerKind::OuroSC,
        ManagerKind::CudaAllocator,
        ManagerKind::RegEffCF,
    ];

    println!("work generation, {lo} B - {hi} B per thread");
    print!("{:<10}", "threads");
    print!("{:>12}", "Baseline");
    for k in kinds {
        print!("{:>16}", k.label());
    }
    println!();

    for exp in (4..=14).step_by(2) {
        let n = 1u32 << exp;
        print!("{n:<10}");
        let base = work_generation_baseline(&bench, n, lo, hi);
        print!("{:>12.4}", base.elapsed.as_secs_f64() * 1e3);
        for kind in kinds {
            let c = work_generation(&bench, kind, n, lo, hi);
            print!("{:>16.4}", c.elapsed.as_secs_f64() * 1e3);
        }
        println!();
    }
    println!("(milliseconds; lower is better — compare each column to Baseline)");
}
