//! A tour of the six Ouroboros variants (paper §2.10): how the page-based
//! and chunk-based managers differ in chunk reuse, and what queue
//! virtualization changes.
//!
//! ```text
//! cargo run --release --example ouroboros_tour
//! ```

use gpumemsurvey::alloc_ouroboros::{OuroSC, OuroSP, OuroVAC, OuroVLP};
use gpumemsurvey::prelude::*;

fn main() {
    let ctx = ThreadCtx::host();

    // ------------------------------------------------------------------
    // 1. Chunk reuse: the headline difference between -P and -C.
    //    Allocate tiny pages, free them, then ask for a large page size.
    // ------------------------------------------------------------------
    println!("1. chunk reuse after freeing (paper: page-based \"lacks the");
    println!("   reusability of chunks once they have been assigned\")\n");

    let paged = OuroSP::with_capacity(4 << 20);
    let p = paged.malloc(&ctx, 16).unwrap();
    paged.free(&ctx, p).unwrap();
    let before = paged.allocated_chunks();
    let _big = paged.malloc(&ctx, 4096).unwrap();
    println!(
        "   Ouro-S-P: 16 B chunk stays bound to its size → {} new chunk(s) for 4 KiB",
        paged.allocated_chunks() - before
    );

    let chunked = OuroSC::with_capacity(4 << 20);
    let p = chunked.malloc(&ctx, 16).unwrap();
    chunked.free(&ctx, p).unwrap();
    let before = chunked.allocated_chunks();
    let _big = chunked.malloc(&ctx, 4096).unwrap();
    println!(
        "   Ouro-S-C: empty chunk reclaimed for any purpose → {} new chunk(s) for 4 KiB\n",
        chunked.allocated_chunks() - before
    );

    // ------------------------------------------------------------------
    // 2. Queue storage: static queues reserve capacity up front, the
    //    virtualized queues borrow chunks only while entries exist.
    // ------------------------------------------------------------------
    println!("2. queue virtualization (storage follows occupancy)\n");
    let va = OuroVAC::with_capacity(8 << 20);
    let base = va.allocated_chunks();
    // Free pages pile up in the 16 B queue: storage chunks get borrowed.
    let ptrs: Vec<DevicePtr> = (0..4000).map(|_| va.malloc(&ctx, 16).unwrap()).collect();
    for p in &ptrs {
        va.free(&ctx, *p).unwrap();
    }
    println!(
        "   Ouro-VA-C: {} chunks in use after 4000 alloc+free of 16 B \
         (payload chunks recycled, queue storage on loan)",
        va.allocated_chunks() - base
    );

    // ------------------------------------------------------------------
    // 3. Oversize relay: requests beyond the 8 KiB page range go to the
    //    embedded CUDA-Allocator section; stack a second instance when a
    //    different page range is needed.
    // ------------------------------------------------------------------
    println!("\n3. oversize relay\n");
    let vl = OuroVLP::with_capacity(8 << 20);
    let small = vl.malloc(&ctx, 512).unwrap();
    let large = vl.malloc(&ctx, 64 * 1024).unwrap();
    println!("   512 B page at {small}, 64 KiB relayed to the CUDA section at {large}");
    vl.free(&ctx, small).unwrap();
    vl.free(&ctx, large).unwrap();
    println!("\nSee `alloc-ouroboros` crate docs for the full design notes.");
}
