#!/usr/bin/env bash
# Repo-wide quality gate. Offline-safe: every cargo invocation passes
# --offline so the gate works without network access (the workspace has no
# crates.io dependencies; shims/ vendors the bench/test scaffolding).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
