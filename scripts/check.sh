#!/usr/bin/env bash
# Repo-wide quality gate. Offline-safe: every cargo invocation passes
# --offline so the gate works without network access (the workspace has no
# crates.io dependencies; shims/ vendors the bench/test scaffolding).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q --workspace

# The paper-shape assertions compare timing ratios and are ignored in debug
# builds (cfg_attr(debug_assertions, ignore)); without this release run they
# would never execute anywhere.
echo "==> cargo test --release --test paper_shapes"
cargo test --offline --release -q --test paper_shapes

# Shadow-heap sanitizer battery: broken-mock detection plus a clean churn
# run of every evaluated manager, in release so the full set stays fast.
echo "==> cargo test --release --test sanitizer"
cargo test --offline --release -q --test sanitizer

# Executor suite in release: includes the timing-fidelity test asserting a
# pooled empty-kernel launch reports <10% of the spawn-per-launch baseline
# (ignored in debug builds where the ratio is meaningless).
echo "==> cargo test --release -p gpu-sim"
cargo test --offline --release -q -p gpu-sim

# Single-worker determinism: the conformance battery must also hold when the
# pool is forced to one worker (inline sequential execution, no interleaving).
echo "==> GMS_WORKERS=1 cargo test --release --test conformance"
GMS_WORKERS=1 cargo test --offline --release -q --test conformance

# Launch-overhead microbenchmark; refreshes the committed BENCH_exec.json
# perf anchor (empty-kernel latency, warp throughput, small-launch spread).
echo "==> repro exec-bench"
cargo run --offline --release -q -p gpumem-bench --bin repro -- exec-bench

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
