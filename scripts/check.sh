#!/usr/bin/env bash
# Repo-wide quality gate. Offline-safe: every cargo invocation passes
# --offline so the gate works without network access (the workspace has no
# crates.io dependencies; shims/ vendors the bench/test scaffolding).
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --offline --release

echo "==> cargo test -q"
cargo test --offline -q --workspace

# The paper-shape assertions compare timing ratios and are ignored in debug
# builds (cfg_attr(debug_assertions, ignore)); without this release run they
# would never execute anywhere.
echo "==> cargo test --release --test paper_shapes"
cargo test --offline --release -q --test paper_shapes

# Shadow-heap sanitizer battery: broken-mock detection plus a clean churn
# run of every evaluated manager, in release so the full set stays fast.
echo "==> cargo test --release --test sanitizer"
cargo test --offline --release -q --test sanitizer

# Executor suite in release: includes the timing-fidelity test asserting a
# pooled empty-kernel launch reports <10% of the spawn-per-launch baseline
# (ignored in debug builds where the ratio is meaningless).
echo "==> cargo test --release -p gpu-sim"
cargo test --offline --release -q -p gpu-sim

# Single-worker determinism: the conformance battery must also hold when the
# pool is forced to one worker (inline sequential execution, no interleaving).
echo "==> GMS_WORKERS=1 cargo test --release --test conformance"
GMS_WORKERS=1 cargo test --offline --release -q --test conformance

# Heap-backend conformance: the cross-backend battery (RAM/mmap/NUMA heap
# contract, per-manager runs, ram-vs-mmap byte identity) plus the env-gated
# 8 GiB MAP_NORESERVE smoke, then the full allocator conformance battery
# re-run with every heap swapped to the mmap backend via GMS_HEAP_BACKEND.
echo "==> HUGE_HEAP=1 cargo test --release --test heap_backends"
HUGE_HEAP=1 cargo test --offline --release -q --test heap_backends
echo "==> GMS_HEAP_BACKEND=mmap cargo test --release --test conformance"
GMS_HEAP_BACKEND=mmap cargo test --offline --release -q --test conformance

# End-to-end full-scale smoke: Fig. 9 at the paper's 8 GiB heap over the
# mmap backend, trimmed to one manager/few cells so the gate stays fast.
echo "==> repro perf --heap-backend mmap (8 GiB smoke)"
cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    perf --heap-backend mmap -t s --num 1000 --iter 1 --out target/perf-smoke
grep -q 'heap_backend=mmap' target/perf-smoke/alloc_thread_1000_TITANV.csv

# Repro-matrix smoke gate: regenerate every smoke-tier scenario into a
# scratch dir, then compare against the committed BENCH_*.json anchors with
# the per-scenario tolerances in gates.toml. Exits nonzero on regression,
# exact-metric drift, or a missing/damaged anchor. GMS_WORKERS is pinned so
# throughput anchors are comparable across machines; re-baseline with
# `repro matrix --smoke` (see gates.toml header) after intentional changes.
echo "==> repro matrix --smoke + gate"
rm -rf target/matrix-smoke
GMS_WORKERS="${GMS_WORKERS:-4}" cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    matrix --smoke --anchors target/matrix-smoke
GMS_WORKERS="${GMS_WORKERS:-4}" cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    gate --smoke --candidate target/matrix-smoke

# Magazine-cache smoke: regenerate just the cached twin scenarios and gate
# them against their committed anchors. Redundant with the full matrix run
# above by construction, but isolates a cache regression in its own stage
# (and exercises the --scenario selection + @cached plumbing end to end).
echo "==> repro matrix --smoke (cached scenarios) + gate"
rm -rf target/matrix-cached
GMS_WORKERS="${GMS_WORKERS:-4}" cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    matrix --smoke --scenario perf_thread_cached --scenario mixed_cached \
    --anchors target/matrix-cached
GMS_WORKERS="${GMS_WORKERS:-4}" cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    gate --smoke --scenario perf_thread_cached --scenario mixed_cached \
    --candidate target/matrix-cached

# Event-tracing smoke: a traced run must produce a Perfetto-loadable Chrome
# trace (the binary validates it before writing) plus a latency-percentile
# CSV with data rows. Cheap end-to-end coverage of recorder → exporters.
echo "==> repro trace smoke"
rm -rf target/trace-smoke
cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    trace -m scatter --num 2048 --out target/trace-smoke
test -s target/trace-smoke/trace_scatter.json
grep -q '"ph"' target/trace-smoke/trace_scatter.json
grep -q '^ScatterAlloc,malloc,' target/trace-smoke/trace_latency_2048_TITANV.csv

# Live-telemetry smoke: a watched run must produce a schema-versioned JSON
# time-series with at least 10 sample windows, a parse-validated OpenMetrics
# exposition, and a per-window CSV the summarizer can read (DESIGN.md §15).
echo "==> repro watch smoke"
rm -rf target/watch-smoke
GMS_WORKERS="${GMS_WORKERS:-4}" cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    watch -m scatter --scenario mixed --out target/watch-smoke
grep -q '"schema": 1' target/watch-smoke/telemetry_mixed.json
grep -q '"kind": "gms-telemetry"' target/watch-smoke/telemetry_mixed.json
grep -q '# EOF' target/watch-smoke/telemetry_mixed.prom
grep -q '^seq,' target/watch-smoke/telemetry_mixed.csv
test "$(($(wc -l < target/watch-smoke/telemetry_mixed.csv) - 2))" -ge 10

# Heap-safety static analysis: the full pass set (atomics ordering, offset
# arithmetic, hot-path panics/allocation, lock ordering, decorator
# forwarding) over the workspace. Any non-allowlisted finding fails the
# gate; every allowlist entry must carry a written reason.
echo "==> memlint --deny (all passes)"
cargo run --offline -q -p memlint -- --deny .

# The audit CLI consumes the same report: per-pass rollup table plus an
# audit.csv with a pass column, exit 2 on standing findings.
echo "==> repro audit smoke"
rm -rf target/audit-smoke
cargo run --offline --release -q -p gpumem-bench --bin repro -- \
    audit --out target/audit-smoke > /dev/null
head -2 target/audit-smoke/audit.csv | grep -q '^crate,pass,rule,standing,allowlisted'

# Loom model checking: the same allocator protocols, compiled against the
# cooperative-scheduling shim (--cfg loom) and exhaustively interleaved at
# small bounds. Separate target dir so the flag flip doesn't thrash the
# main incremental cache.
echo "==> loom model checks (--cfg loom)"
for crate in loom gpumem-core alloc-atomic alloc-scatter alloc-ouroboros \
    alloc-xmalloc alloc-regeff alloc-halloc gpu-sim; do
    echo "    -> $crate"
    RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
        cargo test --offline --release -q -p "$crate" --lib loom_
done

# Miri smoke (opt-in: MIRI=1). Interprets the ouroboros queue + regeff
# header units under the UB checker; skipped gracefully where the miri
# component isn't installed (e.g. offline containers).
if [[ "${MIRI:-0}" == "1" ]]; then
    if cargo miri --version >/dev/null 2>&1; then
        echo "==> cargo miri test (smoke)"
        cargo miri test --offline -q -p alloc-ouroboros --lib queues
        cargo miri test --offline -q -p alloc-regeff --lib header
    else
        echo "==> MIRI=1 set but 'cargo miri' is unavailable; skipping"
    fi
fi

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "All checks passed."
