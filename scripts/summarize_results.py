#!/usr/bin/env python3
"""Summarize results/*.csv into the markdown tables EXPERIMENTS.md embeds.

Usage: python3 scripts/summarize_results.py [results_dir]
Prints markdown to stdout; EXPERIMENTS.md sections were generated with it.
(The artifact's workflow is analogous: its scripts aggregate per-test CSVs
that are then pasted into the paper's spreadsheets.)
"""
import csv
import sys
from collections import defaultdict
from pathlib import Path

DIR = Path(sys.argv[1] if len(sys.argv) > 1 else "results")

MANAGER_ORDER = [
    "Atomic", "ScatterAlloc", "Halloc", "Ouro-S-P", "Ouro-S-C", "Ouro-VA-P",
    "Ouro-VA-C", "Ouro-VL-P", "Ouro-VL-C", "CUDA-Allocator", "XMalloc",
    "Reg-Eff-C", "Reg-Eff-CF", "Reg-Eff-CM", "Reg-Eff-CFM", "Baseline",
]


def load(name):
    path = DIR / name
    if not path.exists():
        return []
    with open(path) as fh:
        # Skip provenance comments (`# git=... workers=...`) the repro
        # binary stamps above the header.
        lines = (ln for ln in fh if not ln.lstrip().startswith("#"))
        return list(csv.DictReader(lines))


def fnum(row, key):
    v = row.get(key, "")
    try:
        return float(v)
    except ValueError:
        return None


def table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for r in rows:
        out.append("| " + " | ".join(str(c) for c in r) + " |")
    return "\n".join(out)


def pivot(rows, key_col, val_col, cols, fmt="{:.2f}"):
    by = defaultdict(dict)
    for r in rows:
        v = fnum(r, val_col)
        k = fnum(r, key_col)
        if v is not None and k is not None:
            by[r["manager"]][int(k)] = v
    out = []
    for m in MANAGER_ORDER:
        if m not in by:
            continue
        cells = [m] + [
            (fmt.format(by[m][c]) if c in by[m] else "—") for c in cols
        ]
        out.append(cells)
    return out


def section(title):
    print(f"\n### {title}\n")


def main():
    sizes = [16, 64, 256, 1024, 2048, 4096, 8192]

    section("Fig 9a (thread-based allocation, 10k, ms)")
    rows = load("alloc_thread_10000_TITANV.csv")
    print(table(["manager"] + [f"{s} B" for s in sizes],
                pivot(rows, "size", "alloc_ms", sizes)))

    section("Fig 9b (thread-based deallocation, 10k, ms)")
    print(table(["manager"] + [f"{s} B" for s in sizes],
                pivot(rows, "size", "free_ms", sizes)))

    section("Fig 9g (warp-based allocation, ms)")
    rows = load("alloc_warp_4096_TITANV.csv")
    print(table(["manager"] + [f"{s} B" for s in sizes],
                pivot(rows, "size", "alloc_ms", sizes)))

    section("Fig 9h (mixed allocation 4 B–upper, 10k, ms)")
    rows = load("mixed_10000_TITANV.csv")
    uppers = [16, 64, 512, 2048, 8192]
    print(table(["manager"] + [f"≤{u} B" for u in uppers],
                pivot(rows, "upper", "alloc_ms", uppers)))

    section("Fig 10 (scaling, 64 B alloc ms by thread count)")
    rows = [r for r in load("scaling_TITANV.csv") if r.get("size") == "64"]
    threads = [1, 64, 1024, 4096, 16384]
    print(table(["manager"] + [str(t) for t in threads],
                pivot(rows, "threads", "alloc_ms", threads, "{:.3f}")))

    section("Fig 10d analogue (scaling, 8 KiB alloc ms by thread count)")
    rows = [r for r in load("scaling_TITANV.csv") if r.get("size") == "8192"]
    print(table(["manager"] + [str(t) for t in threads],
                pivot(rows, "threads", "alloc_ms", threads, "{:.3f}")))

    section("Fig 11a (fragmentation: address range ÷ packed demand)")
    rows = load("fragmentation.csv")
    fsizes = [16, 64, 256, 1024, 4096]
    print(table(["manager"] + [f"{s} B" for s in fsizes],
                pivot(rows, "size", "expansion", fsizes)))

    section("Fig 11b (OOM heap utilization, 64 MiB heap)")
    rows = load("oom_64mb.csv")
    osizes = [4, 16, 64, 1024, 4096, 8192]
    print(table(["manager"] + [f"{s} B" for s in osizes],
                pivot(rows, "size", "utilization", osizes)))

    for rng in ("4_64", "4_4096"):
        section(f"Fig 11{'c' if rng == '4_64' else 'd'} (work generation "
                f"{rng.replace('_', '–')} B, ms)")
        rows = load(f"workgen_{rng}.csv")
        threads = [16, 256, 1024, 4096, 16384]
        print(table(["manager"] + [str(t) for t in threads],
                    pivot(rows, "threads", "elapsed_ms", threads, "{:.3f}")))

    section("Fig 11e (write cost relative to coalesced baseline)")
    rows = load("write_performance.csv")
    patterns = sorted({r["pattern"] for r in rows})
    by = defaultdict(dict)
    for r in rows:
        by[r["manager"]][r["pattern"]] = fnum(r, "relative_cost")
    body = []
    for m in MANAGER_ORDER:
        if m in by:
            body.append([m] + [f"{by[m].get(p, 0):.2f}" for p in patterns])
    print(table(["manager"] + patterns, body))

    section("Fig 11f (graph initialization, ms)")
    rows = load("graph_init_div64.csv")
    graphs = sorted({r["graph"] for r in rows})
    by = defaultdict(dict)
    for r in rows:
        by[r["manager"]][r["graph"]] = fnum(r, "init_ms")
    body = []
    for m in MANAGER_ORDER:
        if m in by:
            body.append([m] + [f"{by[m].get(g, 0):.2f}" for g in graphs])
    print(table(["manager"] + graphs, body))

    section("Fig 11g (graph updates, focused scenario, ms)")
    rows = [r for r in load("graph_update_div64.csv") if r["scenario"] == "focused"]
    by = defaultdict(dict)
    for r in rows:
        by[r["manager"]][r["graph"]] = fnum(r, "elapsed_ms")
    body = []
    for m in MANAGER_ORDER:
        if m in by:
            body.append([m] + [f"{by[m].get(g, 0):.2f}" for g in graphs])
    print(table(["manager"] + graphs, body))

    section("§4.1 (initialization & register proxy)")
    rows = load("init_register.csv")
    body = [
        [r["manager"], r["init_ms"], r["malloc_regs"], r["free_regs"]]
        for r in rows
    ]
    print(table(["manager", "init ms", "malloc regs", "free regs"], body))

    telemetry = sorted(DIR.glob("telemetry_*.csv"))
    if telemetry:
        section("Telemetry (repro watch / --telemetry, per-window series)")
        body = []
        for path in telemetry:
            rows = load(path.name)
            if not rows:
                continue
            label = path.stem[len("telemetry_"):]
            span_ms = max(float(r["t_ms"]) for r in rows)
            peak_allocs = max(float(r["allocs_per_sec"]) for r in rows)
            worst_p99 = max(int(r["malloc_p99_ns"]) for r in rows)
            cuts = sum(1 for r in rows if r["boundary"] in ("1", "true"))
            dropped = max(int(r["dropped_events"]) for r in rows)
            body.append([
                label, len(rows), f"{span_ms:.0f}", f"{peak_allocs:,.0f}",
                f"{worst_p99:,}", cuts, dropped,
            ])
        print(table(
            ["run", "windows", "span ms", "peak allocs/s",
             "worst p99 ns", "boundary cuts", "trace drops"],
            body,
        ))


if __name__ == "__main__":
    main()
