//! The unified memory-manager interface (paper §3).
//!
//! "Each memory manager is instantiated on the host with a configurable size
//! of the manageable memory. This memory manager can then be passed to device
//! kernels and offers the standard malloc/free interface. Using this
//! framework, one can integrate a memory manager into an existing project and
//! simply swap out one declaration to change between memory managers."
//!
//! [`DeviceAllocator`] is that interface. Thread-level entry points take a
//! [`ThreadCtx`]; warp-level entry points take a [`WarpCtx`] plus the 32 lane
//! requests, which lets coalescing designs (XMalloc, Halloc, FDGMalloc) batch
//! them the way their warp-aggregated atomics do on hardware.

use crate::ctx::{ThreadCtx, WarpCtx};
use crate::error::AllocError;
use crate::heap::DeviceHeap;
use crate::info::ManagerInfo;
use crate::metrics::Metrics;
use crate::ptr::DevicePtr;
use crate::regs::RegisterFootprint;

/// The survey's uniform `malloc`/`free` interface.
///
/// All methods take `&self`: a manager is shared across every simulated
/// thread and must synchronise internally (with atomics, as the originals
/// do). Implementations are registered with the benchmark registry in the
/// `gpumem-bench` crate and become selectable in every test case.
pub trait DeviceAllocator: Send + Sync {
    /// Static capability metadata (name, variant, free support, alignment…).
    fn info(&self) -> ManagerInfo;

    /// The managed memory region.
    fn heap(&self) -> &DeviceHeap;

    /// Allocates `size` bytes on behalf of one thread.
    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError>;

    /// Frees a pointer previously returned by [`DeviceAllocator::malloc`] (or
    /// a warp-level variant) on this manager.
    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError>;

    /// Warp-collective allocation: all 32 lanes request at once.
    ///
    /// `sizes` and `out` have equal length ≤ 32 (a partially populated tail
    /// warp passes fewer). The default implementation simply loops lanes —
    /// managers with warp aggregation override this to coalesce.
    ///
    /// The call is all-or-nothing: if any lane fails, lanes that were
    /// already granted are rolled back (freed, when the manager supports
    /// free) and every `out` slot is nulled before the error is returned,
    /// so a failed warp call never leaks memory the caller cannot see.
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        debug_assert_eq!(sizes.len(), out.len());
        for (lane, (&size, slot)) in sizes.iter().zip(out.iter_mut()).enumerate() {
            let ctx = warp.lane(lane as u32);
            match self.malloc(&ctx, size) {
                Ok(ptr) => *slot = ptr,
                Err(e) => {
                    rollback_partial_warp(self, warp, &mut out[..lane]);
                    for slot in out.iter_mut() {
                        *slot = DevicePtr::NULL;
                    }
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Warp-collective free of previously returned pointers.
    ///
    /// A lane whose free fails does not abandon the remaining lanes (an
    /// early return would leak every pointer after the failing one); all
    /// lanes are attempted and the first error is reported.
    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        let mut first_err = None;
        for (lane, &ptr) in ptrs.iter().enumerate() {
            if ptr.is_null() {
                continue;
            }
            let ctx = warp.lane(lane as u32);
            if let Err(e) = self.free(&ctx, ptr) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Releases *everything* a warp ever allocated (FDGMalloc's `tidyUp`).
    /// Only warp-level-only managers implement this.
    fn free_warp_all(&self, _warp: &WarpCtx) -> Result<(), AllocError> {
        Err(AllocError::Unsupported("free_warp_all"))
    }

    /// Register-requirement proxy for §4.1 (see [`RegisterFootprint`]).
    fn register_footprint(&self) -> RegisterFootprint;

    /// Grows the manageable memory at runtime by `additional` bytes.
    ///
    /// Per the paper (§6), only ScatterAlloc and Ouroboros support this; the
    /// default rejects it.
    fn grow(&self, _additional: u64) -> Result<(), AllocError> {
        Err(AllocError::Unsupported("grow"))
    }

    /// The contention-observability handle this manager records into
    /// (see [`crate::metrics`]). Cloning is cheap; all clones share one
    /// counter block. The default — for managers without instrumentation —
    /// is a disabled handle whose snapshot is all-zero.
    fn metrics(&self) -> Metrics {
        Metrics::disabled()
    }

    /// Flushes any blocks a decorator is holding back from the underlying
    /// manager (e.g. [`Cached`](crate::cache::Cached) magazine contents),
    /// returning how many were pushed down. Leaf managers hold nothing
    /// back, so the default is a no-op.
    ///
    /// The telemetry sampler's teardown contract depends on this: frees
    /// parked in a magazine are invisible to the counters until the inner
    /// `free` runs, so callers must `drain()` before taking a final
    /// [`crate::telemetry`] sample or the last window under-reports frees.
    fn drain(&self) -> u64 {
        0
    }
}

/// Frees the lanes a partially-failed `malloc_warp` already granted (best
/// effort: managers without free support cannot reclaim, matching their
/// normal leak-on-no-free semantics). Shared by the default warp path and by
/// managers whose coalescing overrides fall back to lane-by-lane service.
pub fn rollback_partial_warp<A: DeviceAllocator + ?Sized>(
    alloc: &A,
    warp: &WarpCtx,
    granted: &mut [DevicePtr],
) {
    if !alloc.info().supports_free {
        return;
    }
    for (lane, slot) in granted.iter_mut().enumerate() {
        if !slot.is_null() {
            let _ = alloc.free(&warp.lane(lane as u32), *slot);
            *slot = DevicePtr::NULL;
        }
    }
}

/// Shared-ownership forwarding: an `Arc<A>` (including `Arc<dyn
/// DeviceAllocator>`, the form the benchmark registry hands out) is itself a
/// [`DeviceAllocator`]. Every method forwards explicitly so a manager's
/// warp-aggregation overrides are preserved through the indirection; this is
/// what lets wrappers like `Sanitized` take any built manager by value.
impl<T: DeviceAllocator + ?Sized> DeviceAllocator for std::sync::Arc<T> {
    fn info(&self) -> ManagerInfo {
        (**self).info()
    }
    fn heap(&self) -> &DeviceHeap {
        (**self).heap()
    }
    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        (**self).malloc(ctx, size)
    }
    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        (**self).free(ctx, ptr)
    }
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        (**self).malloc_warp(warp, sizes, out)
    }
    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        (**self).free_warp(warp, ptrs)
    }
    fn free_warp_all(&self, warp: &WarpCtx) -> Result<(), AllocError> {
        (**self).free_warp_all(warp)
    }
    fn register_footprint(&self) -> RegisterFootprint {
        (**self).register_footprint()
    }
    fn grow(&self, additional: u64) -> Result<(), AllocError> {
        (**self).grow(additional)
    }
    fn metrics(&self) -> Metrics {
        (**self).metrics()
    }

    fn drain(&self) -> u64 {
        // Without this forwarder the defaulted no-op would shadow the
        // pointee's drain — a `Cached` behind `Arc<dyn DeviceAllocator>`
        // (every registry-built handle) would keep its magazines parked
        // and the telemetry teardown contract would silently break.
        (**self).drain()
    }
}

/// Blanket helpers layered over the raw trait.
pub trait DeviceAllocatorExt: DeviceAllocator {
    /// `malloc` + panic-free bounds check, for tests: returns the pointer and
    /// asserts it is in-bounds and satisfies the manager's declared
    /// alignment.
    fn checked_malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let info = self.info();
        let ptr = self.malloc(ctx, size)?;
        assert!(
            ptr.offset().checked_add(size).is_some_and(|end| end <= self.heap().len()),
            "{}: returned out-of-bounds allocation {ptr:?} + {size}",
            info.label()
        );
        assert!(
            ptr.is_aligned(info.alignment),
            "{}: pointer {ptr:?} violates declared alignment {}",
            info.label(),
            info.alignment
        );
        Ok(ptr)
    }
}

impl<A: DeviceAllocator + ?Sized> DeviceAllocatorExt for A {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Minimal conforming implementation used to exercise trait defaults.
    struct Bump {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
    }

    impl Bump {
        fn new(len: u64) -> Self {
            Bump { heap: Arc::new(DeviceHeap::new(len)), top: AtomicU64::new(0) }
        }
    }

    impl DeviceAllocator for Bump {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("Bump").supports_free(false).build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = crate::util::align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
            Err(AllocError::Unsupported("free"))
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 4, free: 0 }
        }
    }

    #[test]
    fn default_malloc_warp_loops_lanes() {
        let a = Bump::new(1 << 16);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let sizes = [16u64; 32];
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&warp, &sizes, &mut out).unwrap();
        // Distinct, consecutive bump allocations.
        for w in out.windows(2) {
            assert_eq!(w[1].offset() - w[0].offset(), 16);
        }
    }

    #[test]
    fn default_free_warp_skips_null() {
        let a = Bump::new(1 << 12);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        // All NULL — free is unsupported but must not be reached.
        a.free_warp(&warp, &[DevicePtr::NULL; 4]).unwrap();
    }

    #[test]
    fn default_free_warp_all_unsupported() {
        let a = Bump::new(1 << 12);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        assert_eq!(a.free_warp_all(&warp), Err(AllocError::Unsupported("free_warp_all")));
    }

    #[test]
    fn default_grow_unsupported() {
        let a = Bump::new(1 << 12);
        assert_eq!(a.grow(4096), Err(AllocError::Unsupported("grow")));
    }

    #[test]
    fn checked_malloc_validates_alignment() {
        let a = Bump::new(1 << 12);
        let p = a.checked_malloc(&ThreadCtx::host(), 24).unwrap();
        assert!(p.is_aligned(16));
    }

    #[test]
    fn object_safety() {
        // The registry stores `Box<dyn DeviceAllocator>`; keep the trait
        // object-safe.
        let a: Box<dyn DeviceAllocator> = Box::new(Bump::new(1 << 12));
        assert_eq!(a.info().family, "Bump");
        let _ = a.malloc(&ThreadCtx::host(), 8).unwrap();
    }

    #[test]
    fn arc_forwards_the_whole_interface() {
        let a: Arc<dyn DeviceAllocator> = Arc::new(Bump::new(1 << 12));
        assert_eq!(a.info().family, "Bump");
        let p = DeviceAllocator::malloc(&a, &ThreadCtx::host(), 8).unwrap();
        assert!(!p.is_null());
        assert_eq!(a.grow(128), Err(AllocError::Unsupported("grow")));
        assert!(!a.metrics().is_enabled());
    }

    /// Free-capable counting allocator whose lane `fail_at` (by allocation
    /// order) fails — the partial-failure scenario for the warp defaults.
    struct FailingLane {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
        served: AtomicU64,
        fail_at: u64,
        live: AtomicU64,
        /// Pointer whose individual `free` is rejected (exercises the
        /// free_warp continue-past-error path); NULL raw disables it.
        refuse_free: u64,
    }

    impl FailingLane {
        fn new(fail_at: u64) -> Self {
            FailingLane {
                heap: Arc::new(DeviceHeap::new(1 << 16)),
                top: AtomicU64::new(0),
                served: AtomicU64::new(0),
                fail_at,
                live: AtomicU64::new(0),
                refuse_free: u64::MAX,
            }
        }
    }

    impl DeviceAllocator for FailingLane {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("FailingLane").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            if self.served.fetch_add(1, Ordering::Relaxed) == self.fail_at {
                return Err(AllocError::OutOfMemory(size));
            }
            let sz = crate::util::align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            self.live.fetch_add(1, Ordering::Relaxed);
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
            if ptr.raw() == self.refuse_free {
                return Err(AllocError::InvalidPointer);
            }
            self.live.fetch_sub(1, Ordering::Relaxed);
            Ok(())
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 4, free: 2 }
        }
    }

    #[test]
    fn malloc_warp_partial_failure_rolls_back_granted_lanes() {
        // Lane 5 of 8 fails: the 5 lanes already granted must be freed and
        // every out slot nulled. Against the old early-`?` default this
        // fails with live == 5 and out[0..5] non-null.
        let a = FailingLane::new(5);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let mut out = [DevicePtr::new(777); 8];
        let r = a.malloc_warp(&warp, &[32; 8], &mut out);
        assert_eq!(r, Err(AllocError::OutOfMemory(32)));
        assert_eq!(a.live.load(Ordering::Relaxed), 0, "granted lanes must be rolled back");
        assert!(out.iter().all(|p| p.is_null()), "all out slots must be nulled: {out:?}");
    }

    #[test]
    fn free_warp_continues_past_failing_lane() {
        // Lane 1's free is rejected; lanes 0 and 2 must still be freed and
        // the error still reported. The old default stopped at lane 1,
        // leaking lane 2.
        let mut a = FailingLane::new(u64::MAX);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let mut out = [DevicePtr::NULL; 3];
        a.malloc_warp(&warp, &[64; 3], &mut out).unwrap();
        a.refuse_free = out[1].raw();
        assert_eq!(a.free_warp(&warp, &out), Err(AllocError::InvalidPointer));
        assert_eq!(a.live.load(Ordering::Relaxed), 1, "only the refused lane stays live");
    }
}
