//! The unified memory-manager interface (paper §3).
//!
//! "Each memory manager is instantiated on the host with a configurable size
//! of the manageable memory. This memory manager can then be passed to device
//! kernels and offers the standard malloc/free interface. Using this
//! framework, one can integrate a memory manager into an existing project and
//! simply swap out one declaration to change between memory managers."
//!
//! [`DeviceAllocator`] is that interface. Thread-level entry points take a
//! [`ThreadCtx`]; warp-level entry points take a [`WarpCtx`] plus the 32 lane
//! requests, which lets coalescing designs (XMalloc, Halloc, FDGMalloc) batch
//! them the way their warp-aggregated atomics do on hardware.

use crate::ctx::{ThreadCtx, WarpCtx};
use crate::error::AllocError;
use crate::heap::DeviceHeap;
use crate::info::ManagerInfo;
use crate::metrics::Metrics;
use crate::ptr::DevicePtr;
use crate::regs::RegisterFootprint;

/// The survey's uniform `malloc`/`free` interface.
///
/// All methods take `&self`: a manager is shared across every simulated
/// thread and must synchronise internally (with atomics, as the originals
/// do). Implementations are registered with the benchmark registry in the
/// `gpumem-bench` crate and become selectable in every test case.
pub trait DeviceAllocator: Send + Sync {
    /// Static capability metadata (name, variant, free support, alignment…).
    fn info(&self) -> ManagerInfo;

    /// The managed memory region.
    fn heap(&self) -> &DeviceHeap;

    /// Allocates `size` bytes on behalf of one thread.
    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError>;

    /// Frees a pointer previously returned by [`DeviceAllocator::malloc`] (or
    /// a warp-level variant) on this manager.
    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError>;

    /// Warp-collective allocation: all 32 lanes request at once.
    ///
    /// `sizes` and `out` have equal length ≤ 32 (a partially populated tail
    /// warp passes fewer). The default implementation simply loops lanes —
    /// managers with warp aggregation override this to coalesce.
    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        debug_assert_eq!(sizes.len(), out.len());
        for (lane, (&size, slot)) in sizes.iter().zip(out.iter_mut()).enumerate() {
            let ctx = warp.lane(lane as u32);
            *slot = self.malloc(&ctx, size)?;
        }
        Ok(())
    }

    /// Warp-collective free of previously returned pointers.
    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        for (lane, &ptr) in ptrs.iter().enumerate() {
            if ptr.is_null() {
                continue;
            }
            let ctx = warp.lane(lane as u32);
            self.free(&ctx, ptr)?;
        }
        Ok(())
    }

    /// Releases *everything* a warp ever allocated (FDGMalloc's `tidyUp`).
    /// Only warp-level-only managers implement this.
    fn free_warp_all(&self, _warp: &WarpCtx) -> Result<(), AllocError> {
        Err(AllocError::Unsupported("free_warp_all"))
    }

    /// Register-requirement proxy for §4.1 (see [`RegisterFootprint`]).
    fn register_footprint(&self) -> RegisterFootprint;

    /// Grows the manageable memory at runtime by `additional` bytes.
    ///
    /// Per the paper (§6), only ScatterAlloc and Ouroboros support this; the
    /// default rejects it.
    fn grow(&self, _additional: u64) -> Result<(), AllocError> {
        Err(AllocError::Unsupported("grow"))
    }

    /// The contention-observability handle this manager records into
    /// (see [`crate::metrics`]). Cloning is cheap; all clones share one
    /// counter block. The default — for managers without instrumentation —
    /// is a disabled handle whose snapshot is all-zero.
    fn metrics(&self) -> Metrics {
        Metrics::disabled()
    }
}

/// Blanket helpers layered over the raw trait.
pub trait DeviceAllocatorExt: DeviceAllocator {
    /// `malloc` + panic-free bounds check, for tests: returns the pointer and
    /// asserts it is in-bounds and satisfies the manager's declared
    /// alignment.
    fn checked_malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let info = self.info();
        let ptr = self.malloc(ctx, size)?;
        assert!(
            ptr.offset() + size <= self.heap().len(),
            "{}: returned out-of-bounds allocation {ptr:?} + {size}",
            info.label()
        );
        assert!(
            ptr.is_aligned(info.alignment),
            "{}: pointer {ptr:?} violates declared alignment {}",
            info.label(),
            info.alignment
        );
        Ok(ptr)
    }
}

impl<A: DeviceAllocator + ?Sized> DeviceAllocatorExt for A {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Minimal conforming implementation used to exercise trait defaults.
    struct Bump {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
    }

    impl Bump {
        fn new(len: u64) -> Self {
            Bump { heap: Arc::new(DeviceHeap::new(len)), top: AtomicU64::new(0) }
        }
    }

    impl DeviceAllocator for Bump {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("Bump").supports_free(false).build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = crate::util::align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
            Err(AllocError::Unsupported("free"))
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 4, free: 0 }
        }
    }

    #[test]
    fn default_malloc_warp_loops_lanes() {
        let a = Bump::new(1 << 16);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let sizes = [16u64; 32];
        let mut out = [DevicePtr::NULL; 32];
        a.malloc_warp(&warp, &sizes, &mut out).unwrap();
        // Distinct, consecutive bump allocations.
        for w in out.windows(2) {
            assert_eq!(w[1].offset() - w[0].offset(), 16);
        }
    }

    #[test]
    fn default_free_warp_skips_null() {
        let a = Bump::new(1 << 12);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        // All NULL — free is unsupported but must not be reached.
        a.free_warp(&warp, &[DevicePtr::NULL; 4]).unwrap();
    }

    #[test]
    fn default_free_warp_all_unsupported() {
        let a = Bump::new(1 << 12);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        assert_eq!(a.free_warp_all(&warp), Err(AllocError::Unsupported("free_warp_all")));
    }

    #[test]
    fn default_grow_unsupported() {
        let a = Bump::new(1 << 12);
        assert_eq!(a.grow(4096), Err(AllocError::Unsupported("grow")));
    }

    #[test]
    fn checked_malloc_validates_alignment() {
        let a = Bump::new(1 << 12);
        let p = a.checked_malloc(&ThreadCtx::host(), 24).unwrap();
        assert!(p.is_aligned(16));
    }

    #[test]
    fn object_safety() {
        // The registry stores `Box<dyn DeviceAllocator>`; keep the trait
        // object-safe.
        let a: Box<dyn DeviceAllocator> = Box::new(Bump::new(1 << 12));
        assert_eq!(a.info().family, "Bump");
        let _ = a.malloc(&ThreadCtx::host(), 8).unwrap();
    }
}
