//! Register-requirement proxy (paper §4.1).
//!
//! The survey reports the number of hardware registers `nvcc` assigns to each
//! manager's `malloc` and `free`. A CPU port has no register allocator to
//! interrogate, so the reproduction uses a deterministic proxy:
//!
//! > every allocator declares one `#[repr(C)]` *frame struct* per entry point
//! > listing the locals its hot path keeps live simultaneously, and the
//! > register estimate is `size_of::<Frame>() / 4` (GPU registers are 32-bit).
//!
//! The frame structs are written next to the implementation they describe, so
//! the estimate moves when the implementation does. Absolute numbers are not
//! comparable to `nvcc`'s, but the *ordering* the paper reports (Reg-Eff
//! least, CUDA-Allocator close behind, Halloc/ScatterAlloc mid, Ouroboros
//! slightly above, XMalloc's malloc an outlier) is reproduced, which is what
//! the paper's discussion uses the table for.

/// Estimated register requirements of a manager's entry points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegisterFootprint {
    /// Registers live in `malloc`.
    pub malloc: u32,
    /// Registers live in `free`.
    pub free: u32,
}

impl RegisterFootprint {
    /// Builds a footprint from the byte sizes of the two frame structs.
    pub const fn from_frames(malloc_frame_bytes: usize, free_frame_bytes: usize) -> Self {
        RegisterFootprint {
            malloc: (malloc_frame_bytes / 4) as u32,
            free: (free_frame_bytes / 4) as u32,
        }
    }
}

impl std::fmt::Display for RegisterFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malloc: {} regs, free: {} regs", self.malloc, self.free)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_conversion_divides_by_word() {
        let fp = RegisterFootprint::from_frames(160, 96);
        assert_eq!(fp.malloc, 40);
        assert_eq!(fp.free, 24);
    }

    #[test]
    fn display_format() {
        let fp = RegisterFootprint { malloc: 50, free: 22 };
        assert_eq!(fp.to_string(), "malloc: 50 regs, free: 22 regs");
    }
}
