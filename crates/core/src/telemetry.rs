//! Live telemetry: a time-series sampler over the metrics + trace layers.
//!
//! The paper's figures are end-of-run aggregates; a long-running allocator
//! service (ROADMAP item 4) needs *live* observability instead — p99-malloc
//! SLO windows, fragmentation drift and OOM-fallback rates sampled
//! continuously while kernels run. This module turns the snapshot-at-end
//! layers ([`crate::metrics`], [`crate::trace`]) into a streaming plane:
//!
//! * [`Telemetry`] runs a dedicated host thread at a configurable cadence
//!   (default 10 ms; `GMS_TELEMETRY_HZ` overrides). Each tick it reads every
//!   attached manager's [`Metrics`] counters, takes the **delta** against
//!   the previous tick, drains newly committed trace-ring events past a
//!   per-recorder watermark, and folds both into one [`Sample`] row.
//! * Samples land in a bounded fixed-capacity ring (drop-oldest, with an
//!   eviction count) — the same boundedness discipline as the trace ring:
//!   an hours-long soak must not grow host memory without limit.
//! * [`SloTracker`] evaluates rolling-window objectives ([`SloSpec`], e.g.
//!   `malloc_p99_ns<250000@1s`) against the stream and records breach
//!   spans.
//! * Two exporters, both hand-rolled (no new deps, like `anchor.rs`'s JSON
//!   and [`crate::trace::chrome_trace_json`]): an OpenMetrics text renderer
//!   (validated by [`validate_openmetrics`], the `validate_chrome_json`
//!   counterpart) servable over a minimal blocking TCP listener
//!   ([`Telemetry::serve`]), and a schema-versioned JSON time-series dump
//!   ([`TimeSeries::to_json`]).
//!
//! ## Why counter deltas, not absolutes
//!
//! The shared counter block only ever accumulates ([`CounterSnapshot`] is
//! monotone), so a rate over a window is `(now − prev) / window` — exact,
//! and robust to managers *joining* mid-run: a manager built during the
//! watched scenario registers with the [`TelemetrySink`] and its first ops
//! appear as that window's delta. Absolute readings would instead need
//! every consumer to know each source's epoch. The same watermark logic
//! applies to the trace rings: only events with a timestamp past the last
//! tick's high-water mark are folded into the new window's latency
//! histogram, so one event is never counted twice even though ring
//! snapshots are non-destructive.
//!
//! ## Teardown ordering
//!
//! Decorators can hold frees back (the [`Cached`](crate::cache::Cached)
//! magazines park them until a flush). Callers that keep a manager alive
//! across [`Telemetry::stop`] must call
//! [`DeviceAllocator::drain`](crate::traits::DeviceAllocator::drain) first,
//! so the final sample's window sees the flushed frees instead of
//! under-reporting them (regression-tested in `tests/telemetry.rs`).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::frag::{AddressRange, FragmentationStats};
use crate::metrics::{CounterSnapshot, Metrics};
use crate::ptr::DevicePtr;
use crate::sync::{AtomicBool, Ordering};
use crate::trace::{EventKind, LatencyHistogram, TraceRecorder};

/// Schema version stamped into every JSON time-series dump. Bump on any
/// field change so downstream consumers can reject what they cannot parse.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// Default sampler cadence: one sample every 10 ms (100 Hz).
pub const DEFAULT_INTERVAL: Duration = Duration::from_millis(10);

/// Default sample-ring capacity: at the default cadence this holds ~41 s of
/// history in ~12 KiB; a soak run keeps the newest window and counts what
/// it evicted.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Per-SM trace-ring capacity forced onto managers built while a watch sink
/// is installed and no explicit `.trace(..)` was requested. Smaller than
/// [`crate::trace::DEFAULT_EVENTS_PER_SM`]: the sampler drains continuously,
/// so the ring only needs to cover one sampling interval, and a watched
/// matrix run builds many managers whose rings all stay alive.
pub const WATCH_EVENTS_PER_SM: usize = 2048;

/// Metric prefix used by the OpenMetrics exporter.
const OM_PREFIX: &str = "gms";

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Sampler configuration. Construct with [`TelemetryConfig::from_env`] to
/// honour `GMS_TELEMETRY_HZ`, then chain the builder-style setters.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Sampling interval (window length under no forced cuts).
    pub interval: Duration,
    /// Sample-ring capacity; the oldest row is evicted (and counted) when
    /// full.
    pub capacity: usize,
    /// Rolling-window objectives evaluated against the stream.
    pub slos: Vec<SloSpec>,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { interval: DEFAULT_INTERVAL, capacity: DEFAULT_CAPACITY, slos: Vec::new() }
    }
}

impl TelemetryConfig {
    /// Defaults: 10 ms interval, 4096-row ring, no SLOs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defaults with the `GMS_TELEMETRY_HZ` override applied (a frequency
    /// in Hz; invalid or non-positive values fall back to the default).
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(hz) = std::env::var("GMS_TELEMETRY_HZ").ok().and_then(|s| s.parse::<f64>().ok())
        {
            cfg = cfg.hz(hz);
        }
        cfg
    }

    /// Sets the cadence as a frequency. Clamped to [0.1 Hz, 10 kHz]; NaN
    /// and non-positive values are ignored.
    pub fn hz(mut self, hz: f64) -> Self {
        if hz.is_finite() && hz > 0.0 {
            self.interval = Duration::from_secs_f64(1.0 / hz.clamp(0.1, 10_000.0));
        }
        self
    }

    /// Sets the sampling interval directly.
    pub fn interval(mut self, d: Duration) -> Self {
        self.interval = d.max(Duration::from_micros(100));
        self
    }

    /// Sets the sample-ring capacity (min 2: one live row plus headroom for
    /// the final cut).
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = n.max(2);
        self
    }

    /// Adds a rolling-window objective.
    pub fn slo(mut self, spec: SloSpec) -> Self {
        self.slos.push(spec);
        self
    }
}

// ---------------------------------------------------------------------------
// Sink: where watched managers register
// ---------------------------------------------------------------------------

/// A registry of telemetry sources (manager [`Metrics`] handles and their
/// attached trace recorders). The sampler aggregates across every source,
/// merging counter snapshots, so a scenario that builds one manager per
/// cell still produces a single coherent stream.
///
/// Cloning shares the registry. Attach happens in the benchmark registry's
/// builder; a process-global sink can be installed so *every* manager built
/// while it is up reports in (that is how `repro watch` runs unmodified
/// matrix scenarios under the sampler).
#[derive(Clone, Default)]
pub struct TelemetrySink {
    sources: Arc<Mutex<Vec<Source>>>,
}

struct Source {
    metrics: Metrics,
    recorder: Option<Arc<TraceRecorder>>,
}

impl TelemetrySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a manager's metrics handle (and, when one is attached, its
    /// trace recorder). Disabled handles are ignored — they can never
    /// produce a reading.
    pub fn attach(&self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        let recorder = metrics.tracer().cloned();
        let mut sources = self.sources.lock().unwrap();
        // A rebuilt clone of the same counter block (e.g. a relay handle)
        // must not double-count: dedupe recorders by ring identity and
        // metrics by snapshot identity is impossible cheaply, so dedupe on
        // the recorder Arc when present; counter blocks are distinct per
        // builder call in practice.
        sources.push(Source { metrics: metrics.clone(), recorder });
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().unwrap().len()
    }

    /// Whether no source has registered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

static GLOBAL_SINK: Mutex<Option<TelemetrySink>> = Mutex::new(None);

/// Installs `sink` as the process-global watch sink. While installed, the
/// benchmark registry's builder force-enables metrics + tracing on every
/// manager it constructs and attaches them here. Returns the previously
/// installed sink, if any.
pub fn install_global_sink(sink: &TelemetrySink) -> Option<TelemetrySink> {
    GLOBAL_SINK.lock().unwrap().replace(sink.clone())
}

/// Removes the process-global watch sink.
pub fn clear_global_sink() {
    GLOBAL_SINK.lock().unwrap().take();
}

/// The currently installed process-global sink, if any.
pub fn global_sink() -> Option<TelemetrySink> {
    GLOBAL_SINK.lock().unwrap().clone()
}

// ---------------------------------------------------------------------------
// Sample
// ---------------------------------------------------------------------------

/// One sampling window's reading. Rates are per-window deltas divided by
/// the window length; `live_*`, `frag_percent` and `dropped_events` are
/// point-in-time readings at the window's end.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Sample {
    /// Monotone sample index (survives ring eviction).
    pub seq: u64,
    /// Window end, milliseconds since the sampler started.
    pub t_ms: f64,
    /// Window length in milliseconds (cadence, unless a cut was forced).
    pub window_ms: f64,
    /// Successful-or-failed malloc calls per second in the window.
    pub allocs_per_sec: f64,
    /// Free calls per second in the window.
    pub frees_per_sec: f64,
    /// CAS retries per malloc/free call in the window.
    pub cas_retries_per_op: f64,
    /// Magazine hits / (hits + misses) in the window; 0 when uncached.
    pub magazine_hit_rate: f64,
    /// Live allocations by counter accounting (mallocs − frees, net of
    /// failures), across all sources, cumulative.
    pub live_allocs: u64,
    /// Live bytes by trace replay (0 without a trace ring; approximate if
    /// the ring dropped events).
    pub live_bytes: u64,
    /// Fragmentation of the live set via [`crate::frag`]: percent by which
    /// the spanned address range exceeds the packed footprint.
    pub frag_percent: f64,
    /// Malloc completions folded into this window's latency histogram.
    pub malloc_ops: u64,
    /// Windowed malloc latency percentiles from the log2 histogram (ns).
    pub malloc_p50_ns: u64,
    /// 95th percentile (ns).
    pub malloc_p95_ns: u64,
    /// 99th percentile (ns).
    pub malloc_p99_ns: u64,
    /// OOM fallbacks per malloc call in the window.
    pub oom_fallback_rate: f64,
    /// Trace events dropped (ring full), cumulative across all recorders.
    pub dropped_events: u64,
    /// Kernel launches completing in this window — trace `LaunchEnd`
    /// events merged with executor launch-hook boundary marks (plain
    /// launches emit no trace events; the hook is their only signal).
    pub launches: u64,
    /// Whether this window was cut at a kernel boundary (launch hook)
    /// rather than by the cadence timer.
    pub boundary: bool,
}

impl Sample {
    /// The column order [`Sample::csv_row`] renders — shared with the CSV
    /// writers in the bench crate so headers never drift from rows.
    pub const CSV_HEADER: &'static [&'static str] = &[
        "seq",
        "t_ms",
        "window_ms",
        "allocs_per_sec",
        "frees_per_sec",
        "cas_retries_per_op",
        "magazine_hit_rate",
        "live_allocs",
        "live_bytes",
        "frag_percent",
        "malloc_ops",
        "malloc_p50_ns",
        "malloc_p95_ns",
        "malloc_p99_ns",
        "oom_fallback_rate",
        "dropped_events",
        "launches",
        "boundary",
    ];

    /// The row matching [`Sample::CSV_HEADER`].
    pub fn csv_row(&self) -> Vec<String> {
        vec![
            self.seq.to_string(),
            format!("{:.3}", self.t_ms),
            format!("{:.3}", self.window_ms),
            format!("{:.1}", self.allocs_per_sec),
            format!("{:.1}", self.frees_per_sec),
            format!("{:.4}", self.cas_retries_per_op),
            format!("{:.4}", self.magazine_hit_rate),
            self.live_allocs.to_string(),
            self.live_bytes.to_string(),
            format!("{:.2}", self.frag_percent),
            self.malloc_ops.to_string(),
            self.malloc_p50_ns.to_string(),
            self.malloc_p95_ns.to_string(),
            self.malloc_p99_ns.to_string(),
            format!("{:.6}", self.oom_fallback_rate),
            self.dropped_events.to_string(),
            self.launches.to_string(),
            (self.boundary as u8).to_string(),
        ]
    }
}

// ---------------------------------------------------------------------------
// SLOs
// ---------------------------------------------------------------------------

/// Which [`Sample`] field an SLO watches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloMetric {
    /// `malloc_p50_ns`.
    MallocP50Ns,
    /// `malloc_p95_ns`.
    MallocP95Ns,
    /// `malloc_p99_ns`.
    MallocP99Ns,
    /// `allocs_per_sec`.
    AllocsPerSec,
    /// `frees_per_sec`.
    FreesPerSec,
    /// `cas_retries_per_op`.
    CasRetriesPerOp,
    /// `magazine_hit_rate`.
    MagazineHitRate,
    /// `oom_fallback_rate`.
    OomFallbackRate,
    /// `frag_percent`.
    FragPercent,
    /// `live_bytes`.
    LiveBytes,
}

/// All SLO-watchable metrics, for listings and parse errors.
pub const ALL_SLO_METRICS: [SloMetric; 10] = [
    SloMetric::MallocP50Ns,
    SloMetric::MallocP95Ns,
    SloMetric::MallocP99Ns,
    SloMetric::AllocsPerSec,
    SloMetric::FreesPerSec,
    SloMetric::CasRetriesPerOp,
    SloMetric::MagazineHitRate,
    SloMetric::OomFallbackRate,
    SloMetric::FragPercent,
    SloMetric::LiveBytes,
];

impl SloMetric {
    /// Stable field name, identical to the sample CSV column.
    pub const fn name(self) -> &'static str {
        match self {
            SloMetric::MallocP50Ns => "malloc_p50_ns",
            SloMetric::MallocP95Ns => "malloc_p95_ns",
            SloMetric::MallocP99Ns => "malloc_p99_ns",
            SloMetric::AllocsPerSec => "allocs_per_sec",
            SloMetric::FreesPerSec => "frees_per_sec",
            SloMetric::CasRetriesPerOp => "cas_retries_per_op",
            SloMetric::MagazineHitRate => "magazine_hit_rate",
            SloMetric::OomFallbackRate => "oom_fallback_rate",
            SloMetric::FragPercent => "frag_percent",
            SloMetric::LiveBytes => "live_bytes",
        }
    }

    /// Reads this metric out of a sample.
    pub fn value(self, s: &Sample) -> f64 {
        match self {
            SloMetric::MallocP50Ns => s.malloc_p50_ns as f64,
            SloMetric::MallocP95Ns => s.malloc_p95_ns as f64,
            SloMetric::MallocP99Ns => s.malloc_p99_ns as f64,
            SloMetric::AllocsPerSec => s.allocs_per_sec,
            SloMetric::FreesPerSec => s.frees_per_sec,
            SloMetric::CasRetriesPerOp => s.cas_retries_per_op,
            SloMetric::MagazineHitRate => s.magazine_hit_rate,
            SloMetric::OomFallbackRate => s.oom_fallback_rate,
            SloMetric::FragPercent => s.frag_percent,
            SloMetric::LiveBytes => s.live_bytes as f64,
        }
    }

    fn parse(s: &str) -> Option<SloMetric> {
        ALL_SLO_METRICS.into_iter().find(|m| m.name() == s)
    }
}

/// Objective direction: which side of the threshold is healthy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloOp {
    /// Healthy while the windowed worst stays *below* the threshold.
    Below,
    /// Healthy while the windowed worst stays *above* the threshold.
    Above,
}

/// One rolling-window objective, e.g. `malloc_p99_ns<250000@1s`: over every
/// 1 s window, the worst p99 must stay under 250 µs.
#[derive(Clone, Debug, PartialEq)]
pub struct SloSpec {
    /// Watched sample field.
    pub metric: SloMetric,
    /// Healthy direction.
    pub op: SloOp,
    /// Threshold in the metric's native unit.
    pub threshold: f64,
    /// Evaluation window; samples are aggregated (worst-case) over it.
    pub window: Duration,
}

impl SloSpec {
    /// Worst-case aggregate of `value` into `acc` for this objective's
    /// direction (max for `Below`, min for `Above`).
    fn worse(&self, acc: f64, value: f64) -> f64 {
        match self.op {
            SloOp::Below => acc.max(value),
            SloOp::Above => acc.min(value),
        }
    }

    /// Identity value for [`SloSpec::worse`].
    fn neutral(&self) -> f64 {
        match self.op {
            SloOp::Below => f64::NEG_INFINITY,
            SloOp::Above => f64::INFINITY,
        }
    }

    /// Whether an aggregated window value breaches the objective.
    fn breached(&self, worst: f64) -> bool {
        match self.op {
            SloOp::Below => worst >= self.threshold,
            SloOp::Above => worst <= self.threshold,
        }
    }
}

impl std::fmt::Display for SloSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let op = match self.op {
            SloOp::Below => '<',
            SloOp::Above => '>',
        };
        let ms = self.window.as_secs_f64() * 1e3;
        if (ms / 1000.0).fract() == 0.0 && ms >= 1000.0 {
            write!(f, "{}{op}{}@{}s", self.metric.name(), self.threshold, ms / 1000.0)
        } else {
            write!(f, "{}{op}{}@{}ms", self.metric.name(), self.threshold, ms)
        }
    }
}

impl std::str::FromStr for SloSpec {
    type Err = String;

    /// Parses `<metric><op><threshold>@<window>`, e.g.
    /// `malloc_p99_ns<250000@1s` or `allocs_per_sec>1000@500ms`.
    fn from_str(s: &str) -> Result<SloSpec, String> {
        let err = |why: &str| {
            format!(
                "bad SLO spec {s:?}: {why} (format: <metric><'<'|'>'><threshold>@<window>, \
                 metrics: {})",
                ALL_SLO_METRICS.map(|m| m.name()).join(", ")
            )
        };
        let op_at = s.find(['<', '>']).ok_or_else(|| err("missing '<' or '>'"))?;
        let metric = SloMetric::parse(&s[..op_at]).ok_or_else(|| err("unknown metric"))?;
        let op = if s.as_bytes()[op_at] == b'<' { SloOp::Below } else { SloOp::Above };
        let rest = &s[op_at + 1..];
        let (thr, win) = rest.split_once('@').ok_or_else(|| err("missing '@<window>'"))?;
        let threshold: f64 = thr.parse().map_err(|_| err("threshold is not a number"))?;
        if !threshold.is_finite() {
            return Err(err("threshold is not finite"));
        }
        let window = if let Some(ms) = win.strip_suffix("ms") {
            ms.parse::<f64>().ok().map(|v| Duration::from_secs_f64(v / 1e3))
        } else if let Some(sec) = win.strip_suffix('s') {
            sec.parse::<f64>().ok().map(Duration::from_secs_f64)
        } else {
            None
        }
        .filter(|d| *d >= Duration::from_millis(1))
        .ok_or_else(|| err("window must be e.g. '500ms' or '1s' (≥ 1ms)"))?;
        Ok(SloSpec { metric, op, threshold, window })
    }
}

/// One contiguous run of breached evaluation windows.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BreachSpan {
    /// Start of the first breached window (ms since sampler start).
    pub start_ms: f64,
    /// End of the last breached window.
    pub end_ms: f64,
    /// Worst value observed across the span.
    pub worst: f64,
    /// Number of consecutive breached windows.
    pub windows: u32,
}

/// End-of-run report for one objective.
#[derive(Clone, Debug)]
pub struct SloReport {
    /// The objective.
    pub spec: SloSpec,
    /// Windows evaluated.
    pub windows_evaluated: u64,
    /// Windows breached.
    pub windows_breached: u64,
    /// Contiguous breach spans, in time order.
    pub breaches: Vec<BreachSpan>,
}

/// Per-spec rolling state.
#[derive(Clone, Debug)]
struct SloState {
    window_start_ms: f64,
    worst: f64,
    saw_sample: bool,
    evaluated: u64,
    breached: u64,
    open: Option<BreachSpan>,
    closed: Vec<BreachSpan>,
}

/// Evaluates a set of [`SloSpec`]s against the sample stream.
///
/// Samples are bucketed into consecutive fixed-length windows per spec; at
/// each window boundary the worst-case aggregate is compared against the
/// threshold, and consecutive breached windows merge into one
/// [`BreachSpan`].
#[derive(Clone, Debug, Default)]
pub struct SloTracker {
    specs: Vec<SloSpec>,
    state: Vec<SloState>,
}

impl SloTracker {
    /// Tracker for `specs` (empty is fine: [`SloTracker::reports`] is then
    /// empty too).
    pub fn new(specs: Vec<SloSpec>) -> Self {
        let state = specs
            .iter()
            .map(|s| SloState {
                window_start_ms: 0.0,
                worst: s.neutral(),
                saw_sample: false,
                evaluated: 0,
                breached: 0,
                open: None,
                closed: Vec::new(),
            })
            .collect();
        SloTracker { specs, state }
    }

    /// Folds one sample into every objective's current window, evaluating
    /// windows the sample's timestamp has moved past.
    pub fn observe(&mut self, sample: &Sample) {
        for (spec, st) in self.specs.iter().zip(self.state.iter_mut()) {
            let win_ms = spec.window.as_secs_f64() * 1e3;
            // Close every full window the stream has moved past. Windows
            // with no samples (sampler stalled) are skipped, not evaluated:
            // no reading is not evidence of health or breach.
            while sample.t_ms >= st.window_start_ms + win_ms {
                if st.saw_sample {
                    Self::evaluate(spec, st, win_ms);
                }
                st.window_start_ms += win_ms;
                if !st.saw_sample {
                    // Jump over a long gap in one step.
                    let gaps =
                        ((sample.t_ms - st.window_start_ms) / win_ms).floor().max(0.0) as u64;
                    st.window_start_ms += gaps as f64 * win_ms;
                }
                st.worst = spec.neutral();
                st.saw_sample = false;
            }
            st.worst = spec.worse(st.worst, spec.metric.value(sample));
            st.saw_sample = true;
        }
    }

    fn evaluate(spec: &SloSpec, st: &mut SloState, win_ms: f64) {
        st.evaluated += 1;
        let end_ms = st.window_start_ms + win_ms;
        if spec.breached(st.worst) {
            st.breached += 1;
            match &mut st.open {
                Some(span) => {
                    span.end_ms = end_ms;
                    span.worst = spec.worse(span.worst, st.worst);
                    span.windows += 1;
                }
                None => {
                    st.open = Some(BreachSpan {
                        start_ms: st.window_start_ms,
                        end_ms,
                        worst: st.worst,
                        windows: 1,
                    });
                }
            }
        } else if let Some(span) = st.open.take() {
            st.closed.push(span);
        }
    }

    /// Reports for every objective. The current (partial) window is
    /// evaluated provisionally when it has samples, so a run shorter than
    /// one SLO window still reports.
    pub fn reports(&self) -> Vec<SloReport> {
        self.specs
            .iter()
            .zip(self.state.iter())
            .map(|(spec, st)| {
                let mut st = st.clone();
                if st.saw_sample {
                    let win_ms = spec.window.as_secs_f64() * 1e3;
                    Self::evaluate(spec, &mut st, win_ms);
                }
                if let Some(span) = st.open.take() {
                    st.closed.push(span);
                }
                SloReport {
                    spec: spec.clone(),
                    windows_evaluated: st.evaluated,
                    windows_breached: st.breached,
                    breaches: st.closed,
                }
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Time series
// ---------------------------------------------------------------------------

/// A snapshot of everything the sampler has collected.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// Retained samples, oldest first (the ring may have evicted earlier
    /// ones — see [`TimeSeries::evicted`]).
    pub samples: Vec<Sample>,
    /// Samples evicted from the ring.
    pub evicted: u64,
    /// Ring capacity.
    pub capacity: usize,
    /// Configured cadence in milliseconds.
    pub interval_ms: f64,
    /// Cumulative merged counters across all sources at snapshot time.
    pub totals: CounterSnapshot,
    /// Cumulative dropped trace events across all recorders.
    pub dropped_events: u64,
    /// Cumulative observed kernel launches.
    pub launches: u64,
    /// Per-objective reports.
    pub slo: Vec<SloReport>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Finite float for JSON/OpenMetrics: NaN/inf (impossible by construction,
/// but a poisoned value must not produce an unparsable export) render as 0.
fn fin(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

impl TimeSeries {
    /// The newest sample, if any.
    pub fn last(&self) -> Option<&Sample> {
        self.samples.last()
    }

    /// Schema-versioned JSON dump. `label` names the run (scenario name);
    /// `provenance` carries the standard stamps (`git`, `device`, seed…).
    /// The output is strict JSON — validated in tests by the bench crate's
    /// parser, the same discipline as `validate_chrome_json`.
    pub fn to_json(&self, label: &str, provenance: &[(String, String)]) -> String {
        let mut out = String::with_capacity(256 + self.samples.len() * 256);
        out.push_str(&format!(
            "{{\n  \"schema\": {TELEMETRY_SCHEMA_VERSION},\n  \"kind\": \"gms-telemetry\",\n  \
             \"label\": \"{}\",\n",
            esc(label)
        ));
        out.push_str("  \"provenance\": {");
        for (i, (k, v)) in provenance.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": \"{}\"", esc(k), esc(v)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"interval_ms\": {}, \"capacity\": {}, \"evicted\": {},\n",
            fin(self.interval_ms),
            self.capacity,
            self.evicted
        ));
        out.push_str(&format!(
            "  \"totals\": {{\"malloc_calls\": {}, \"malloc_failures\": {}, \"free_calls\": {}, \
             \"free_failures\": {}, \"cas_retries\": {}, \"oom_fallbacks\": {}, \
             \"magazine_hits\": {}, \"magazine_misses\": {}, \"magazine_flushes\": {}}},\n",
            self.totals.malloc_calls(),
            self.totals.malloc_failures(),
            self.totals.free_calls(),
            self.totals.free_failures(),
            self.totals.cas_retries(),
            self.totals.oom_fallbacks(),
            self.totals.magazine_hits(),
            self.totals.magazine_misses(),
            self.totals.magazine_flushes(),
        ));
        out.push_str(&format!(
            "  \"dropped_events\": {}, \"launches\": {},\n",
            self.dropped_events, self.launches
        ));
        out.push_str("  \"samples\": [\n");
        for (i, s) in self.samples.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"t_ms\": {:.3}, \"window_ms\": {:.3}, \
                 \"allocs_per_sec\": {:.1}, \"frees_per_sec\": {:.1}, \
                 \"cas_retries_per_op\": {:.4}, \"magazine_hit_rate\": {:.4}, \
                 \"live_allocs\": {}, \"live_bytes\": {}, \"frag_percent\": {:.2}, \
                 \"malloc_ops\": {}, \"malloc_p50_ns\": {}, \"malloc_p95_ns\": {}, \
                 \"malloc_p99_ns\": {}, \"oom_fallback_rate\": {:.6}, \"dropped_events\": {}, \
                 \"launches\": {}, \"boundary\": {}}}{}\n",
                s.seq,
                fin(s.t_ms),
                fin(s.window_ms),
                fin(s.allocs_per_sec),
                fin(s.frees_per_sec),
                fin(s.cas_retries_per_op),
                fin(s.magazine_hit_rate),
                s.live_allocs,
                s.live_bytes,
                fin(s.frag_percent),
                s.malloc_ops,
                s.malloc_p50_ns,
                s.malloc_p95_ns,
                s.malloc_p99_ns,
                fin(s.oom_fallback_rate),
                s.dropped_events,
                s.launches,
                s.boundary,
                if i + 1 == self.samples.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"slo\": [\n");
        for (i, r) in self.slo.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"spec\": \"{}\", \"windows_evaluated\": {}, \"windows_breached\": {}, \
                 \"breaches\": [",
                esc(&r.spec.to_string()),
                r.windows_evaluated,
                r.windows_breached
            ));
            for (j, b) in r.breaches.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"start_ms\": {:.3}, \"end_ms\": {:.3}, \"worst\": {:.3}, \
                     \"windows\": {}}}",
                    fin(b.start_ms),
                    fin(b.end_ms),
                    fin(b.worst),
                    b.windows
                ));
            }
            out.push_str(&format!("]}}{}\n", if i + 1 == self.slo.len() { "" } else { "," }));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// OpenMetrics text exposition: latest-window gauges plus cumulative
    /// counters, every series labelled `run="<label>"`. Ends with `# EOF`
    /// as the format requires; validated by [`validate_openmetrics`].
    pub fn render_openmetrics(&self, label: &str) -> String {
        let mut out = String::with_capacity(4096);
        let lbl = format!("{{run=\"{}\"}}", esc(label));
        let last = self.samples.last().copied().unwrap_or_default();
        let mut gauge = |name: &str, help: &str, v: f64| {
            out.push_str(&format!(
                "# HELP {OM_PREFIX}_{name} {help}\n# TYPE {OM_PREFIX}_{name} \
                 gauge\n{OM_PREFIX}_{name}{lbl} {}\n",
                fin(v)
            ));
        };
        gauge(
            "allocs_per_second",
            "Malloc calls per second over the last window.",
            last.allocs_per_sec,
        );
        gauge(
            "frees_per_second",
            "Free calls per second over the last window.",
            last.frees_per_sec,
        );
        gauge(
            "cas_retries_per_op",
            "CAS retries per malloc/free call over the last window.",
            last.cas_retries_per_op,
        );
        gauge(
            "magazine_hit_ratio",
            "Magazine cache hit ratio over the last window.",
            last.magazine_hit_rate,
        );
        gauge(
            "live_allocations",
            "Live allocations by counter accounting.",
            last.live_allocs as f64,
        );
        gauge("live_bytes", "Live bytes by trace replay.", last.live_bytes as f64);
        gauge(
            "fragmentation_percent",
            "Live address range percent over packed footprint.",
            last.frag_percent,
        );
        gauge(
            "oom_fallbacks_per_malloc",
            "OOM fallbacks per malloc call over the last window.",
            last.oom_fallback_rate,
        );
        gauge("sample_window_ms", "Length of the last sample window in ms.", last.window_ms);
        // Latency percentiles as one gauge family with a quantile label —
        // the summary-typed exposition would require _count/_sum series the
        // log2 histogram cannot provide losslessly per window.
        out.push_str(&format!(
            "# HELP {OM_PREFIX}_malloc_latency_ns Windowed malloc latency percentile.\n# TYPE \
             {OM_PREFIX}_malloc_latency_ns gauge\n"
        ));
        for (q, v) in [
            ("0.5", last.malloc_p50_ns),
            ("0.95", last.malloc_p95_ns),
            ("0.99", last.malloc_p99_ns),
        ] {
            out.push_str(&format!(
                "{OM_PREFIX}_malloc_latency_ns{{run=\"{}\",quantile=\"{q}\"}} {v}\n",
                esc(label)
            ));
        }
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!(
                "# HELP {OM_PREFIX}_{name} {help}\n# TYPE {OM_PREFIX}_{name} \
                 counter\n{OM_PREFIX}_{name}_total{lbl} {v}\n"
            ));
        };
        counter(
            "malloc_calls",
            "Malloc calls across all watched managers.",
            self.totals.malloc_calls(),
        );
        counter("malloc_failures", "Failed malloc calls.", self.totals.malloc_failures());
        counter("free_calls", "Free calls across all watched managers.", self.totals.free_calls());
        counter(
            "cas_retries",
            "CAS retries across all watched managers.",
            self.totals.cas_retries(),
        );
        counter("oom_fallbacks", "OOM fallback events.", self.totals.oom_fallbacks());
        counter("magazine_hits", "Magazine cache hits.", self.totals.magazine_hits());
        counter(
            "magazine_flushes",
            "Blocks flushed from magazines.",
            self.totals.magazine_flushes(),
        );
        counter("dropped_trace_events", "Trace events dropped ring-full.", self.dropped_events);
        counter("launches", "Observed kernel launches.", self.launches);
        counter("samples", "Telemetry samples taken.", self.evicted + self.samples.len() as u64);
        if !self.slo.is_empty() {
            out.push_str(&format!(
                "# HELP {OM_PREFIX}_slo_windows_breached SLO evaluation windows breached.\n# TYPE \
                 {OM_PREFIX}_slo_windows_breached counter\n"
            ));
            for r in &self.slo {
                out.push_str(&format!(
                    "{OM_PREFIX}_slo_windows_breached_total{{run=\"{}\",slo=\"{}\"}} {}\n",
                    esc(label),
                    esc(&r.spec.to_string()),
                    r.windows_breached
                ));
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Human-readable SLO breach-span table (console output of `repro
    /// watch`). Empty string when no SLOs were configured.
    pub fn slo_table(&self) -> String {
        if self.slo.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        out.push_str("slo, windows, breached, spans, worst, detail\n");
        for r in &self.slo {
            let worst = r
                .breaches
                .iter()
                .map(|b| b.worst)
                .fold(r.spec.neutral(), |a, v| r.spec.worse(a, v));
            let detail = r
                .breaches
                .iter()
                .map(|b| format!("[{:.0}ms..{:.0}ms x{}]", b.start_ms, b.end_ms, b.windows))
                .collect::<Vec<_>>()
                .join(" ");
            out.push_str(&format!(
                "{}, {}, {}, {}, {}, {}\n",
                r.spec,
                r.windows_evaluated,
                r.windows_breached,
                r.breaches.len(),
                if worst.is_finite() { format!("{worst:.1}") } else { "-".to_string() },
                if detail.is_empty() { "-".to_string() } else { detail },
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// OpenMetrics validator
// ---------------------------------------------------------------------------

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().next().is_some_and(|b| b.is_ascii_alphabetic() || b == b'_' || b == b':')
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

/// Validates an OpenMetrics text exposition the way `validate_chrome_json`
/// validates a Chrome trace: structural checks strong enough that a scrape
/// endpoint (Prometheus in OpenMetrics mode) would accept the payload.
/// Returns the number of sample lines.
///
/// Checks: every sample's metric family has a preceding `# TYPE`; counter
/// samples use the `_total` (or `_created`) suffix; metric names and label
/// syntax are well-formed; values parse as finite floats; the exposition
/// ends with `# EOF`.
pub fn validate_openmetrics(s: &str) -> Result<usize, String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples = 0usize;
    let mut saw_eof = false;
    for (ln, line) in s.lines().enumerate() {
        let ln = ln + 1;
        if saw_eof {
            return Err(format!("line {ln}: content after # EOF"));
        }
        if line.is_empty() {
            return Err(format!("line {ln}: blank line (not allowed in OpenMetrics)"));
        }
        if let Some(meta) = line.strip_prefix("# ") {
            if meta == "EOF" {
                saw_eof = true;
                continue;
            }
            let mut parts = meta.splitn(3, ' ');
            let keyword = parts.next().unwrap_or("");
            match keyword {
                "TYPE" => {
                    let name = parts.next().ok_or(format!("line {ln}: TYPE missing name"))?;
                    let ty = parts.next().ok_or(format!("line {ln}: TYPE missing type"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {ln}: bad metric name {name:?}"));
                    }
                    if !["gauge", "counter", "summary", "histogram", "info", "unknown"]
                        .contains(&ty)
                    {
                        return Err(format!("line {ln}: unknown metric type {ty:?}"));
                    }
                    types.insert(name.to_string(), ty.to_string());
                }
                "HELP" | "UNIT" => {
                    let name = parts.next().ok_or(format!("line {ln}: {keyword} missing name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {ln}: bad metric name {name:?}"));
                    }
                }
                _ => return Err(format!("line {ln}: unknown metadata keyword {keyword:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            return Err(format!("line {ln}: comment must be '# ' metadata"));
        }
        // Sample line: name[{labels}] value [timestamp]
        let (series, rest) = match line.find('{') {
            Some(open) => {
                let close = line[open..]
                    .find('}')
                    .map(|i| open + i)
                    .ok_or(format!("line {ln}: unterminated label set"))?;
                let labels = &line[open + 1..close];
                if !labels.is_empty() {
                    for pair in labels.split(',') {
                        let (k, v) =
                            pair.split_once('=').ok_or(format!("line {ln}: bad label {pair:?}"))?;
                        if !valid_metric_name(k) {
                            return Err(format!("line {ln}: bad label name {k:?}"));
                        }
                        if !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                            return Err(format!("line {ln}: label value not quoted: {v:?}"));
                        }
                    }
                }
                (&line[..open], line[close + 1..].trim_start())
            }
            None => {
                let sp = line.find(' ').ok_or(format!("line {ln}: sample missing value"))?;
                (&line[..sp], line[sp + 1..].trim_start())
            }
        };
        if !valid_metric_name(series) {
            return Err(format!("line {ln}: bad metric name {series:?}"));
        }
        let value = rest.split(' ').next().unwrap_or("");
        let v: f64 = value.parse().map_err(|_| format!("line {ln}: bad value {value:?}"))?;
        if !v.is_finite() {
            return Err(format!("line {ln}: non-finite value {value:?}"));
        }
        // Family resolution: a counter's samples carry _total/_created.
        let family = series
            .strip_suffix("_total")
            .or_else(|| series.strip_suffix("_created"))
            .filter(|f| types.get(*f).is_some_and(|t| t == "counter"))
            .unwrap_or(series);
        match types.get(family) {
            None => return Err(format!("line {ln}: sample {series:?} has no preceding # TYPE")),
            Some(t) if t == "counter" && family == series => {
                return Err(format!(
                    "line {ln}: counter sample {series:?} must use the _total suffix"
                ));
            }
            Some(_) => {}
        }
        samples += 1;
    }
    if !saw_eof {
        return Err("missing terminal # EOF".to_string());
    }
    Ok(samples)
}

// ---------------------------------------------------------------------------
// The sampler
// ---------------------------------------------------------------------------

/// Control block shared between the handle and the sampler thread. All
/// coordination is Mutex + Condvar — no lock-free cleverness is warranted
/// off the allocation hot path, and it keeps the module trivially clean
/// under the atomics-ordering lint.
struct Ctl {
    stop: bool,
    /// Forced-cut request generation; the thread acks by copying into
    /// `taken`.
    force: u64,
    taken: u64,
    /// The pending forced cut is a kernel-boundary cut.
    boundary: bool,
}

struct State {
    ring: VecDeque<Sample>,
    capacity: usize,
    evicted: u64,
    totals: CounterSnapshot,
    dropped: u64,
    launches: u64,
    /// Cumulative kernel-boundary marks ([`BoundaryMarker::mark`] /
    /// [`Telemetry::mark_boundary`]) — the launch signal for launches that
    /// emit no trace events.
    marks: u64,
    /// Marks already attributed to a finished window.
    folded_marks: u64,
    seq: u64,
    slo: SloTracker,
}

struct Shared {
    ctl: Mutex<Ctl>,
    /// Wakes the sampler (forced cut, stop).
    wake: Condvar,
    /// Wakes `sample_now` waiters (cut acknowledged).
    acked: Condvar,
    state: Mutex<State>,
    interval: Duration,
}

impl Shared {
    fn series(&self) -> TimeSeries {
        let st = self.state.lock().unwrap();
        TimeSeries {
            samples: st.ring.iter().copied().collect(),
            evicted: st.evicted,
            capacity: st.capacity,
            interval_ms: self.interval.as_secs_f64() * 1e3,
            totals: st.totals,
            dropped_events: st.dropped,
            launches: st.launches,
            slo: st.slo.reports(),
        }
    }
}

/// Per-recorder replay cursor: how far into a ring's event stream the
/// sampler has folded, keyed by ring identity.
struct RecorderCursor {
    recorder: Arc<TraceRecorder>,
    /// Per-shard consumed-prefix indices for
    /// [`TraceRecorder::snapshot_since`] — each committed event is folded
    /// into exactly one window, with no per-tick full-ring re-decode.
    shard_cursors: Vec<u64>,
    /// `recorded()` at the last fold — unchanged means even the
    /// incremental drain can be skipped entirely this tick.
    seen: u64,
}

/// Sampler-thread working set (never locked; owned by the thread).
struct Cursor {
    prev: CounterSnapshot,
    recorders: Vec<RecorderCursor>,
    /// Live allocation replay: offset → size, fed by MallocEnd/FreeEnd.
    live: HashMap<u64, u64>,
    /// Cached `(live_bytes, frag_percent)` of `live` — rebuilding the
    /// range is O(live set), so it only happens on windows whose event
    /// fold actually changed the set; idle ticks reuse the cache.
    occupancy: (u64, f64),
    /// Folded counters of retired sources: once a manager's last clone is
    /// dropped its block is frozen, so it is snapshotted one final time
    /// into this base and pruned from the sink — long runs churning many
    /// managers would otherwise re-read every dead shard every tick.
    retired: CounterSnapshot,
    /// `dropped()` totals of retired trace recorders, same idea.
    retired_dropped: u64,
    last_t: Duration,
}

/// Handle to a running sampler thread. Dropping (or [`Telemetry::stop`])
/// takes a final sample, joins the thread and returns the series.
pub struct Telemetry {
    shared: Arc<Shared>,
    sink: TelemetrySink,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Telemetry {
    /// Starts the sampler thread over `sink`. Managers attached to the sink
    /// (now or later) are folded into every subsequent window.
    pub fn start(cfg: TelemetryConfig, sink: TelemetrySink) -> Telemetry {
        let shared = Arc::new(Shared {
            ctl: Mutex::new(Ctl { stop: false, force: 0, taken: 0, boundary: false }),
            wake: Condvar::new(),
            acked: Condvar::new(),
            state: Mutex::new(State {
                ring: VecDeque::with_capacity(cfg.capacity.min(65_536)),
                capacity: cfg.capacity,
                evicted: 0,
                totals: CounterSnapshot::default(),
                dropped: 0,
                launches: 0,
                marks: 0,
                folded_marks: 0,
                seq: 0,
                slo: SloTracker::new(cfg.slos.clone()),
            }),
            interval: cfg.interval,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            let sink = sink.clone();
            std::thread::Builder::new()
                .name("gms-telemetry".to_string())
                .spawn(move || sampler_loop(&shared, &sink))
                .expect("spawn telemetry sampler thread")
        };
        Telemetry { shared, sink, thread: Some(thread) }
    }

    /// The sink this sampler reads. Attach more managers at any time.
    pub fn sink(&self) -> &TelemetrySink {
        &self.sink
    }

    /// Forces an immediate window cut and blocks until the sample is taken.
    pub fn sample_now(&self) {
        self.cut(false, true);
    }

    /// Marks a kernel boundary: forces a window cut flagged
    /// [`Sample::boundary`] without blocking the caller (the launch path
    /// must not stall on the sampler).
    pub fn mark_boundary(&self) {
        self.cut(true, false);
    }

    /// A cheap cloneable handle that cuts boundary windows without owning
    /// the sampler — what a `'static` executor launch hook captures (the
    /// hook outlives no one, the `Telemetry` value stays with the caller).
    /// Marks become no-ops once the sampler has stopped.
    pub fn boundary_marker(&self) -> BoundaryMarker {
        BoundaryMarker { shared: Arc::clone(&self.shared) }
    }

    fn cut(&self, boundary: bool, wait: bool) {
        if self.thread.is_none() {
            return;
        }
        if boundary {
            self.shared.state.lock().unwrap().marks += 1;
        }
        let mut ctl = self.shared.ctl.lock().unwrap();
        ctl.force += 1;
        ctl.boundary |= boundary;
        let gen = ctl.force;
        self.shared.wake.notify_all();
        if wait {
            while ctl.taken < gen && !ctl.stop {
                ctl = self.shared.acked.wait(ctl).unwrap();
            }
        }
    }

    /// Snapshot of the series so far, without stopping the sampler. Used by
    /// the TCP exporter on every scrape.
    pub fn snapshot(&self) -> TimeSeries {
        self.shared.series()
    }

    /// Stops the sampler: takes one final sample (cutting the in-progress
    /// window so trailing ops — e.g. magazine drains — are reported), joins
    /// the thread, and returns everything collected.
    ///
    /// Call [`DeviceAllocator::drain`](crate::traits::DeviceAllocator::drain)
    /// on any still-live managers *before* this, or the final window will
    /// under-report frees still parked in decorator caches.
    pub fn stop(mut self) -> TimeSeries {
        self.shutdown();
        self.shared.series()
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            {
                let mut ctl = self.shared.ctl.lock().unwrap();
                ctl.stop = true;
                self.shared.wake.notify_all();
            }
            let _ = thread.join();
            // Unblock any sample_now caller racing the shutdown.
            self.shared.acked.notify_all();
        }
    }

    /// Serves the OpenMetrics exposition over a minimal blocking HTTP
    /// listener (`GET` anything → the current snapshot). Binds `addr`
    /// (e.g. `127.0.0.1:9184`; port 0 picks a free port — read it back
    /// from [`TelemetryServer::addr`]).
    pub fn serve(&self, addr: &str, label: &str) -> std::io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let shared = Arc::clone(&self.shared);
            let stop = Arc::clone(&stop);
            let label = label.to_string();
            std::thread::Builder::new()
                .name("gms-telemetry-http".to_string())
                .spawn(move || serve_loop(&listener, &shared, &stop, &label))
                .expect("spawn telemetry http thread")
        };
        Ok(TelemetryServer { addr: local, stop, thread: Some(thread) })
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Detached kernel-boundary trigger; see [`Telemetry::boundary_marker`].
#[derive(Clone)]
pub struct BoundaryMarker {
    shared: Arc<Shared>,
}

impl BoundaryMarker {
    /// Non-blocking boundary window cut ([`Telemetry::mark_boundary`]
    /// semantics); a no-op after the sampler stopped.
    pub fn mark(&self) {
        {
            let mut ctl = self.shared.ctl.lock().unwrap();
            if ctl.stop {
                return;
            }
            ctl.force += 1;
            ctl.boundary = true;
            self.shared.wake.notify_all();
        }
        // Marks also count launches: plain (non-observed) launches emit no
        // `LaunchEnd` trace event, so the hook is the only signal they
        // happened. `take_sample` takes max(trace launches, mark delta)
        // per window — the hook sees a superset of the traced launches.
        self.shared.state.lock().unwrap().marks += 1;
    }
}

/// Running OpenMetrics endpoint; see [`Telemetry::serve`]. Stops (and joins
/// its thread) on [`TelemetryServer::stop`] or drop.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TelemetryServer {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock the accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_loop(listener: &TcpListener, shared: &Shared, stop: &AtomicBool, label: &str) {
    while !stop.load(Ordering::Acquire) {
        let Ok((mut conn, _)) = listener.accept() else { continue };
        if stop.load(Ordering::Acquire) {
            return;
        }
        // Drain the request line + headers (bounded, with a timeout) so the
        // peer's write never blocks against our response.
        let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
        let mut buf = [0u8; 4096];
        let mut seen: Vec<u8> = Vec::new();
        loop {
            match conn.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    seen.extend_from_slice(&buf[..n]);
                    if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 16_384 {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        let body = shared.series().render_openmetrics(label);
        let resp = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: application/openmetrics-text; version=1.0.0; \
             charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = conn.write_all(resp.as_bytes());
        let _ = conn.flush();
    }
}

// ---------------------------------------------------------------------------
// Sampler thread body
// ---------------------------------------------------------------------------

fn sampler_loop(shared: &Shared, sink: &TelemetrySink) {
    let epoch = Instant::now();
    let mut cursor = Cursor {
        prev: CounterSnapshot::default(),
        recorders: Vec::new(),
        live: HashMap::new(),
        occupancy: (0, 0.0),
        retired: CounterSnapshot::default(),
        retired_dropped: 0,
        last_t: Duration::ZERO,
    };
    loop {
        // Wait until the cadence deadline, a forced cut, or stop.
        let deadline = cursor.last_t + shared.interval;
        let (stop, boundary) = {
            let mut ctl = shared.ctl.lock().unwrap();
            loop {
                if ctl.stop || ctl.force > ctl.taken {
                    break;
                }
                let now = epoch.elapsed();
                if now >= deadline {
                    break;
                }
                let (guard, _) = shared.wake.wait_timeout(ctl, deadline - now).unwrap();
                ctl = guard;
            }
            let boundary = ctl.boundary;
            ctl.boundary = false;
            (ctl.stop, boundary)
        };
        take_sample(shared, sink, &mut cursor, epoch, boundary);
        {
            let mut ctl = shared.ctl.lock().unwrap();
            ctl.taken = ctl.force;
            shared.acked.notify_all();
            if stop || ctl.stop {
                return;
            }
        }
    }
}

fn take_sample(
    shared: &Shared,
    sink: &TelemetrySink,
    cursor: &mut Cursor,
    epoch: Instant,
    boundary: bool,
) {
    let now = epoch.elapsed();
    // Merge every source's counters; pick up recorders we have not seen.
    // Sources whose last manager-side handle is gone are frozen: fold
    // their final snapshot into the retired base and prune them, so a run
    // churning through many managers never re-reads dead shards. The
    // sole-owner check precedes the snapshot — frozen-at-check means the
    // snapshot taken after it is the complete final value.
    let mut merged = cursor.retired;
    {
        let mut sources = sink.sources.lock().unwrap();
        sources.retain(|src| {
            let dead = src.metrics.is_sole_owner();
            let snap = src.metrics.snapshot();
            merged = merged.merge(&snap);
            if let Some(rec) = &src.recorder {
                if !cursor.recorders.iter().any(|c| Arc::ptr_eq(&c.recorder, rec)) {
                    cursor.recorders.push(RecorderCursor {
                        recorder: Arc::clone(rec),
                        shard_cursors: Vec::new(),
                        seen: 0,
                    });
                }
            }
            if dead {
                cursor.retired = cursor.retired.merge(&snap);
            }
            !dead
        });
    }
    let delta = merged.delta_since(&cursor.prev);

    // Fold newly committed trace events into this window, then retire
    // recorders nobody else holds: the drain just taken was their last
    // (no handle left to emit), so only the dropped total survives.
    let mut hist = LatencyHistogram::new();
    let mut launches = 0u64;
    let mut live_changed = false;
    let mut dropped = cursor.retired_dropped;
    let mut retired_dropped = 0u64;
    let (recorders, live) = (&mut cursor.recorders, &mut cursor.live);
    recorders.retain_mut(|rc| {
        // Sole ownership checked *before* the drain: frozen-at-check means
        // this drain sees every event the recorder will ever hold.
        let sole = Arc::strong_count(&rc.recorder) == 1;
        let recorded = rc.recorder.recorded();
        if recorded != rc.seen {
            rc.seen = recorded;
            let trace = rc.recorder.snapshot_since(&mut rc.shard_cursors);
            for ev in &trace.events {
                match ev.kind {
                    EventKind::MallocEnd => {
                        hist.record(ev.args[2]);
                        if ev.args[0] != u64::MAX {
                            live.insert(ev.args[0], ev.args[1]);
                            live_changed = true;
                        }
                    }
                    // args = [ptr, latency, retries, ok]; the bulk-free
                    // sentinel (u64::MAX) carries no pointer to retire.
                    EventKind::FreeEnd if ev.args[3] == 1 && ev.args[0] != u64::MAX => {
                        live.remove(&ev.args[0]);
                        live_changed = true;
                    }
                    EventKind::LaunchEnd => launches += 1,
                    _ => {}
                }
            }
        }
        dropped += rc.recorder.dropped();
        if sole {
            retired_dropped += rc.recorder.dropped();
        }
        !sole
    });
    cursor.retired_dropped += retired_dropped;

    // Fragmentation of the live set, via the paper's frag machinery.
    // Rebuilding the range walks the whole live map, so only windows whose
    // events changed the set pay it; idle ticks (the common case at kHz
    // cadences) reuse the cached pair.
    if live_changed {
        let mut range = AddressRange::new();
        let mut live_bytes = 0u64;
        for (&off, &size) in &cursor.live {
            range.record(DevicePtr::new(off), size);
            live_bytes += size;
        }
        let frag_percent = if range.count() > 0 {
            FragmentationStats::from_range(&range).percent_over_baseline()
        } else {
            0.0
        };
        cursor.occupancy = (live_bytes, frag_percent);
    }
    let (live_bytes, frag_percent) = cursor.occupancy;

    let window = now.saturating_sub(cursor.last_t);
    let win_s = window.as_secs_f64().max(1e-9);
    let ops = delta.malloc_calls() + delta.free_calls();
    let mag_traffic = delta.magazine_hits() + delta.magazine_misses();
    let sample = Sample {
        seq: 0, // assigned under the state lock
        t_ms: now.as_secs_f64() * 1e3,
        window_ms: window.as_secs_f64() * 1e3,
        allocs_per_sec: delta.malloc_calls() as f64 / win_s,
        frees_per_sec: delta.free_calls() as f64 / win_s,
        cas_retries_per_op: delta.cas_retries() as f64 / ops.max(1) as f64,
        magazine_hit_rate: delta.magazine_hits() as f64 / mag_traffic.max(1) as f64,
        live_allocs: merged.live(),
        live_bytes,
        frag_percent,
        malloc_ops: hist.count(),
        malloc_p50_ns: hist.p50(),
        malloc_p95_ns: hist.p95(),
        malloc_p99_ns: hist.p99(),
        oom_fallback_rate: delta.oom_fallbacks() as f64 / delta.malloc_calls().max(1) as f64,
        dropped_events: dropped,
        launches,
        boundary,
    };

    cursor.prev = merged;
    cursor.last_t = now;

    let mut st = shared.state.lock().unwrap();
    let mut sample = sample;
    sample.seq = st.seq;
    st.seq += 1;
    st.totals = merged;
    st.dropped = dropped;
    // Launches this window: trace `LaunchEnd` events where a tracer saw
    // the launch, boundary marks where only the launch hook did. The hook
    // fires for every pooled launch (a superset of the traced ones), so
    // `max` avoids double-counting without losing the untraced launches.
    let mark_delta = st.marks - st.folded_marks;
    st.folded_marks = st.marks;
    sample.launches = sample.launches.max(mark_delta);
    st.launches += sample.launches;
    st.slo.observe(&sample);
    if st.ring.len() == st.capacity {
        st.ring.pop_front();
        st.evicted += 1;
    }
    st.ring.push_back(sample);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::ThreadCtx;
    use crate::heap::DeviceHeap;
    use crate::metrics::Counter;
    use crate::traits::DeviceAllocator;

    fn sample_at(t_ms: f64, p99: u64) -> Sample {
        Sample { t_ms, window_ms: 10.0, malloc_p99_ns: p99, ..Sample::default() }
    }

    #[test]
    fn config_hz_sets_interval() {
        let cfg = TelemetryConfig::new().hz(100.0);
        assert_eq!(cfg.interval, Duration::from_millis(10));
        let cfg = TelemetryConfig::new().hz(0.0);
        assert_eq!(cfg.interval, DEFAULT_INTERVAL, "non-positive hz ignored");
        let cfg = TelemetryConfig::new().hz(f64::NAN);
        assert_eq!(cfg.interval, DEFAULT_INTERVAL, "NaN hz ignored");
        let cfg = TelemetryConfig::new().hz(1_000_000.0);
        assert_eq!(cfg.interval, Duration::from_secs_f64(1.0 / 10_000.0), "clamped to 10 kHz");
    }

    #[test]
    fn slo_spec_parses_and_round_trips() {
        let spec: SloSpec = "malloc_p99_ns<250000@1s".parse().unwrap();
        assert_eq!(spec.metric, SloMetric::MallocP99Ns);
        assert_eq!(spec.op, SloOp::Below);
        assert_eq!(spec.threshold, 250000.0);
        assert_eq!(spec.window, Duration::from_secs(1));
        assert_eq!(spec.to_string(), "malloc_p99_ns<250000@1s");
        let spec: SloSpec = "allocs_per_sec>1000@500ms".parse().unwrap();
        assert_eq!(spec.op, SloOp::Above);
        assert_eq!(spec.window, Duration::from_millis(500));
        assert_eq!(spec.to_string(), "allocs_per_sec>1000@500ms");
        assert_eq!(spec, spec.to_string().parse().unwrap());
    }

    #[test]
    fn slo_spec_rejects_malformed() {
        for bad in [
            "malloc_p99_ns<250000",      // no window
            "nope<1@1s",                 // unknown metric
            "malloc_p99_ns=5@1s",        // bad op
            "malloc_p99_ns<abc@1s",      // bad threshold
            "malloc_p99_ns<5@yesterday", // bad window
            "malloc_p99_ns<inf@1s",      // non-finite threshold
        ] {
            assert!(bad.parse::<SloSpec>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn slo_tracker_merges_consecutive_breaches_into_spans() {
        let spec: SloSpec = "malloc_p99_ns<1000@100ms".parse().unwrap();
        let mut tracker = SloTracker::new(vec![spec]);
        // Windows [0,100): healthy, [100,200): breach, [200,300): breach,
        // [300,400): healthy — expect one span covering two windows.
        for (t, p99) in [
            (10.0, 10),
            (50.0, 20),
            (110.0, 5000),
            (150.0, 10),
            (210.0, 2000),
            (310.0, 10),
            (390.0, 10),
            (410.0, 10), // pushes the [300,400) window closed
        ] {
            tracker.observe(&sample_at(t, p99));
        }
        let reports = tracker.reports();
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.windows_breached, 2, "{r:?}");
        assert_eq!(r.breaches.len(), 1, "consecutive breaches merge: {r:?}");
        let span = r.breaches[0];
        assert_eq!(span.windows, 2);
        assert_eq!(span.start_ms, 100.0);
        assert_eq!(span.end_ms, 300.0);
        assert_eq!(span.worst, 5000.0);
    }

    #[test]
    fn slo_tracker_reports_partial_window_provisionally() {
        let spec: SloSpec = "malloc_p99_ns<1000@1s".parse().unwrap();
        let mut tracker = SloTracker::new(vec![spec]);
        tracker.observe(&sample_at(10.0, 9999));
        let r = &tracker.reports()[0];
        assert_eq!(r.windows_breached, 1, "short run still reports: {r:?}");
        assert_eq!(r.breaches.len(), 1);
    }

    #[test]
    fn slo_tracker_above_direction() {
        let spec: SloSpec = "allocs_per_sec>100@100ms".parse().unwrap();
        let mut tracker = SloTracker::new(vec![spec.clone()]);
        let mut s = Sample { t_ms: 10.0, allocs_per_sec: 50.0, ..Sample::default() };
        tracker.observe(&s);
        s.t_ms = 60.0;
        s.allocs_per_sec = 500.0;
        tracker.observe(&s); // worst (min) = 50 → breach
        s.t_ms = 150.0;
        s.allocs_per_sec = 500.0;
        tracker.observe(&s);
        let r = &tracker.reports()[0];
        assert_eq!(r.windows_breached, 1, "{r:?}");
        assert_eq!(r.breaches[0].worst, 50.0);
    }

    fn series_fixture() -> TimeSeries {
        let mut samples = Vec::new();
        for i in 0..5u64 {
            samples.push(Sample {
                seq: i,
                t_ms: (i + 1) as f64 * 10.0,
                window_ms: 10.0,
                allocs_per_sec: 1000.0 + i as f64,
                frees_per_sec: 900.0,
                cas_retries_per_op: 0.25,
                magazine_hit_rate: 0.5,
                live_allocs: 10,
                live_bytes: 640,
                frag_percent: 12.5,
                malloc_ops: 100,
                malloc_p50_ns: 128,
                malloc_p95_ns: 512,
                malloc_p99_ns: 1024,
                oom_fallback_rate: 0.0,
                dropped_events: 0,
                launches: 1,
                boundary: i == 4,
            });
        }
        let spec: SloSpec = "malloc_p99_ns<1000@20ms".parse().unwrap();
        let mut slo = SloTracker::new(vec![spec]);
        for s in &samples {
            slo.observe(s);
        }
        TimeSeries {
            samples,
            evicted: 2,
            capacity: 8,
            interval_ms: 10.0,
            totals: CounterSnapshot::default(),
            dropped_events: 3,
            launches: 5,
            slo: slo.reports(),
        }
    }

    #[test]
    fn openmetrics_export_validates() {
        let om = series_fixture().render_openmetrics("mixed");
        let n = validate_openmetrics(&om).expect("exporter output must validate");
        assert!(n >= 20, "expected a full metric set, got {n} samples:\n{om}");
        assert!(om.contains("gms_malloc_calls_total{run=\"mixed\"}"));
        assert!(om.contains("quantile=\"0.99\""));
        assert!(om.ends_with("# EOF\n"));
    }

    #[test]
    fn openmetrics_empty_series_validates() {
        let ts = TimeSeries {
            samples: Vec::new(),
            evicted: 0,
            capacity: 4,
            interval_ms: 10.0,
            totals: CounterSnapshot::default(),
            dropped_events: 0,
            launches: 0,
            slo: Vec::new(),
        };
        validate_openmetrics(&ts.render_openmetrics("empty")).unwrap();
    }

    #[test]
    fn openmetrics_validator_rejects_structural_damage() {
        let good = series_fixture().render_openmetrics("m");
        // No EOF.
        let cut = good.trim_end_matches("# EOF\n");
        assert!(validate_openmetrics(cut).is_err(), "missing EOF must fail");
        // Counter without _total.
        let bad = "# TYPE x counter\nx 5\n# EOF\n";
        assert!(validate_openmetrics(bad).unwrap_err().contains("_total"));
        // Sample without TYPE.
        let bad = "y{a=\"b\"} 5\n# EOF\n";
        assert!(validate_openmetrics(bad).unwrap_err().contains("TYPE"));
        // Non-finite value.
        let bad = "# TYPE z gauge\nz NaN\n# EOF\n";
        assert!(validate_openmetrics(bad).is_err());
        // Unquoted label value.
        let bad = "# TYPE z gauge\nz{l=v} 5\n# EOF\n";
        assert!(validate_openmetrics(bad).is_err());
    }

    #[test]
    fn json_dump_is_schema_versioned_and_balanced() {
        let prov =
            vec![("git".to_string(), "abc123".to_string()), ("seed".to_string(), "0x5eed".into())];
        let json = series_fixture().to_json("mixed", &prov);
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains("\"kind\": \"gms-telemetry\""));
        assert!(json.contains("\"git\": \"abc123\""));
        assert!(json.contains("\"label\": \"mixed\""));
        // Structural sanity the bench-crate parser re-checks end to end:
        // balanced braces/brackets outside strings and no raw NaN tokens.
        let (mut depth, mut brackets) = (0i64, 0i64);
        for c in json.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                '[' => brackets += 1,
                ']' => brackets -= 1,
                _ => {}
            }
        }
        assert_eq!(depth, 0);
        assert_eq!(brackets, 0);
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn slo_table_lists_spans() {
        let ts = series_fixture();
        let table = ts.slo_table();
        assert!(table.contains("malloc_p99_ns<1000@20ms"), "{table}");
        assert!(table.lines().count() >= 2);
    }

    /// A minimal enabled manager the sampler can watch end to end.
    struct Bump {
        heap: Arc<DeviceHeap>,
        next: Mutex<u64>,
        m: Metrics,
    }

    impl Bump {
        fn new(m: Metrics) -> Self {
            Bump { heap: Arc::new(DeviceHeap::new(1 << 20)), next: Mutex::new(0), m }
        }
    }

    impl DeviceAllocator for Bump {
        fn info(&self) -> crate::info::ManagerInfo {
            crate::info::ManagerInfo::builder("TelemetryBump").supports_free(true).build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, crate::AllocError> {
            self.m.tick(ctx.sm, Counter::MallocCalls);
            let mut next = self.next.lock().unwrap();
            let off = *next;
            *next += size;
            Ok(DevicePtr::new(off))
        }
        fn free(&self, ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), crate::AllocError> {
            self.m.tick(ctx.sm, Counter::FreeCalls);
            Ok(())
        }
        fn register_footprint(&self) -> crate::RegisterFootprint {
            crate::RegisterFootprint { malloc: 1, free: 1 }
        }
        fn metrics(&self) -> Metrics {
            self.m.clone()
        }
    }

    #[test]
    fn sampler_windows_carry_counter_deltas() {
        let sink = TelemetrySink::new();
        let m = Metrics::enabled(4);
        sink.attach(&m);
        let tele =
            Telemetry::start(TelemetryConfig::new().interval(Duration::from_millis(2)), sink);
        let bump = Bump::new(m);
        let ctx = ThreadCtx::host();
        for _ in 0..100 {
            let p = bump.malloc(&ctx, 64).unwrap();
            bump.free(&ctx, p).unwrap();
        }
        tele.sample_now();
        let ts = tele.stop();
        assert!(!ts.samples.is_empty());
        assert_eq!(ts.totals.malloc_calls(), 100);
        assert_eq!(ts.totals.free_calls(), 100);
        let windowed: f64 = ts.samples.iter().map(|s| s.allocs_per_sec * s.window_ms / 1e3).sum();
        assert!(
            (windowed - 100.0).abs() < 1.0,
            "window deltas must sum to the cumulative count, got {windowed}"
        );
    }

    #[test]
    fn sampler_folds_trace_latencies_and_live_bytes() {
        let rec = Arc::new(TraceRecorder::new(2, 64));
        let m = Metrics::enabled(2).with_tracer(Arc::clone(&rec));
        let sink = TelemetrySink::new();
        sink.attach(&m);
        let tele = Telemetry::start(TelemetryConfig::new().interval(Duration::from_secs(60)), sink);
        // Two allocations, one freed: 128 live bytes at offsets 0 and 4096
        // (range 4224 vs packed 256 → heavy fragmentation).
        rec.emit(0, EventKind::MallocEnd, [0, 128, 500, 0]);
        rec.emit(0, EventKind::MallocEnd, [4096, 128, 1500, 2]);
        rec.emit(1, EventKind::MallocEnd, [8192, 64, 900, 0]);
        rec.emit(1, EventKind::FreeEnd, [8192, 100, 0, 1]);
        rec.emit(0, EventKind::LaunchEnd, [1, 12345, 0, 0]);
        tele.sample_now();
        let ts = tele.stop();
        let s = ts.samples.iter().find(|s| s.malloc_ops > 0).expect("a window saw the events");
        assert_eq!(s.malloc_ops, 3);
        assert!(s.malloc_p50_ns >= 500, "{s:?}");
        assert!(s.malloc_p99_ns >= 1500, "p99 covers the slowest op: {s:?}");
        assert_eq!(s.live_bytes, 256);
        assert!(s.frag_percent > 100.0, "sparse live set must report fragmentation: {s:?}");
        assert_eq!(s.launches, 1);
        assert_eq!(ts.launches, 1);
    }

    #[test]
    fn sampler_never_double_counts_ring_events() {
        let rec = Arc::new(TraceRecorder::new(1, 64));
        let m = Metrics::enabled(1).with_tracer(Arc::clone(&rec));
        let sink = TelemetrySink::new();
        sink.attach(&m);
        let tele = Telemetry::start(TelemetryConfig::new().interval(Duration::from_secs(60)), sink);
        rec.emit(0, EventKind::MallocEnd, [0, 64, 100, 0]);
        tele.sample_now();
        tele.sample_now(); // snapshot is non-destructive; watermark must gate
        rec.emit(0, EventKind::MallocEnd, [64, 64, 100, 0]);
        tele.sample_now();
        let ts = tele.stop();
        let total: u64 = ts.samples.iter().map(|s| s.malloc_ops).sum();
        assert_eq!(total, 2, "each MallocEnd folds into exactly one window");
    }

    #[test]
    fn sample_ring_is_bounded_and_counts_evictions() {
        let sink = TelemetrySink::new();
        let tele = Telemetry::start(
            TelemetryConfig::new().interval(Duration::from_secs(60)).capacity(2),
            sink,
        );
        for _ in 0..5 {
            tele.sample_now();
        }
        let ts = tele.stop();
        assert!(ts.samples.len() <= 2, "capacity bound holds: {}", ts.samples.len());
        assert!(ts.evicted >= 3, "evictions counted: {}", ts.evicted);
        let seqs: Vec<u64> = ts.samples.iter().map(|s| s.seq).collect();
        let newest = *seqs.last().unwrap();
        assert!(seqs.iter().all(|&s| s + 2 > newest), "ring keeps the newest rows: {seqs:?}");
    }

    #[test]
    fn mark_boundary_flags_a_window() {
        let sink = TelemetrySink::new();
        let tele = Telemetry::start(TelemetryConfig::new().interval(Duration::from_secs(60)), sink);
        tele.mark_boundary();
        tele.sample_now(); // serializes behind the boundary cut
        let ts = tele.stop();
        assert!(ts.samples.iter().any(|s| s.boundary), "boundary cut must be flagged");
    }

    #[test]
    fn global_sink_install_round_trips() {
        // No manager is built here — installing must not leak into other
        // tests' builders, so clear before asserting anything else runs.
        let sink = TelemetrySink::new();
        let prev = install_global_sink(&sink);
        assert!(global_sink().is_some());
        clear_global_sink();
        assert!(global_sink().is_none());
        if let Some(prev) = prev {
            install_global_sink(&prev);
        }
    }

    #[test]
    fn http_exporter_serves_valid_openmetrics() {
        let sink = TelemetrySink::new();
        let m = Metrics::enabled(1);
        sink.attach(&m);
        let tele = Telemetry::start(TelemetryConfig::new().interval(Duration::from_secs(60)), sink);
        m.tick(0, Counter::MallocCalls);
        tele.sample_now();
        let server = tele.serve("127.0.0.1:0", "scrape-test").expect("bind");
        let mut conn = TcpStream::connect(server.addr()).expect("connect");
        conn.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n").unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.0 200 OK"), "{resp}");
        assert!(resp.contains("application/openmetrics-text"));
        let body = resp.split("\r\n\r\n").nth(1).expect("body");
        let n = validate_openmetrics(body).expect("scraped body validates");
        assert!(n > 0);
        assert!(body.contains("gms_malloc_calls_total{run=\"scrape-test\"} 1"));
        server.stop();
        tele.stop();
    }

    #[test]
    fn dead_sources_are_retired_but_their_totals_survive() {
        let sink = TelemetrySink::new();
        let m = Metrics::enabled(2);
        sink.attach(&m);
        let tele = Telemetry::start(TelemetryConfig::new().interval(Duration::from_secs(60)), sink);
        m.add(0, Counter::MallocCalls, 7);
        tele.sample_now();
        assert_eq!(tele.sink().len(), 1, "live source stays registered");

        m.add(1, Counter::MallocCalls, 3);
        drop(m); // last manager-side handle: the block is frozen
        tele.sample_now();
        assert_eq!(tele.sink().len(), 0, "frozen source pruned after its final fold");

        let series = tele.stop();
        assert_eq!(series.totals.malloc_calls(), 10, "retired counts survive in totals");
        let windowed: u64 =
            series.samples.iter().map(|s| s.allocs_per_sec * s.window_ms / 1e3).sum::<f64>() as u64;
        assert!(windowed >= 9, "windows saw (almost exactly) all ten calls: {windowed}");
    }
}
