//! Fragmentation measurement (paper §4.3, Figure 11a).
//!
//! "To assess fragmentation from outside the allocators, we track the maximum
//! address range for a number of allocations as well as the maximum address
//! range after 100 iterations of allocations and deallocations."
//!
//! [`AddressRange`] accumulates pointers and reports `max(ptr + size) -
//! min(ptr)`; [`FragmentationStats`] compares that range to the theoretical
//! minimum (the packed footprint of the same demand) to yield the
//! "% over baseline" the paper plots.

use crate::ptr::DevicePtr;

/// Accumulates the address range spanned by a set of allocations.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddressRange {
    lo: Option<u64>,
    hi: Option<u64>,
    total_bytes: u64,
    count: u64,
}

impl AddressRange {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation of `size` bytes at `ptr`. Null pointers
    /// (failed allocations) are ignored, matching the survey's scripts.
    pub fn record(&mut self, ptr: DevicePtr, size: u64) {
        if ptr.is_null() {
            return;
        }
        let off = ptr.offset();
        // checked: a wrapped `off + size` in release would silently shrink
        // the reported range instead of flagging the bogus allocation.
        let end = off
            .checked_add(size)
            .unwrap_or_else(|| panic!("AddressRange::record overflow: offset {off} + size {size}"));
        self.lo = Some(self.lo.map_or(off, |l| l.min(off)));
        self.hi = Some(self.hi.map_or(end, |h| h.max(end)));
        self.total_bytes += size;
        self.count += 1;
    }

    /// Merges another tracker (used when per-worker trackers are reduced).
    pub fn merge(&mut self, other: &AddressRange) {
        if let Some(lo) = other.lo {
            self.lo = Some(self.lo.map_or(lo, |l| l.min(lo)));
        }
        if let Some(hi) = other.hi {
            self.hi = Some(self.hi.map_or(hi, |h| h.max(hi)));
        }
        self.total_bytes += other.total_bytes;
        self.count += other.count;
    }

    /// `max(ptr+size) - min(ptr)`, or 0 if nothing was recorded.
    pub fn range(&self) -> u64 {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => h - l,
            _ => 0,
        }
    }

    /// Sum of requested bytes — the theoretical perfectly-packed range.
    pub fn demand(&self) -> u64 {
        self.total_bytes
    }

    /// Number of successful allocations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Final fragmentation report for one (manager, size) cell of Fig. 11a.
#[derive(Clone, Copy, Debug)]
pub struct FragmentationStats {
    /// Observed maximum address range in bytes.
    pub address_range: u64,
    /// Theoretical packed baseline in bytes (sum of requests).
    pub baseline: u64,
    /// Successful allocations measured.
    pub allocations: u64,
}

impl FragmentationStats {
    /// Builds a report from a finished tracker.
    pub fn from_range(r: &AddressRange) -> Self {
        FragmentationStats {
            address_range: r.range(),
            baseline: r.demand(),
            allocations: r.count(),
        }
    }

    /// Address range as a multiple of the packed baseline (1.0 = perfect).
    pub fn expansion_factor(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            self.address_range as f64 / self.baseline as f64
        }
    }

    /// Range excess over the packed baseline in percent — the "% over
    /// baseline" axis of Fig. 11a (0.0 = perfectly packed; 100.0 = the
    /// range is twice the demand). 0.0 when nothing was recorded.
    pub fn percent_over_baseline(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            (self.expansion_factor() - 1.0) * 100.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range_is_zero() {
        let r = AddressRange::new();
        assert_eq!(r.range(), 0);
        assert_eq!(r.demand(), 0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn records_span() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::new(100), 16);
        r.record(DevicePtr::new(200), 32);
        assert_eq!(r.range(), 232 - 100);
        assert_eq!(r.demand(), 48);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn null_pointers_ignored() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::NULL, 64);
        assert_eq!(r.count(), 0);
        assert_eq!(r.range(), 0);
    }

    #[test]
    fn merge_combines_extremes() {
        let mut a = AddressRange::new();
        a.record(DevicePtr::new(1000), 8);
        let mut b = AddressRange::new();
        b.record(DevicePtr::new(0), 8);
        b.record(DevicePtr::new(5000), 24);
        a.merge(&b);
        assert_eq!(a.range(), 5024);
        assert_eq!(a.count(), 3);
        assert_eq!(a.demand(), 40);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = AddressRange::new();
        a.record(DevicePtr::new(16), 16);
        let before = a.range();
        a.merge(&AddressRange::new());
        assert_eq!(a.range(), before);
    }

    #[test]
    fn expansion_factor() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::new(0), 100);
        r.record(DevicePtr::new(900), 100);
        let s = FragmentationStats::from_range(&r);
        assert_eq!(s.address_range, 1000);
        assert_eq!(s.baseline, 200);
        assert!((s.expansion_factor() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_factor_of_empty_is_zero() {
        let s = FragmentationStats::from_range(&AddressRange::new());
        assert_eq!(s.expansion_factor(), 0.0);
    }

    #[test]
    fn null_only_stream_yields_empty_stats() {
        let mut r = AddressRange::new();
        for _ in 0..64 {
            r.record(DevicePtr::NULL, 128);
        }
        assert_eq!((r.range(), r.demand(), r.count()), (0, 0, 0));
        let s = FragmentationStats::from_range(&r);
        assert_eq!(s.expansion_factor(), 0.0);
        assert_eq!(s.percent_over_baseline(), 0.0);
    }

    #[test]
    fn nulls_interleaved_with_real_allocations_do_not_disturb_span() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::new(64), 32);
        r.record(DevicePtr::NULL, 4096);
        r.record(DevicePtr::new(256), 32);
        assert_eq!(r.range(), 288 - 64);
        assert_eq!(r.demand(), 64);
        assert_eq!(r.count(), 2);
    }

    #[test]
    #[should_panic(
        expected = "AddressRange::record overflow: offset 18446744073709551614 + size 4"
    )]
    fn offset_plus_size_overflow_panics_with_context() {
        let mut r = AddressRange::new();
        // u64::MAX itself is the NULL sentinel, so the largest recordable
        // offset is MAX-1; any non-trivial size overflows from there.
        r.record(DevicePtr::new(u64::MAX - 1), 4);
    }

    #[test]
    fn percent_over_baseline_on_packed_layout() {
        // Hand-computed: four 64 B allocations laid out back-to-back at
        // offset 0 — range == demand == 256 B, i.e. 0% over baseline.
        let mut packed = AddressRange::new();
        for i in 0..4u64 {
            packed.record(DevicePtr::new(i * 64), 64);
        }
        let s = FragmentationStats::from_range(&packed);
        assert_eq!(s.address_range, 256);
        assert_eq!(s.baseline, 256);
        assert!((s.expansion_factor() - 1.0).abs() < 1e-12);
        assert_eq!(s.percent_over_baseline(), 0.0);

        // Same demand with a 256 B hole between the two halves:
        // range 512, demand 256 → 100% over baseline.
        let mut holey = AddressRange::new();
        holey.record(DevicePtr::new(0), 64);
        holey.record(DevicePtr::new(64), 64);
        holey.record(DevicePtr::new(384), 64);
        holey.record(DevicePtr::new(448), 64);
        let s = FragmentationStats::from_range(&holey);
        assert_eq!(s.address_range, 512);
        assert_eq!(s.baseline, 256);
        assert!((s.percent_over_baseline() - 100.0).abs() < 1e-9);
    }
}
