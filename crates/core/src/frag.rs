//! Fragmentation measurement (paper §4.3, Figure 11a).
//!
//! "To assess fragmentation from outside the allocators, we track the maximum
//! address range for a number of allocations as well as the maximum address
//! range after 100 iterations of allocations and deallocations."
//!
//! [`AddressRange`] accumulates pointers and reports `max(ptr + size) -
//! min(ptr)`; [`FragmentationStats`] compares that range to the theoretical
//! minimum (the packed footprint of the same demand) to yield the
//! "% over baseline" the paper plots.

use crate::ptr::DevicePtr;

/// Accumulates the address range spanned by a set of allocations.
#[derive(Clone, Copy, Debug, Default)]
pub struct AddressRange {
    lo: Option<u64>,
    hi: Option<u64>,
    total_bytes: u64,
    count: u64,
}

impl AddressRange {
    /// Empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one allocation of `size` bytes at `ptr`. Null pointers
    /// (failed allocations) are ignored, matching the survey's scripts.
    pub fn record(&mut self, ptr: DevicePtr, size: u64) {
        if ptr.is_null() {
            return;
        }
        let off = ptr.offset();
        // checked: a wrapped `off + size` in release would silently shrink
        // the reported range instead of flagging the bogus allocation.
        let end = off
            .checked_add(size)
            .unwrap_or_else(|| panic!("AddressRange::record overflow: offset {off} + size {size}"));
        self.lo = Some(self.lo.map_or(off, |l| l.min(off)));
        self.hi = Some(self.hi.map_or(end, |h| h.max(end)));
        self.total_bytes += size;
        self.count += 1;
    }

    /// Merges another tracker (used when per-worker trackers are reduced).
    pub fn merge(&mut self, other: &AddressRange) {
        if let Some(lo) = other.lo {
            self.lo = Some(self.lo.map_or(lo, |l| l.min(lo)));
        }
        if let Some(hi) = other.hi {
            self.hi = Some(self.hi.map_or(hi, |h| h.max(hi)));
        }
        self.total_bytes += other.total_bytes;
        self.count += other.count;
    }

    /// `max(ptr+size) - min(ptr)`, or 0 if nothing was recorded.
    pub fn range(&self) -> u64 {
        match (self.lo, self.hi) {
            (Some(l), Some(h)) => h - l,
            _ => 0,
        }
    }

    /// Sum of requested bytes — the theoretical perfectly-packed range.
    pub fn demand(&self) -> u64 {
        self.total_bytes
    }

    /// Number of successful allocations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Final fragmentation report for one (manager, size) cell of Fig. 11a.
#[derive(Clone, Copy, Debug)]
pub struct FragmentationStats {
    /// Observed maximum address range in bytes.
    pub address_range: u64,
    /// Theoretical packed baseline in bytes (sum of requests).
    pub baseline: u64,
    /// Successful allocations measured.
    pub allocations: u64,
}

impl FragmentationStats {
    /// Builds a report from a finished tracker.
    pub fn from_range(r: &AddressRange) -> Self {
        FragmentationStats {
            address_range: r.range(),
            baseline: r.demand(),
            allocations: r.count(),
        }
    }

    /// Address range as a multiple of the packed baseline (1.0 = perfect).
    pub fn expansion_factor(&self) -> f64 {
        if self.baseline == 0 {
            0.0
        } else {
            self.address_range as f64 / self.baseline as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range_is_zero() {
        let r = AddressRange::new();
        assert_eq!(r.range(), 0);
        assert_eq!(r.demand(), 0);
        assert_eq!(r.count(), 0);
    }

    #[test]
    fn records_span() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::new(100), 16);
        r.record(DevicePtr::new(200), 32);
        assert_eq!(r.range(), 232 - 100);
        assert_eq!(r.demand(), 48);
        assert_eq!(r.count(), 2);
    }

    #[test]
    fn null_pointers_ignored() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::NULL, 64);
        assert_eq!(r.count(), 0);
        assert_eq!(r.range(), 0);
    }

    #[test]
    fn merge_combines_extremes() {
        let mut a = AddressRange::new();
        a.record(DevicePtr::new(1000), 8);
        let mut b = AddressRange::new();
        b.record(DevicePtr::new(0), 8);
        b.record(DevicePtr::new(5000), 24);
        a.merge(&b);
        assert_eq!(a.range(), 5024);
        assert_eq!(a.count(), 3);
        assert_eq!(a.demand(), 40);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = AddressRange::new();
        a.record(DevicePtr::new(16), 16);
        let before = a.range();
        a.merge(&AddressRange::new());
        assert_eq!(a.range(), before);
    }

    #[test]
    fn expansion_factor() {
        let mut r = AddressRange::new();
        r.record(DevicePtr::new(0), 100);
        r.record(DevicePtr::new(900), 100);
        let s = FragmentationStats::from_range(&r);
        assert_eq!(s.address_range, 1000);
        assert_eq!(s.baseline, 200);
        assert!((s.expansion_factor() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn expansion_factor_of_empty_is_zero() {
        let s = FragmentationStats::from_range(&AddressRange::new());
        assert_eq!(s.expansion_factor(), 0.0);
    }
}
