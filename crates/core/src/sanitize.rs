//! Shadow-heap allocation sanitizer (the survey's *stability* checker).
//!
//! The paper classifies managers by stability as much as by speed (§5:
//! Reg-Eff and XMalloc are "not entirely stable"), but return codes alone
//! cannot confirm that a manager's returned regions are actually disjoint,
//! in-bounds and never double-freed. [`Sanitized`] wraps any
//! [`DeviceAllocator`] and checks exactly that, from *outside* the
//! allocator, against a shadow copy of the allocation state:
//!
//! * a **sharded shadow interval map** — per-start-offset metadata of every
//!   live allocation, sharded by a hash of the start offset so concurrent
//!   simulated threads do not serialise on one lock;
//! * a **byte-occupancy bitmap** — one bit per heap byte, set with
//!   `fetch_or` when a region goes live. A malloc that returns bytes whose
//!   bits are already set has produced an **overlap** with another live
//!   allocation, detected without scanning the interval map;
//! * optional **canary redzones**: every request is inflated by
//!   [`SanitizerConfig::redzone`] bytes, the tail is filled with a canary
//!   pattern through [`DeviceHeap`], and verified on free — catching
//!   out-of-bounds writes by workload kernels;
//! * optional **poison-on-free**: the payload of a freed region is filled
//!   with a poison byte *before* the inner allocator can recycle it, so
//!   use-after-free reads surface as torn data in workload assertions.
//!
//! Violations are **collected, not panicked**: a simulated kernel thread
//! that panicked mid-launch would poison the executor's worker pool and
//! abort the whole benchmark sweep, whereas the survey's interest is
//! precisely in *how* an unstable manager misbehaves. Each violation is a
//! structured [`Violation`] (kind, thread/warp/SM coordinates, offsets)
//! recorded into a bounded sink and drained host-side via
//! [`Sanitized::take_report`].

use crate::sync::{AtomicU64, Ordering};
use std::collections::HashMap;
use std::sync::Mutex;

use crate::ctx::{ThreadCtx, WarpCtx};
use crate::error::AllocError;
use crate::heap::DeviceHeap;
use crate::info::ManagerInfo;
use crate::metrics::Metrics;
use crate::ptr::DevicePtr;
use crate::regs::RegisterFootprint;
use crate::traits::DeviceAllocator;
use crate::util::mix64;

/// The violation taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ViolationKind {
    /// A malloc returned bytes that belong to another live allocation.
    Overlap = 0,
    /// A malloc returned a region not fully inside the managed heap.
    OutOfHeap = 1,
    /// A malloc returned a pointer violating the manager's declared
    /// alignment ([`ManagerInfo::alignment`]).
    Misaligned = 2,
    /// A free of a pointer that was already freed.
    DoubleFree = 3,
    /// A free of a pointer this manager never returned (or that the
    /// sanitizer never saw go live).
    UnknownFree = 4,
    /// The canary redzone behind an allocation was overwritten between
    /// malloc and free — an out-of-bounds write by the workload or by the
    /// manager's own metadata handling.
    RedzoneCorrupt = 5,
}

/// Number of [`ViolationKind`] values.
pub const VIOLATION_KINDS: usize = 6;

/// All kinds, in display order.
pub const ALL_VIOLATION_KINDS: [ViolationKind; VIOLATION_KINDS] = [
    ViolationKind::Overlap,
    ViolationKind::OutOfHeap,
    ViolationKind::Misaligned,
    ViolationKind::DoubleFree,
    ViolationKind::UnknownFree,
    ViolationKind::RedzoneCorrupt,
];

impl ViolationKind {
    /// Stable snake_case name, used for CSV headers and reports.
    pub const fn name(self) -> &'static str {
        match self {
            ViolationKind::Overlap => "overlap",
            ViolationKind::OutOfHeap => "out_of_heap",
            ViolationKind::Misaligned => "misaligned",
            ViolationKind::DoubleFree => "double_free",
            ViolationKind::UnknownFree => "unknown_free",
            ViolationKind::RedzoneCorrupt => "redzone_corrupt",
        }
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded violation, with the SIMT coordinates of the offending call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Global thread id of the call (`u32::MAX` for warp-collective frees).
    pub thread: u32,
    /// Warp id of the call.
    pub warp: u32,
    /// SM the call executed on.
    pub sm: u32,
    /// Raw pointer value involved (start offset, or `u64::MAX` for null).
    pub offset: u64,
    /// Requested size of the allocation involved (0 when unknown).
    pub size: u64,
    /// Conflicting byte offset, when one exists: the first overlapped byte
    /// for [`ViolationKind::Overlap`], the first corrupt canary byte for
    /// [`ViolationKind::RedzoneCorrupt`].
    pub conflict: Option<u64>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at offset {:#x} (size {}, thread {}, warp {}, sm {})",
            self.kind, self.offset, self.size, self.thread, self.warp, self.sm
        )?;
        if let Some(c) = self.conflict {
            write!(f, " conflicting byte {c:#x}")?;
        }
        Ok(())
    }
}

/// Sanitizer knobs.
#[derive(Clone, Copy, Debug)]
pub struct SanitizerConfig {
    /// Canary bytes appended to every request (0 disables redzones).
    pub redzone: u64,
    /// Whether freed payloads are filled with [`SanitizerConfig::poison_byte`].
    pub poison_on_free: bool,
    /// Fill byte for poisoned (freed) payloads.
    pub poison_byte: u8,
    /// Fill byte of the canary redzone.
    pub canary_byte: u8,
    /// Maximum number of [`Violation`] records kept; further violations are
    /// still counted (see [`SanitizerReport::dropped`]) but not stored.
    pub max_recorded: usize,
}

impl Default for SanitizerConfig {
    fn default() -> Self {
        SanitizerConfig {
            redzone: 32,
            poison_on_free: true,
            poison_byte: 0xde,
            canary_byte: 0xc5,
            max_recorded: 1024,
        }
    }
}

impl SanitizerConfig {
    /// A config that changes nothing about the requests it forwards: no
    /// redzone inflation, no poisoning. Detection of overlap / bounds /
    /// alignment / free-path violations stays on.
    pub fn passive() -> Self {
        SanitizerConfig { redzone: 0, poison_on_free: false, ..SanitizerConfig::default() }
    }
}

/// Shadow metadata of one live allocation.
#[derive(Clone, Copy, Debug)]
struct LiveAlloc {
    /// Size the caller requested (without redzone).
    requested: u64,
    /// Size actually requested from the inner manager (with redzone).
    inflated: u64,
    /// Whether the region was in bounds and is tracked in the occupancy
    /// bitmap (out-of-heap returns are recorded but not bit-tracked).
    tracked: bool,
}

/// One shard of the shadow interval map.
#[derive(Default)]
struct Shard {
    /// Live allocations that start in this shard, keyed by start offset.
    live: HashMap<u64, LiveAlloc>,
    /// Start offsets freed at least once and not since reallocated — the
    /// evidence that separates a double-free from a free-of-unknown.
    freed: HashMap<u64, ()>,
}

/// Number of interval-map shards (power of two).
const SHARDS: usize = 64;

/// Byte-occupancy bitmap over the heap: one bit per byte, maintained with
/// relaxed RMW atomics so concurrent malloc/free paths never lock.
struct Occupancy {
    words: Box<[AtomicU64]>,
}

impl Occupancy {
    fn new(heap_len: u64) -> Self {
        let n_words = heap_len.div_ceil(64) as usize;
        Occupancy { words: (0..n_words).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Masks covering `[start, start+len)`, word by word.
    fn for_each_word(start: u64, len: u64, mut f: impl FnMut(usize, u64)) {
        let end = start + len;
        let mut byte = start;
        while byte < end {
            let word = (byte / 64) as usize;
            let lo = byte % 64;
            let hi = (end - byte + lo).min(64);
            let mask = if hi - lo == 64 { u64::MAX } else { ((1u64 << (hi - lo)) - 1) << lo };
            f(word, mask);
            byte += hi - lo;
        }
    }

    /// Marks a region live; returns the offset of the first byte that was
    /// already live (an overlap), if any.
    fn mark(&self, start: u64, len: u64) -> Option<u64> {
        let mut conflict = None;
        Self::for_each_word(start, len, |word, mask| {
            let prev = self.words[word].fetch_or(mask, Ordering::Relaxed);
            if conflict.is_none() && prev & mask != 0 {
                let bit = (prev & mask).trailing_zeros() as u64;
                conflict = Some(word as u64 * 64 + bit);
            }
        });
        conflict
    }

    /// Clears a region.
    fn unmark(&self, start: u64, len: u64) {
        Self::for_each_word(start, len, |word, mask| {
            self.words[word].fetch_and(!mask, Ordering::Relaxed);
        });
    }
}

/// The bounded violation sink plus per-kind totals.
struct Sink {
    counts: [AtomicU64; VIOLATION_KINDS],
    recorded: Mutex<Vec<Violation>>,
    dropped: AtomicU64,
}

/// Aggregated sanitizer findings, drained host-side.
#[derive(Clone, Debug, Default)]
pub struct SanitizerReport {
    /// Per-kind violation totals, indexed by `ViolationKind as usize`.
    pub counts: [u64; VIOLATION_KINDS],
    /// The recorded violation details (bounded by
    /// [`SanitizerConfig::max_recorded`]).
    pub recorded: Vec<Violation>,
    /// Violations counted but not recorded (sink was full).
    pub dropped: u64,
    /// Allocations still live in the shadow map when the report was taken.
    pub live: u64,
}

impl SanitizerReport {
    /// Total violations of one kind.
    pub fn by_kind(&self, kind: ViolationKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Total violations across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the run was violation-free.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "clean ({} live)", self.live);
        }
        let mut first = true;
        for kind in ALL_VIOLATION_KINDS {
            let n = self.by_kind(kind);
            if n > 0 {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{kind}={n}")?;
                first = false;
            }
        }
        write!(f, " ({} live)", self.live)
    }
}

/// A [`DeviceAllocator`] wrapper that validates every malloc/free against a
/// shadow heap. See the [module docs](self) for the design.
///
/// `Sanitized` forwards every call to the wrapped manager (preserving its
/// warp-aggregation overrides on the malloc path) and never changes a
/// *successful* result: workloads observe the same pointers they would see
/// without the wrapper. The two exceptions, both deliberate: requests are
/// inflated by the configured redzone, and a free the shadow map proves
/// invalid (double-free / unknown pointer) is **not** forwarded — feeding a
/// provably bad pointer into an allocator under test could corrupt its
/// in-heap metadata and turn one detectable violation into a cascade.
/// Sharded warp-id → live-start-offsets map (see [`Sanitized::warp_live`]).
type WarpLiveShards = Box<[Mutex<HashMap<u32, Vec<u64>>>]>;

pub struct Sanitized<A: DeviceAllocator> {
    inner: A,
    info: ManagerInfo,
    cfg: SanitizerConfig,
    shards: Box<[Mutex<Shard>]>,
    occupancy: Occupancy,
    /// Per-warp live starts, maintained only for warp-level-only managers
    /// (FDGMalloc) whose `free_warp_all` releases a whole warp's history.
    warp_live: Option<WarpLiveShards>,
    sink: Sink,
}

impl<A: DeviceAllocator> Sanitized<A> {
    /// Wraps `inner` with the default config (32 B redzones, poison-on-free).
    pub fn new(inner: A) -> Self {
        Self::with_config(inner, SanitizerConfig::default())
    }

    /// Wraps `inner` with an explicit config.
    pub fn with_config(inner: A, cfg: SanitizerConfig) -> Self {
        let info = inner.info();
        let occupancy = Occupancy::new(inner.heap().len());
        let warp_live =
            info.warp_level_only.then(|| (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect());
        Sanitized {
            inner,
            info,
            cfg,
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            occupancy,
            warp_live,
            sink: Sink {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                recorded: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
            },
        }
    }

    /// The wrapped manager.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The active configuration.
    pub fn config(&self) -> &SanitizerConfig {
        &self.cfg
    }

    /// Allocations currently live in the shadow map.
    pub fn live_allocations(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().unwrap().live.len() as u64).sum()
    }

    /// Total violations observed so far (cheap: atomics only).
    pub fn violation_count(&self) -> u64 {
        self.sink.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Snapshot of the findings without draining the recorded details.
    pub fn report(&self) -> SanitizerReport {
        SanitizerReport {
            counts: std::array::from_fn(|i| self.sink.counts[i].load(Ordering::Relaxed)),
            recorded: self.sink.recorded.lock().unwrap().clone(),
            dropped: self.sink.dropped.load(Ordering::Relaxed),
            live: self.live_allocations(),
        }
    }

    /// Drains the recorded violation details and returns the findings; the
    /// per-kind totals are left intact (they are cumulative).
    pub fn take_report(&self) -> SanitizerReport {
        SanitizerReport {
            counts: std::array::from_fn(|i| self.sink.counts[i].load(Ordering::Relaxed)),
            recorded: std::mem::take(&mut *self.sink.recorded.lock().unwrap()),
            dropped: self.sink.dropped.load(Ordering::Relaxed),
            live: self.live_allocations(),
        }
    }

    #[inline]
    fn shard_of(&self, start: u64) -> &Mutex<Shard> {
        &self.shards[(mix64(start) as usize) & (SHARDS - 1)]
    }

    fn record(&self, v: Violation) {
        self.sink.counts[v.kind as usize].fetch_add(1, Ordering::Relaxed);
        // Violations are rare by construction; fetching the metrics handle
        // per event is fine on this cold path.
        if let Some(rec) = self.inner.metrics().tracer() {
            rec.emit(
                v.sm,
                crate::trace::EventKind::SanitizerViolation,
                [v.kind as u64, v.offset, v.size, 0],
            );
        }
        let mut rec = self.sink.recorded.lock().unwrap();
        if rec.len() < self.cfg.max_recorded {
            rec.push(v);
        } else {
            self.sink.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Redzone bytes actually appended to a request of `size` (0 when the
    /// inflated size would overflow).
    #[inline]
    fn redzone_for(&self, size: u64) -> u64 {
        if size.checked_add(self.cfg.redzone).is_some() {
            self.cfg.redzone
        } else {
            0
        }
    }

    /// Validates and registers one granted allocation. `requested` is the
    /// caller's size; the inner manager granted `requested + redzone`.
    fn admit(&self, ctx: &ThreadCtx, ptr: DevicePtr, requested: u64, redzone: u64) {
        let start = ptr.raw();
        let inflated = requested + redzone;
        let heap_len = self.inner.heap().len();
        let in_bounds =
            !ptr.is_null() && start.checked_add(inflated).is_some_and(|end| end <= heap_len);
        let base = Violation {
            kind: ViolationKind::OutOfHeap,
            thread: ctx.thread_id,
            warp: ctx.warp,
            sm: ctx.sm,
            offset: start,
            size: requested,
            conflict: None,
        };
        if !in_bounds {
            self.record(base);
        }
        if !ptr.is_null() && !ptr.is_aligned(self.info.alignment) {
            self.record(Violation { kind: ViolationKind::Misaligned, ..base });
        }
        if in_bounds {
            if let Some(byte) = self.occupancy.mark(start, inflated.max(1)) {
                self.record(Violation {
                    kind: ViolationKind::Overlap,
                    conflict: Some(byte),
                    ..base
                });
            }
            if redzone > 0 {
                self.inner.heap().fill(ptr.add(requested), redzone, self.cfg.canary_byte);
            }
        }
        if ptr.is_null() {
            return;
        }
        let mut shard = self.shard_of(start).lock().unwrap();
        shard.freed.remove(&start);
        if shard.live.insert(start, LiveAlloc { requested, inflated, tracked: in_bounds }).is_some()
            && !in_bounds
        {
            // Exact duplicate grant while the first is still live. In-bounds
            // duplicates were already flagged by the occupancy bitmap; this
            // covers untracked out-of-heap twins the bitmap never sees.
            self.record(Violation { kind: ViolationKind::Overlap, conflict: Some(start), ..base });
        }
        drop(shard);
        if let Some(warp_live) = &self.warp_live {
            let mut map = warp_live[ctx.warp as usize & (SHARDS - 1)].lock().unwrap();
            map.entry(ctx.warp).or_default().push(start);
        }
    }

    /// Verifies the canary and poisons a claimed region; called with the
    /// allocation removed from the shadow map (exclusively owned).
    fn retire(&self, ctx: &ThreadCtx, ptr: DevicePtr, live: LiveAlloc) {
        let redzone = live.inflated - live.requested;
        if live.tracked && redzone > 0 {
            let mut buf = [0u8; 64];
            let mut checked = 0u64;
            while checked < redzone {
                let n = (redzone - checked).min(buf.len() as u64);
                self.inner
                    .heap()
                    .read_bytes(ptr.add(live.requested + checked), &mut buf[..n as usize]);
                if let Some(bad) = buf[..n as usize].iter().position(|&b| b != self.cfg.canary_byte)
                {
                    self.record(Violation {
                        kind: ViolationKind::RedzoneCorrupt,
                        thread: ctx.thread_id,
                        warp: ctx.warp,
                        sm: ctx.sm,
                        offset: ptr.raw(),
                        size: live.requested,
                        conflict: Some(ptr.raw() + live.requested + checked + bad as u64),
                    });
                    break;
                }
                checked += n;
            }
        }
        if live.tracked {
            if self.cfg.poison_on_free {
                self.inner.heap().fill(ptr, live.inflated.max(1), self.cfg.poison_byte);
            }
            self.occupancy.unmark(ptr.raw(), live.inflated.max(1));
        }
    }

    /// Undoes [`Sanitized::retire`] bookkeeping when the inner manager
    /// rejects a free the shadow map believed valid: the allocation is
    /// still live, so the shadow state must say so too.
    fn restore(&self, ptr: DevicePtr, live: LiveAlloc) {
        if live.tracked {
            self.occupancy.mark(ptr.raw(), live.inflated.max(1));
            let redzone = live.inflated - live.requested;
            if redzone > 0 {
                self.inner.heap().fill(ptr.add(live.requested), redzone, self.cfg.canary_byte);
            }
        }
        let mut shard = self.shard_of(ptr.raw()).lock().unwrap();
        shard.freed.remove(&ptr.raw());
        shard.live.insert(ptr.raw(), live);
    }

    /// Shadow-side free: claims the allocation, verifies, poisons, forwards
    /// to the inner manager, and restores the shadow state if the inner
    /// manager rejects the free after all.
    fn free_checked(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        let start = ptr.raw();
        let claimed = {
            let mut shard = self.shard_of(start).lock().unwrap();
            match shard.live.remove(&start) {
                Some(live) => {
                    shard.freed.insert(start, ());
                    Some(live)
                }
                None => None,
            }
        };
        let Some(live) = claimed else {
            let kind = if self.shard_of(start).lock().unwrap().freed.contains_key(&start) {
                ViolationKind::DoubleFree
            } else {
                ViolationKind::UnknownFree
            };
            self.record(Violation {
                kind,
                thread: ctx.thread_id,
                warp: ctx.warp,
                sm: ctx.sm,
                offset: start,
                size: 0,
                conflict: None,
            });
            return Err(AllocError::InvalidPointer);
        };
        self.retire(ctx, ptr, live);
        match self.inner.free(ctx, ptr) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.restore(ptr, live);
                Err(e)
            }
        }
    }
}

impl<A: DeviceAllocator> DeviceAllocator for Sanitized<A> {
    fn info(&self) -> ManagerInfo {
        self.info.clone()
    }

    fn heap(&self) -> &DeviceHeap {
        self.inner.heap()
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let redzone = self.redzone_for(size);
        // memlint: allow(unchecked-offset-arithmetic) — redzone_for returns 0 whenever size + redzone would overflow (checked there), so this sum never wraps
        let ptr = self.inner.malloc(ctx, size + redzone)?;
        self.admit(ctx, ptr, size, redzone);
        Ok(ptr)
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        if !self.info.supports_free || ptr.is_null() {
            // Nothing to shadow-check: forward and let the inner manager's
            // contract speak (Atomic's Unsupported, null rejection).
            return self.inner.free(ctx, ptr);
        }
        self.free_checked(ctx, ptr)
    }

    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        debug_assert!(sizes.len() <= 32);
        let mut inflated = [0u64; 32];
        let mut redzones = [0u64; 32];
        for (i, &s) in sizes.iter().enumerate() {
            redzones[i] = self.redzone_for(s);
            inflated[i] = s + redzones[i];
        }
        self.inner.malloc_warp(warp, &inflated[..sizes.len()], out)?;
        for (lane, (&size, &slot)) in sizes.iter().zip(out.iter()).enumerate() {
            if !slot.is_null() {
                self.admit(&warp.lane(lane as u32), slot, size, redzones[lane]);
            }
        }
        Ok(())
    }

    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        // Lane-by-lane through the checked path, continuing past per-lane
        // failures (mirroring the default implementation's semantics).
        let mut first_err = None;
        for (lane, &ptr) in ptrs.iter().enumerate() {
            if ptr.is_null() {
                continue;
            }
            let ctx = warp.lane(lane as u32);
            if let Err(e) = self.free(&ctx, ptr) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn free_warp_all(&self, warp: &WarpCtx) -> Result<(), AllocError> {
        if let Some(warp_live) = &self.warp_live {
            let starts = warp_live[warp.warp as usize & (SHARDS - 1)]
                .lock()
                .unwrap()
                .remove(&warp.warp)
                .unwrap_or_default();
            let ctx = warp.leader();
            for start in starts {
                let claimed = {
                    let mut shard = self.shard_of(start).lock().unwrap();
                    match shard.live.remove(&start) {
                        Some(live) => {
                            shard.freed.insert(start, ());
                            Some(live)
                        }
                        // Already released individually — not a violation:
                        // tidy-up legitimately sweeps what is left.
                        None => None,
                    }
                };
                if let Some(live) = claimed {
                    self.retire(&ctx, DevicePtr::new(start), live);
                }
            }
        }
        self.inner.free_warp_all(warp)
    }

    fn register_footprint(&self) -> RegisterFootprint {
        self.inner.register_footprint()
    }

    fn grow(&self, additional: u64) -> Result<(), AllocError> {
        self.inner.grow(additional)
    }

    fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    fn drain(&self) -> u64 {
        // A nested cache's drain pushes parked blocks through the inner
        // `free`, *below* this wrapper — the shadow map already untracked
        // them when the caller freed, so no sanitizer bookkeeping is due.
        self.inner.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::AtomicU64;
    use crate::util::align_up;
    use std::sync::Arc;

    /// Correct free-list allocator: bump plus LIFO recycling of exact sizes.
    struct GoodAlloc {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
        free_list: Mutex<Vec<(u64, u64)>>,
    }

    impl GoodAlloc {
        fn new(len: u64) -> Self {
            GoodAlloc {
                heap: Arc::new(DeviceHeap::new(len)),
                top: AtomicU64::new(0),
                free_list: Mutex::new(Vec::new()),
            }
        }
    }

    impl DeviceAllocator for GoodAlloc {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("Good").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            let sz = align_up(size.max(1), 16);
            if let Some(pos) = self.free_list.lock().unwrap().iter().position(|&(_, s)| s == sz) {
                let (off, _) = self.free_list.lock().unwrap().swap_remove(pos);
                return Ok(DevicePtr::new(off));
            }
            let off = self.top.fetch_add(sz, Ordering::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
            if ptr.is_null() {
                return Err(AllocError::InvalidPointer);
            }
            // Sizes are recoverable only via the sanitizer's shadow in this
            // toy; record a 16-byte grain (good enough: tests free exact
            // sanitizer-inflated sizes through GoodAlloc's own ledger).
            self.free_list.lock().unwrap().push((ptr.offset(), 0));
            Ok(())
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 2, free: 2 }
        }
    }

    /// Broken allocator: hands the same region out twice every other call.
    struct DoubleGrant {
        heap: Arc<DeviceHeap>,
        calls: AtomicU64,
    }

    impl DoubleGrant {
        fn new() -> Self {
            DoubleGrant { heap: Arc::new(DeviceHeap::new(1 << 16)), calls: AtomicU64::new(0) }
        }
    }

    impl DeviceAllocator for DoubleGrant {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("DoubleGrant").build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, _size: u64) -> Result<DevicePtr, AllocError> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            // Calls 0 and 1 share offset 0; calls 2 and 3 share 4096, …
            Ok(DevicePtr::new((call / 2) * 4096))
        }
        fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
            Ok(())
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 1, free: 1 }
        }
    }

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    #[test]
    fn clean_workload_reports_clean() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        let mut ptrs = Vec::new();
        for i in 0..100u64 {
            ptrs.push(a.malloc(&ctx(), 16 + (i % 5) * 32).unwrap());
        }
        for p in ptrs {
            a.free(&ctx(), p).unwrap();
        }
        let rep = a.take_report();
        assert!(rep.is_clean(), "{rep}");
        assert_eq!(rep.live, 0);
        assert_eq!(a.live_allocations(), 0);
    }

    #[test]
    fn overlap_detected_via_occupancy() {
        let a = Sanitized::new(DoubleGrant::new());
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(p1, p2, "the broken allocator really double-granted");
        let rep = a.report();
        assert_eq!(rep.by_kind(ViolationKind::Overlap), 1, "{rep}");
        assert_eq!(rep.recorded[0].kind, ViolationKind::Overlap);
        assert_eq!(rep.recorded[0].offset, 0);
        assert!(rep.recorded[0].conflict.is_some());
    }

    #[test]
    fn double_free_and_unknown_free_distinguished() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        let p = a.malloc(&ctx(), 64).unwrap();
        a.free(&ctx(), p).unwrap();
        assert_eq!(a.free(&ctx(), p), Err(AllocError::InvalidPointer));
        assert_eq!(
            a.free(&ctx(), DevicePtr::new(1 << 18)),
            Err(AllocError::InvalidPointer),
            "never-allocated pointer"
        );
        let rep = a.take_report();
        assert_eq!(rep.by_kind(ViolationKind::DoubleFree), 1, "{rep}");
        assert_eq!(rep.by_kind(ViolationKind::UnknownFree), 1, "{rep}");
    }

    #[test]
    fn redzone_corruption_detected_on_free() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        let p = a.malloc(&ctx(), 40).unwrap();
        // The workload writes one byte past its 40 requested bytes.
        a.heap().fill(p.add(40), 1, 0x77);
        let _ = a.free(&ctx(), p);
        let rep = a.take_report();
        assert_eq!(rep.by_kind(ViolationKind::RedzoneCorrupt), 1, "{rep}");
        assert_eq!(rep.recorded[0].conflict, Some(p.raw() + 40));
    }

    #[test]
    fn in_bounds_writes_do_not_trip_the_redzone() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        let p = a.malloc(&ctx(), 40).unwrap();
        a.heap().fill(p, 40, 0x77);
        a.free(&ctx(), p).unwrap();
        assert!(a.report().is_clean());
    }

    #[test]
    fn poison_on_free_fills_payload() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        let p = a.malloc(&ctx(), 64).unwrap();
        a.heap().fill(p, 64, 0x11);
        a.free(&ctx(), p).unwrap();
        assert_eq!(a.heap().read_u8(p, 0), 0xde);
        assert_eq!(a.heap().read_u8(p, 63), 0xde);
    }

    #[test]
    fn passive_config_leaves_requests_untouched() {
        let a = Sanitized::with_config(GoodAlloc::new(1 << 20), SanitizerConfig::passive());
        let p = a.malloc(&ctx(), 64).unwrap();
        a.heap().fill(p, 64, 0x33);
        a.free(&ctx(), p).unwrap();
        // No poison: payload bytes survive the free.
        assert_eq!(a.heap().read_u8(p, 0), 0x33);
        assert!(a.report().is_clean());
    }

    #[test]
    fn out_of_heap_and_misaligned_returns_recorded() {
        struct Wild {
            heap: Arc<DeviceHeap>,
        }
        impl DeviceAllocator for Wild {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("Wild").build()
            }
            fn heap(&self) -> &DeviceHeap {
                &self.heap
            }
            fn malloc(&self, _c: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                // First an out-of-heap grant (aligned, so only one kind
                // trips), then an in-bounds misaligned one.
                if size < 100 {
                    Ok(DevicePtr::new(self.heap.len()))
                } else {
                    Ok(DevicePtr::new(24)) // 24 % 16 == 8: misaligned
                }
            }
            fn free(&self, _c: &ThreadCtx, _p: DevicePtr) -> Result<(), AllocError> {
                Ok(())
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 1, free: 1 }
            }
        }
        let a = Sanitized::with_config(
            Wild { heap: Arc::new(DeviceHeap::new(1 << 16)) },
            SanitizerConfig::passive(),
        );
        let _ = a.malloc(&ctx(), 64).unwrap();
        let _ = a.malloc(&ctx(), 200).unwrap();
        let rep = a.report();
        assert_eq!(rep.by_kind(ViolationKind::OutOfHeap), 1, "{rep}");
        assert_eq!(rep.by_kind(ViolationKind::Misaligned), 1, "{rep}");
    }

    #[test]
    fn rejected_inner_free_restores_shadow_state() {
        struct NoFree {
            heap: Arc<DeviceHeap>,
            top: AtomicU64,
        }
        impl DeviceAllocator for NoFree {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("NoFree").build() // claims supports_free
            }
            fn heap(&self) -> &DeviceHeap {
                &self.heap
            }
            fn malloc(&self, _c: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                Ok(DevicePtr::new(self.top.fetch_add(align_up(size, 16), Ordering::Relaxed)))
            }
            fn free(&self, _c: &ThreadCtx, _p: DevicePtr) -> Result<(), AllocError> {
                Err(AllocError::Contention("free rejected"))
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 1, free: 1 }
            }
        }
        let a = Sanitized::new(NoFree {
            heap: Arc::new(DeviceHeap::new(1 << 16)),
            top: AtomicU64::new(0),
        });
        let p = a.malloc(&ctx(), 64).unwrap();
        assert!(a.free(&ctx(), p).is_err());
        // The allocation is still live; a later free attempt is NOT a
        // double-free, and the canary survived the round trip.
        assert_eq!(a.live_allocations(), 1);
        assert!(a.free(&ctx(), p).is_err());
        let rep = a.report();
        assert_eq!(rep.by_kind(ViolationKind::DoubleFree), 0, "{rep}");
        assert_eq!(rep.by_kind(ViolationKind::RedzoneCorrupt), 0, "{rep}");
    }

    #[test]
    fn violation_sink_is_bounded() {
        let cfg = SanitizerConfig { max_recorded: 3, ..SanitizerConfig::default() };
        let a = Sanitized::with_config(GoodAlloc::new(1 << 20), cfg);
        for i in 0..10u64 {
            let _ = a.free(&ctx(), DevicePtr::new(1024 + i * 64));
        }
        let rep = a.take_report();
        assert_eq!(rep.by_kind(ViolationKind::UnknownFree), 10);
        assert_eq!(rep.recorded.len(), 3);
        assert_eq!(rep.dropped, 7);
    }

    #[test]
    fn occupancy_word_masks_cover_exact_ranges() {
        let occ = Occupancy::new(4096);
        assert_eq!(occ.mark(60, 8), None, "straddles a word boundary");
        assert_eq!(occ.mark(68, 4), None);
        assert!(occ.mark(64, 4).is_some(), "inside the straddle");
        occ.unmark(60, 8);
        occ.unmark(68, 4);
        assert_eq!(occ.mark(64, 1), None, "fully cleared");
    }

    #[test]
    fn report_display_formats() {
        let a = Sanitized::new(GoodAlloc::new(1 << 20));
        assert_eq!(a.report().to_string(), "clean (0 live)");
        let _ = a.free(&ctx(), DevicePtr::new(512));
        assert!(a.report().to_string().contains("unknown_free=1"));
    }

    #[test]
    fn display_of_violation_mentions_kind_and_offset() {
        let v = Violation {
            kind: ViolationKind::Overlap,
            thread: 7,
            warp: 0,
            sm: 1,
            offset: 0x40,
            size: 16,
            conflict: Some(0x44),
        };
        let s = v.to_string();
        assert!(s.contains("overlap") && s.contains("0x40") && s.contains("0x44"), "{s}");
    }
}
