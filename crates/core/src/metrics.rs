//! Contention-observability counters (the survey's "why is it slow" layer).
//!
//! The paper explains the performance differences between managers through
//! their algorithmic structure — hash-probe chains in ScatterAlloc (§2.3),
//! FIFO spins in XMalloc (§2.2), queue dequeue retries in Ouroboros (§2.8),
//! free-list walks in Reg-Eff (§2.5) — but end-to-end wall-clock alone
//! cannot confirm those attributions. This module provides the event
//! counters that make them checkable:
//!
//! * [`Counter`] — the taxonomy: per-call accounting (`MallocCalls`,
//!   `FreeCalls`, failures) plus the contention counters `CasRetries`,
//!   `ProbeSteps`, `QueueSpins`, `ListHops`, `OomFallbacks`,
//!   `WarpCoalesced`.
//! * [`AllocCounters`] — a sharded, cache-line-padded block of relaxed
//!   atomics. Shards are indexed by the calling thread's SM id, so
//!   simulated SMs do not false-share counter cache lines; reads aggregate
//!   across shards.
//! * [`Metrics`] — the cheap, cloneable handle allocators embed. A disabled
//!   handle is a `None` and every record call is a single predictable
//!   branch, so benchmark timings stay honest when observability is off.
//! * [`CounterSnapshot`] — an aggregated point-in-time reading;
//!   [`CounterSnapshot::delta_since`] turns two readings into a per-kernel
//!   attribution (the `gpu-sim` executor snapshots around every launch).
//!
//! Per-operation retry counts additionally feed a power-of-two histogram
//! ([`CounterSnapshot::retry_hist`]): bucket 0 counts operations that
//! succeeded without any retry, bucket *k* ≥ 1 counts operations whose
//! retry count fell in `[2^(k-1), 2^k)`.

use crate::sync::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named event counters. The discriminant doubles as the slot index inside
/// one shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `malloc` / `malloc_warp` lane requests issued.
    MallocCalls = 0,
    /// Allocation requests that returned an error.
    MallocFailures = 1,
    /// `free` / `free_warp` lane releases issued.
    FreeCalls = 2,
    /// Releases that returned an error.
    FreeFailures = 3,
    /// Failed `compare_exchange` attempts in hot loops (bit claims, count
    /// reservations, ring-buffer slots).
    CasRetries = 4,
    /// Steps taken by hash-probe or scan searches (ScatterAlloc page
    /// probing, Halloc bitmap hashing, CUDA-model validation walks).
    ProbeSteps = 5,
    /// Queue retry iterations: Ouroboros dequeue re-tries on stale entries,
    /// XMalloc FIFO slot spins.
    QueueSpins = 6,
    /// Linked-list / free-list hops (Reg-Eff circular walk, XMalloc
    /// superblock heap first-fit, CUDA-model class scans).
    ListHops = 7,
    /// Requests relayed to an embedded fallback allocator (the
    /// CUDA-Allocator sections inside Halloc / Ouroboros / FDGMalloc).
    OomFallbacks = 8,
    /// Lane requests served through a warp-aggregated fast path instead of
    /// an individual atomic (XMalloc / Halloc / FDGMalloc coalescing).
    WarpCoalesced = 9,
    /// Allocations served from a [`Cached`](crate::cache::Cached) per-SM
    /// magazine instead of the inner allocator's shared metadata.
    MagazineHits = 10,
    /// Cached-path allocations that fell through to the inner allocator
    /// (empty magazine, oversize, or caching disabled for the class).
    MagazineMisses = 11,
    /// Parked blocks evicted back to the inner allocator (magazine
    /// overflow or an explicit / drop-time drain).
    MagazineFlushes = 12,
}

/// Number of [`Counter`] slots.
pub const NUM_COUNTERS: usize = 13;

/// All counters in display order.
pub const ALL_COUNTERS: [Counter; NUM_COUNTERS] = [
    Counter::MallocCalls,
    Counter::MallocFailures,
    Counter::FreeCalls,
    Counter::FreeFailures,
    Counter::CasRetries,
    Counter::ProbeSteps,
    Counter::QueueSpins,
    Counter::ListHops,
    Counter::OomFallbacks,
    Counter::WarpCoalesced,
    Counter::MagazineHits,
    Counter::MagazineMisses,
    Counter::MagazineFlushes,
];

impl Counter {
    /// Whether this counter belongs to per-call accounting (as opposed to
    /// contention events). Relay handles ([`Metrics::relay`]) drop these so
    /// an embedded fallback allocator does not double-count its parent's
    /// calls.
    pub const fn is_call_accounting(self) -> bool {
        (self as usize) < 4
    }

    /// Stable snake_case name, used for CSV headers and reports.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::MallocCalls => "malloc_calls",
            Counter::MallocFailures => "malloc_failures",
            Counter::FreeCalls => "free_calls",
            Counter::FreeFailures => "free_failures",
            Counter::CasRetries => "cas_retries",
            Counter::ProbeSteps => "probe_steps",
            Counter::QueueSpins => "queue_spins",
            Counter::ListHops => "list_hops",
            Counter::OomFallbacks => "oom_fallbacks",
            Counter::WarpCoalesced => "warp_coalesced",
            Counter::MagazineHits => "magazine_hits",
            Counter::MagazineMisses => "magazine_misses",
            Counter::MagazineFlushes => "magazine_flushes",
        }
    }
}

/// Buckets of the per-operation retry histogram.
pub const RETRY_BUCKETS: usize = 16;

/// One cache-line-padded counter shard. 128 B alignment covers the spatial
/// prefetcher pair-line granularity on current x86 parts.
#[repr(align(128))]
struct Shard {
    counters: [AtomicU64; NUM_COUNTERS],
    retry_hist: [AtomicU64; RETRY_BUCKETS],
}

impl Shard {
    fn new() -> Self {
        Shard {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            retry_hist: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The sharded counter block behind an enabled [`Metrics`] handle.
///
/// Writes go to the shard of the caller's SM (`sm & (shards − 1)`), reads
/// aggregate over all shards. All accesses are `Relaxed`: counters are
/// statistics, not synchronisation.
pub struct AllocCounters {
    shards: Box<[Shard]>,
}

impl AllocCounters {
    /// One shard per simulated SM, rounded up to a power of two so the
    /// hot-path shard selection is a mask, not a division.
    pub fn new(num_sms: u32) -> Self {
        let n = (num_sms.max(1) as usize).next_power_of_two();
        AllocCounters { shards: (0..n).map(|_| Shard::new()).collect() }
    }

    #[inline]
    fn shard(&self, sm: u32) -> &Shard {
        &self.shards[sm as usize & (self.shards.len() - 1)]
    }

    #[inline]
    fn add(&self, sm: u32, counter: Counter, n: u64) {
        self.shard(sm).counters[counter as usize].fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    fn record_retries(&self, sm: u32, retries: u64) {
        let bucket = (63 - retries.leading_zeros() as usize).min(RETRY_BUCKETS - 1);
        self.shard(sm).retry_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregates every shard into one reading.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for shard in self.shards.iter() {
            for (i, c) in shard.counters.iter().enumerate() {
                snap.counters[i] += c.load(Ordering::Relaxed);
            }
            for (i, b) in shard.retry_hist.iter().enumerate() {
                snap.retry_hist[i] += b.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// The handle allocators embed: either disabled (`None`, free to clone and
/// nearly free to call) or an [`Arc`] of a shared [`AllocCounters`] block.
///
/// Cloning shares the underlying counters — a manager hands clones to its
/// embedded fallback allocator and helper structures so every component
/// reports into one block.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<AllocCounters>>,
    /// When false, per-call accounting counters are dropped (relay mode).
    record_calls: bool,
    /// Attached trace recorder (see [`crate::trace`]). Checked only on
    /// paths that already found `inner` populated or recorded a non-zero
    /// retry count, so a disabled handle still costs one branch.
    tracer: Option<Arc<crate::trace::TraceRecorder>>,
}

impl Metrics {
    /// A handle that records nothing. This is the default state of every
    /// allocator; all record calls reduce to one branch on a `None`.
    pub fn disabled() -> Self {
        Metrics { inner: None, record_calls: false, tracer: None }
    }

    /// A recording handle with one counter shard per simulated SM.
    pub fn enabled(num_sms: u32) -> Self {
        Metrics {
            inner: Some(Arc::new(AllocCounters::new(num_sms))),
            record_calls: true,
            tracer: None,
        }
    }

    /// True when this handle is the last owner of its counter block —
    /// every manager-side clone has been dropped, so the counters are
    /// frozen. The telemetry sink uses this to retire dead sources into a
    /// folded base snapshot instead of re-reading their shards forever.
    /// Trivially true for a disabled handle (there is nothing to read).
    pub fn is_sole_owner(&self) -> bool {
        self.inner.as_ref().is_none_or(|c| Arc::strong_count(c) == 1)
    }

    /// A clone for an *embedded* fallback allocator: shares the counter
    /// block but drops [call-accounting](Counter::is_call_accounting)
    /// events, so one outer request relayed inward is still counted once.
    /// The tracer (if any) is shared: the fallback's contention belongs to
    /// the same trace.
    pub fn relay(&self) -> Self {
        Metrics { inner: self.inner.clone(), record_calls: false, tracer: self.tracer.clone() }
    }

    /// Attaches a trace recorder: `OomFallback` events and per-operation
    /// retry payloads recorded through this handle land in `rec`'s rings.
    /// Used by the manager builder's `.trace(..)` together with the
    /// [`Traced`](crate::trace::Traced) wrapper.
    pub fn with_tracer(mut self, rec: Arc<crate::trace::TraceRecorder>) -> Self {
        self.tracer = Some(rec);
        self
    }

    /// The attached trace recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<crate::trace::TraceRecorder>> {
        self.tracer.as_ref()
    }

    /// Whether this handle records events.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `n` to `counter` on the shard of `sm`. `n == 0` is a no-op
    /// (hot loops flush per-op tallies unconditionally; a zero tally must
    /// not cost an atomic).
    #[inline]
    pub fn add(&self, sm: u32, counter: Counter, n: u64) {
        if let Some(c) = &self.inner {
            if n == 0 || (counter.is_call_accounting() && !self.record_calls) {
                return;
            }
            c.add(sm, counter, n);
            if counter == Counter::OomFallbacks {
                if let Some(rec) = &self.tracer {
                    rec.emit(sm, crate::trace::EventKind::OomFallback, [n, 0, 0, 0]);
                }
            }
        }
    }

    /// Increments `counter` by one on the shard of `sm`.
    #[inline]
    pub fn tick(&self, sm: u32, counter: Counter) {
        self.add(sm, counter, 1);
    }

    /// Records one operation's retry count into the histogram (and, when
    /// non-zero, into [`Counter::CasRetries`] via the caller — this method
    /// only feeds the histogram). Zero-retry operations are not sampled:
    /// they are the overwhelmingly common case, and their count is
    /// derivable as `malloc_calls − Σ buckets`.
    #[inline]
    pub fn record_retries(&self, sm: u32, retries: u64) {
        if retries == 0 {
            return;
        }
        if let Some(c) = &self.inner {
            c.record_retries(sm, retries);
        }
        // Feed the current thread's in-flight traced operation, so the
        // `Traced` wrapper can stamp MallocEnd/FreeEnd events with the
        // retries its inner call burned.
        if self.tracer.is_some() {
            crate::trace::note_op_retries(retries);
        }
    }

    /// Aggregated reading; all-zero for a disabled handle.
    pub fn snapshot(&self) -> CounterSnapshot {
        match &self.inner {
            Some(c) => c.snapshot(),
            None => CounterSnapshot::default(),
        }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(c) => write!(f, "Metrics(enabled, {} shards)", c.shards.len()),
            None => f.write_str("Metrics(disabled)"),
        }
    }
}

/// A point-in-time aggregated reading of every counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    counters: [u64; NUM_COUNTERS],
    /// Per-operation retry histogram over *retrying* operations: bucket `k`
    /// = retry count in `[2^k, 2^(k+1))`, last bucket clamped. Zero-retry
    /// operations are not sampled (derive them as `malloc_calls − Σ`).
    pub retry_hist: [u64; RETRY_BUCKETS],
}

impl CounterSnapshot {
    /// Reads one counter.
    #[inline]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Allocation requests issued.
    pub fn malloc_calls(&self) -> u64 {
        self.get(Counter::MallocCalls)
    }

    /// Allocation requests that failed.
    pub fn malloc_failures(&self) -> u64 {
        self.get(Counter::MallocFailures)
    }

    /// Releases issued.
    pub fn free_calls(&self) -> u64 {
        self.get(Counter::FreeCalls)
    }

    /// Releases that failed.
    pub fn free_failures(&self) -> u64 {
        self.get(Counter::FreeFailures)
    }

    /// Failed CAS attempts.
    pub fn cas_retries(&self) -> u64 {
        self.get(Counter::CasRetries)
    }

    /// Probe/scan steps.
    pub fn probe_steps(&self) -> u64 {
        self.get(Counter::ProbeSteps)
    }

    /// Queue retry iterations.
    pub fn queue_spins(&self) -> u64 {
        self.get(Counter::QueueSpins)
    }

    /// Free-list hops.
    pub fn list_hops(&self) -> u64 {
        self.get(Counter::ListHops)
    }

    /// Relays to an embedded fallback allocator.
    pub fn oom_fallbacks(&self) -> u64 {
        self.get(Counter::OomFallbacks)
    }

    /// Lane requests served via warp aggregation.
    pub fn warp_coalesced(&self) -> u64 {
        self.get(Counter::WarpCoalesced)
    }

    /// Allocations served from a per-SM magazine.
    pub fn magazine_hits(&self) -> u64 {
        self.get(Counter::MagazineHits)
    }

    /// Cached-path allocations that fell through to the inner allocator.
    pub fn magazine_misses(&self) -> u64 {
        self.get(Counter::MagazineMisses)
    }

    /// Parked blocks evicted back to the inner allocator.
    pub fn magazine_flushes(&self) -> u64 {
        self.get(Counter::MagazineFlushes)
    }

    /// Successful allocations still unreleased at snapshot time, derived
    /// from the call accounting identity
    /// `malloc_calls == malloc_failures + free_calls - free_failures + live`.
    pub fn live(&self) -> u64 {
        let freed_ok = self.free_calls() - self.free_failures();
        self.malloc_calls().saturating_sub(self.malloc_failures()).saturating_sub(freed_ok)
    }

    /// Component-wise `self - earlier` (saturating): the events that
    /// happened between two readings.
    pub fn delta_since(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for i in 0..NUM_COUNTERS {
            out.counters[i] = self.counters[i].saturating_sub(earlier.counters[i]);
        }
        for i in 0..RETRY_BUCKETS {
            out.retry_hist[i] = self.retry_hist[i].saturating_sub(earlier.retry_hist[i]);
        }
        out
    }

    /// Component-wise `self + other` (saturating): combines the deltas of
    /// two disjoint observation windows (e.g. an alloc phase and a free
    /// phase) into one reading.
    pub fn merge(&self, other: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for i in 0..NUM_COUNTERS {
            out.counters[i] = self.counters[i].saturating_add(other.counters[i]);
        }
        for i in 0..RETRY_BUCKETS {
            out.retry_hist[i] = self.retry_hist[i].saturating_add(other.retry_hist[i]);
        }
        out
    }

    /// Whether every counter and histogram bucket is zero.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.retry_hist.iter().all(|&b| b == 0)
    }

    /// True when no counter of `self` is below its value in `earlier` —
    /// the monotonicity law two snapshots of one handle must satisfy.
    pub fn dominates(&self, earlier: &CounterSnapshot) -> bool {
        self.counters.iter().zip(earlier.counters.iter()).all(|(a, b)| a >= b)
            && self.retry_hist.iter().zip(earlier.retry_hist.iter()).all(|(a, b)| a >= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let m = Metrics::disabled();
        m.tick(0, Counter::CasRetries);
        m.add(3, Counter::ProbeSteps, 100);
        m.record_retries(1, 5);
        assert!(!m.is_enabled());
        assert!(m.snapshot().is_zero());
    }

    #[test]
    fn enabled_handle_aggregates_across_shards() {
        let m = Metrics::enabled(8);
        for sm in 0..16 {
            m.tick(sm, Counter::MallocCalls);
        }
        m.add(2, Counter::QueueSpins, 7);
        let s = m.snapshot();
        assert_eq!(s.malloc_calls(), 16);
        assert_eq!(s.queue_spins(), 7);
        assert_eq!(s.cas_retries(), 0);
    }

    #[test]
    fn clones_share_the_block() {
        let m = Metrics::enabled(4);
        let clone = m.clone();
        clone.tick(0, Counter::OomFallbacks);
        assert_eq!(m.snapshot().oom_fallbacks(), 1);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let m = Metrics::enabled(1);
        m.record_retries(0, 0); // not sampled
        m.record_retries(0, 1); // bucket 0
        m.record_retries(0, 2); // bucket 1
        m.record_retries(0, 3); // bucket 1
        m.record_retries(0, 4); // bucket 2
        m.record_retries(0, u64::MAX); // clamped to last bucket
        let h = m.snapshot().retry_hist;
        assert_eq!(h[0], 1);
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 1);
        assert_eq!(h[3], 0);
        assert_eq!(h[RETRY_BUCKETS - 1], 1);
        assert_eq!(h.iter().sum::<u64>(), 5);
    }

    #[test]
    fn delta_and_monotonicity() {
        let m = Metrics::enabled(2);
        m.add(0, Counter::ListHops, 10);
        let a = m.snapshot();
        m.add(1, Counter::ListHops, 5);
        m.tick(0, Counter::MallocCalls);
        let b = m.snapshot();
        assert!(b.dominates(&a));
        let d = b.delta_since(&a);
        assert_eq!(d.list_hops(), 5);
        assert_eq!(d.malloc_calls(), 1);
        assert_eq!(d.queue_spins(), 0);
    }

    #[test]
    fn live_accounting_identity() {
        let m = Metrics::enabled(1);
        m.add(0, Counter::MallocCalls, 10);
        m.add(0, Counter::MallocFailures, 2);
        m.add(0, Counter::FreeCalls, 3);
        let s = m.snapshot();
        assert_eq!(s.live(), 5);
        assert_eq!(
            s.malloc_calls(),
            s.malloc_failures() + (s.free_calls() - s.free_failures()) + s.live()
        );
    }

    #[test]
    fn counter_names_are_snake_case() {
        for c in ALL_COUNTERS {
            assert!(c.name().chars().all(|ch| ch.is_ascii_lowercase() || ch == '_'));
        }
        assert_eq!(Counter::CasRetries.name(), "cas_retries");
    }

    #[test]
    fn relay_handles_share_contention_but_not_calls() {
        let m = Metrics::enabled(2);
        let inner = m.relay();
        inner.tick(0, Counter::MallocCalls); // dropped
        inner.tick(0, Counter::ProbeSteps); // shared
        let s = m.snapshot();
        assert_eq!(s.malloc_calls(), 0);
        assert_eq!(s.probe_steps(), 1);
        assert!(inner.is_enabled());
    }

    #[test]
    fn sharding_wraps_sm_ids() {
        let m = Metrics::enabled(2);
        m.tick(1000, Counter::FreeCalls); // sm far beyond shard count
        assert_eq!(m.snapshot().free_calls(), 1);
    }
}
