//! Small shared helpers: alignment math, mixing hashes, a deterministic
//! per-thread RNG (GPU threads have no `rand`; the originals use hand-rolled
//! LCGs/xorshifts, and determinism keeps every benchmark reproducible).

/// Rounds `v` up to the next multiple of `align` (power of two).
#[inline]
pub const fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// Rounds `v` down to a multiple of `align` (power of two).
#[inline]
pub const fn align_down(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    v & !(align - 1)
}

/// Next power of two ≥ `v` (with `next_pow2(0) == 1`).
///
/// Values above `1 << 63` have no representable next power of two; use
/// [`checked_next_pow2`] where the input is demand-derived and can reach
/// that range (matrix-scale allocation counts multiplied by sizes).
#[inline]
pub const fn next_pow2(v: u64) -> u64 {
    if v <= 1 {
        1
    } else {
        1u64 << (64 - (v - 1).leading_zeros())
    }
}

/// Next power of two ≥ `v`, or `None` when `v > 1 << 63` (the shift in
/// [`next_pow2`] would overflow — debug-panic or silently wrap to 0 in
/// release, under-provisioning whatever heap was being sized).
#[inline]
pub const fn checked_next_pow2(v: u64) -> Option<u64> {
    if v > 1u64 << 63 {
        None
    } else {
        Some(next_pow2(v))
    }
}

/// SplitMix64 finalizer — a cheap, high-quality 64-bit mixer. Used wherever
/// an allocator hashes ids or sizes into table positions.
#[inline]
pub const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A tiny xorshift64* PRNG: the per-device-thread random source.
///
/// Seeded from the thread id, it gives every simulated thread its own
/// reproducible stream — this is how the mixed-allocation (Fig. 9h) and
/// work-generation (Fig. 11c/d) test cases pick per-thread sizes.
#[derive(Clone, Debug)]
pub struct DeviceRng {
    state: u64,
}

impl DeviceRng {
    /// Creates an RNG whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate adjacent seeds.
        DeviceRng { state: mix64(seed).max(1) }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next u32.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi]` (inclusive). `lo <= hi` required.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let span = hi - lo + 1;
        lo + self.next_u64() % span
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_cases() {
        assert_eq!(align_up(0, 16), 0);
        assert_eq!(align_up(1, 16), 16);
        assert_eq!(align_up(16, 16), 16);
        assert_eq!(align_up(17, 16), 32);
    }

    #[test]
    fn align_down_cases() {
        assert_eq!(align_down(0, 16), 0);
        assert_eq!(align_down(15, 16), 0);
        assert_eq!(align_down(16, 16), 16);
        assert_eq!(align_down(31, 16), 16);
    }

    #[test]
    fn next_pow2_cases() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(4), 4);
        assert_eq!(next_pow2(4097), 8192);
        assert_eq!(next_pow2(1 << 40), 1 << 40);
    }

    #[test]
    fn checked_next_pow2_boundaries() {
        assert_eq!(checked_next_pow2(0), Some(1));
        assert_eq!(checked_next_pow2(1 << 63), Some(1 << 63));
        assert_eq!(checked_next_pow2((1 << 63) + 1), None);
        assert_eq!(checked_next_pow2(u64::MAX), None);
    }

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = DeviceRng::new(42);
        let mut b = DeviceRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn rng_streams_differ_between_seeds() {
        let mut a = DeviceRng::new(1);
        let mut b = DeviceRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn rng_range_inclusive_bounds() {
        let mut r = DeviceRng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.range_u64(4, 8);
            assert!((4..=8).contains(&v));
            seen_lo |= v == 4;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi, "range must reach both bounds");
    }

    #[test]
    fn rng_f64_in_unit_interval() {
        let mut r = DeviceRng::new(9);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn mix64_spreads_small_inputs() {
        // Adjacent inputs should differ in many bits (avalanche sanity check).
        let d = (mix64(1) ^ mix64(2)).count_ones();
        assert!(d > 16, "poor avalanche: {d} differing bits");
    }
}
