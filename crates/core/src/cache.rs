//! `Cached<A>` — per-SM size-class magazines over any [`DeviceAllocator`].
//!
//! The survey's central finding is that allocator hot paths live or die on
//! contention over *shared* metadata: hash-probe chains, queue dequeues and
//! free-list walks all serialize concurrent requests (§4.2, Fig. 9h). This
//! decorator attacks exactly that. Recently freed blocks are parked in small
//! per-SM, per-size-class **magazines** (bounded lock-free LIFO stacks), so
//! a repeat allocation of the same class is served by one CAS on SM-local
//! state instead of a trip through the family's shared structures. Frees
//! issued warp-collectively are additionally **batched**: the lanes a warp
//! could not park are published to the inner allocator in one leader-driven
//! `free_warp` call rather than 32 individual ones.
//!
//! Size classes generalize Halloc's table (§2.7): the powers of two and the
//! `3·2^k` midpoints between [`MIN_CLASS`] and [`MAX_CLASS`]. A request is
//! rounded up to its class before it reaches the inner allocator, so any
//! same-class request can safely reuse a parked block.
//!
//! ## Ownership protocol
//!
//! A block enters a magazine only by moving *out* of the caller's hands
//! (`free`), and leaves it only by a successful atomic pop (`malloc`), so a
//! parked block is never double-granted. From the inner allocator's view a
//! parked block is still allocated — the inner `free` happens later, when
//! the magazine overflows ([`Counter::MagazineFlushes`]) or the decorator
//! drains ([`Cached::flush_all`], also invoked on drop). This is what keeps
//! `Sanitized<Cached<A>>` sound: the sanitizer wraps *outside*, observes
//! every caller-visible free (parking reports `Ok` precisely because the
//! block really is reusable), and every parked block is eventually returned
//! to the inner allocator by a real `free` call.
//!
//! Caching engages only for inner allocators with general free support
//! (`supports_free && !warp_level_only`): without an inner `free`, evicted
//! blocks could not be returned, and warp-level-only managers (FDGMalloc)
//! release allocations wholesale in a way no pointer-keyed cache can track.
//! For those families the decorator is a transparent pass-through.

use crate::error::AllocError;
use crate::heap::DeviceHeap;
use crate::info::ManagerInfo;
use crate::metrics::{Counter, Metrics};
use crate::ptr::DevicePtr;
use crate::regs::RegisterFootprint;
use crate::sync::{AtomicU64, AtomicUsize, Ordering};
use crate::trace::EventKind;
use crate::traits::DeviceAllocator;
use crate::{ThreadCtx, WarpCtx, WARP_SIZE};

/// Smallest cached size class, matching Halloc's 16 B minimum block.
pub const MIN_CLASS: u64 = 16;

/// Largest cached size class; larger requests pass straight through.
pub const MAX_CLASS: u64 = 4096;

/// Number of size classes between [`MIN_CLASS`] and [`MAX_CLASS`].
pub const NUM_CLASSES: usize = 17;

/// The class table: powers of two and `3·2^k` values, ascending.
pub const CLASS_SIZES: [u64; NUM_CLASSES] =
    [16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096];

/// Index of the smallest class that fits `size`, or `None` above
/// [`MAX_CLASS`]. Requests of 0 bytes round up to [`MIN_CLASS`] like every
/// surveyed manager's minimum block.
#[inline]
pub fn class_of(size: u64) -> Option<usize> {
    if size > MAX_CLASS {
        return None;
    }
    // 17 entries; the scan exits on the first fit (≤ 4 steps for the small
    // sizes that dominate the workloads).
    CLASS_SIZES.iter().position(|&c| c >= size)
}

/// Tuning knobs for [`Cached`]. The defaults hold a smoke-tier working set
/// (2048 blocks over 8 active SMs) entirely in magazines.
#[derive(Clone, Copy, Debug)]
pub struct CachedConfig {
    /// Slots per (SM, class) magazine.
    pub magazine_cap: usize,
    /// Entries in the pointer→class tag table (rounded up to a power of
    /// two). When the table fills, further blocks are simply not cached.
    pub tag_capacity: usize,
    /// Largest request size served from magazines (clamped to
    /// [`MAX_CLASS`]).
    pub max_cached_size: u64,
}

impl Default for CachedConfig {
    fn default() -> Self {
        CachedConfig { magazine_cap: 256, tag_capacity: 1 << 15, max_cached_size: MAX_CLASS }
    }
}

/// A bounded lock-free LIFO of parked block offsets.
///
/// `top` hands out slot indices; each slot then completes a two-phase
/// handoff on its own atomic (0 = empty, otherwise `offset + 1`). A pusher
/// that claimed index `t` publishes with `CAS(slot[t], 0 → offset+1)`,
/// retrying only while an in-flight pop of the slot's previous occupant has
/// not yet cleared it; a popper that claimed index `t-1` takes with
/// `swap(slot[t-1], 0)`, retrying only while the pusher's store is still in
/// flight. Each retry loop waits on exactly one other thread's single store
/// between its claim and its publish, so the protocol is obstruction-free
/// with a bounded wait; the loom model below exhausts its interleavings.
pub(crate) struct Magazine {
    top: AtomicUsize,
    slots: Box<[AtomicU64]>,
}

/// Spin-wait hint: under loom a yield, so the model switches to the peer
/// whose store the loop awaits.
#[inline]
fn backoff() {
    #[cfg(loom)]
    crate::sync::thread::yield_now();
    #[cfg(not(loom))]
    crate::sync::hint::spin_loop();
}

impl Magazine {
    pub(crate) fn new(cap: usize) -> Self {
        Magazine {
            top: AtomicUsize::new(0),
            slots: (0..cap.max(1)).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Parks `offset`; `Err(())` when the magazine is full (the caller
    /// flushes the block to the inner allocator instead).
    pub(crate) fn push(&self, offset: u64) -> Result<(), ()> {
        let cap = self.slots.len();
        // Acquire on the claim pairs with the Release decrement of pops, so
        // this pusher's slot access is ordered after the pop that vacated
        // the index it claims.
        let mut t = self.top.load(Ordering::Acquire);
        loop {
            if t >= cap {
                return Err(());
            }
            match self.top.compare_exchange_weak(t, t + 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(cur) => t = cur,
            }
        }
        // memlint: allow(unchecked-offset-arithmetic) — +1 sentinel encoding distinguishes offset 0 from EMPTY; heap offsets are far below u64::MAX, so the increment cannot wrap
        let enc = offset + 1;
        // Release publishes the parked block's handoff: a popper that
        // acquires this value may hand the block to a new owner whose
        // accesses must be ordered after the old owner's.
        while self.slots[t].compare_exchange(0, enc, Ordering::Release, Ordering::Relaxed).is_err()
        {
            // An in-flight pop claimed this index before we re-used it and
            // has not yet swapped the old value out; its single swap is the
            // only store we wait for.
            backoff();
        }
        Ok(())
    }

    /// Takes the most recently parked offset, or `None` when empty.
    pub(crate) fn pop(&self) -> Option<u64> {
        let mut t = self.top.load(Ordering::Acquire);
        loop {
            if t == 0 {
                return None;
            }
            match self.top.compare_exchange_weak(t, t - 1, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => break,
                Err(cur) => t = cur,
            }
        }
        loop {
            // AcqRel: Acquire pairs with the pusher's Release publish (the
            // popped block's prior writes happen-before the new owner's);
            // Release orders the clear before a later pusher's re-claim.
            let v = self.slots[t - 1].swap(0, Ordering::AcqRel);
            if v != 0 {
                return Some(v - 1);
            }
            // The pusher that claimed this index has not stored yet; its
            // single CAS is the only store we wait for.
            backoff();
        }
    }

    /// Approximate occupancy (exact at quiescence).
    pub(crate) fn len(&self) -> usize {
        self.top.load(Ordering::Acquire).min(self.slots.len())
    }
}

/// Sentinel entry for a deleted tag slot. Linear probing cannot simply
/// reset a slot to empty (that would sever probe chains through it), so
/// removal leaves a tombstone that inserts may re-use.
const TAG_TOMBSTONE: u64 = 1;

/// How far an insert/lookup probes before giving up. A bounded probe keeps
/// the free path O(1); a block that fails to register is simply not cached.
const TAG_PROBE_LIMIT: usize = 32;

/// Lock-free open-addressed map from block offset to size class, recording
/// which class a cached-path grant belongs to so its eventual `free` can be
/// parked in the right magazine. Entry encoding: `0` empty,
/// [`TAG_TOMBSTONE`] deleted, otherwise `((offset + 1) << 8) | class`.
struct TagTable {
    slots: Box<[AtomicU64]>,
    mask: u64,
}

impl TagTable {
    fn new(capacity: usize) -> Self {
        let n = capacity.max(64).next_power_of_two();
        TagTable { slots: (0..n).map(|_| AtomicU64::new(0)).collect(), mask: n as u64 - 1 }
    }

    #[inline]
    fn key(offset: u64) -> u64 {
        // memlint: allow(unchecked-offset-arithmetic) — key encoding: offsets are < 2^55 (heap lengths), so +1 then << 8 cannot wrap the tag out of the word
        (offset + 1) << 8
    }

    #[inline]
    fn start(&self, offset: u64) -> u64 {
        crate::util::mix64(offset) & self.mask
    }

    /// Registers `offset → class`; `false` when the probe window is full
    /// (the block stays untracked and its free passes through).
    fn insert(&self, offset: u64, class: usize) -> bool {
        debug_assert!(class < NUM_CLASSES);
        let entry = Self::key(offset) | class as u64;
        let mut i = self.start(offset);
        for _ in 0..TAG_PROBE_LIMIT {
            let slot = &self.slots[i as usize];
            let mut e = slot.load(Ordering::Acquire);
            loop {
                if e != 0 && e != TAG_TOMBSTONE && (e >> 8) != (entry >> 8) {
                    break; // occupied by another offset: next probe slot
                }
                // Empty, tombstone, or a stale entry for the same offset:
                // claim it. AcqRel: the stored class is consumed by the
                // remove() on another thread's free path.
                match slot.compare_exchange_weak(e, entry, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => return true,
                    Err(cur) => e = cur,
                }
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// Unregisters `offset`, returning its class. Exactly one of several
    /// racing removers wins (the CAS to tombstone), so a double free cannot
    /// park one block twice.
    fn remove(&self, offset: u64) -> Option<usize> {
        let key = Self::key(offset);
        let mut i = self.start(offset);
        for _ in 0..TAG_PROBE_LIMIT {
            let slot = &self.slots[i as usize];
            let mut e = slot.load(Ordering::Acquire);
            loop {
                if e == 0 {
                    return None; // probe chain ends: never registered
                }
                if e == TAG_TOMBSTONE || (e >> 8) != (key >> 8) {
                    break; // not ours: next probe slot
                }
                match slot.compare_exchange_weak(
                    e,
                    TAG_TOMBSTONE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Some((e & 0xff) as usize),
                    Err(cur) => e = cur,
                }
            }
            i = (i + 1) & self.mask;
        }
        None
    }
}

/// One SM's magazines, padded so neighbouring SMs do not false-share.
#[repr(align(128))]
struct SmShard {
    mags: [Magazine; NUM_CLASSES],
}

/// The caching decorator. See the module docs for the protocol; see
/// [`CachedConfig`] for sizing.
pub struct Cached<A: DeviceAllocator> {
    inner: A,
    shards: Box<[SmShard]>,
    tags: TagTable,
    /// Relay of the inner metrics handle: magazine counters land in the
    /// same block, call accounting stays the inner allocator's own view.
    metrics: Metrics,
    /// Whether magazines engage (inner has general free support).
    enabled: bool,
    max_cached: u64,
}

impl<A: DeviceAllocator> Cached<A> {
    /// Wraps `inner` with default magazine sizing, one shard per SM.
    pub fn new(inner: A, num_sms: u32) -> Self {
        Cached::with_config(inner, num_sms, CachedConfig::default())
    }

    /// Wraps `inner` with explicit sizing.
    pub fn with_config(inner: A, num_sms: u32, cfg: CachedConfig) -> Self {
        let info = inner.info();
        let enabled = info.supports_free && !info.warp_level_only;
        let n = (num_sms.max(1) as usize).next_power_of_two();
        let shards = (0..n)
            .map(|_| SmShard { mags: std::array::from_fn(|_| Magazine::new(cfg.magazine_cap)) })
            .collect();
        let metrics = inner.metrics().relay();
        Cached {
            inner,
            shards,
            tags: TagTable::new(cfg.tag_capacity),
            metrics,
            enabled,
            max_cached: cfg.max_cached_size.min(MAX_CLASS),
        }
    }

    /// The wrapped allocator.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Whether magazines are engaged (false = transparent pass-through).
    pub fn is_caching(&self) -> bool {
        self.enabled
    }

    #[inline]
    fn shard(&self, sm: u32) -> &SmShard {
        &self.shards[sm as usize & (self.shards.len() - 1)]
    }

    #[inline]
    fn class_for(&self, size: u64) -> Option<usize> {
        if !self.enabled || size > self.max_cached {
            return None;
        }
        class_of(size)
    }

    /// Blocks currently parked across all magazines (exact at quiescence).
    pub fn cached_blocks(&self) -> u64 {
        self.shards.iter().flat_map(|s| s.mags.iter()).map(|m| m.len() as u64).sum()
    }

    /// Drains every magazine, returning each parked block to the inner
    /// allocator with a real `free`. Returns the number of blocks flushed.
    /// Called on drop, so no block the caller freed is ever stranded.
    pub fn flush_all(&self) -> u64 {
        let mut flushed = 0u64;
        for (sm, shard) in self.shards.iter().enumerate() {
            let ctx = ThreadCtx { thread_id: 0, lane: 0, warp: 0, block: sm as u32, sm: sm as u32 };
            for mag in &shard.mags {
                while let Some(off) = mag.pop() {
                    let _ = self.inner.free(&ctx, DevicePtr::new(off));
                    flushed += 1;
                }
            }
        }
        if flushed > 0 {
            self.metrics.add(0, Counter::MagazineFlushes, flushed);
            if let Some(rec) = self.metrics.tracer() {
                rec.emit(0, EventKind::CacheFlush, [flushed, 0, 0, 0]);
            }
        }
        flushed
    }

    /// Parks `ptr` (already unregistered as `class`); on overflow, evicts
    /// it to the inner allocator. Returns `Ok` in both cases — either way
    /// the caller's free succeeded.
    fn park_or_evict(
        &self,
        ctx: &ThreadCtx,
        ptr: DevicePtr,
        class: usize,
    ) -> Result<(), AllocError> {
        if self.shard(ctx.sm).mags[class].push(ptr.raw()).is_ok() {
            return Ok(());
        }
        self.metrics.tick(ctx.sm, Counter::MagazineFlushes);
        if let Some(rec) = self.metrics.tracer() {
            rec.emit(ctx.sm, EventKind::CacheFlush, [1, CLASS_SIZES[class], 0, 0]);
        }
        self.inner.free(ctx, ptr)
    }
}

impl<A: DeviceAllocator> DeviceAllocator for Cached<A> {
    fn info(&self) -> ManagerInfo {
        self.inner.info()
    }

    fn heap(&self) -> &DeviceHeap {
        self.inner.heap()
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let Some(class) = self.class_for(size) else {
            return self.inner.malloc(ctx, size);
        };
        if let Some(off) = self.shard(ctx.sm).mags[class].pop() {
            self.metrics.tick(ctx.sm, Counter::MagazineHits);
            if let Some(rec) = self.metrics.tracer() {
                rec.emit(ctx.sm, EventKind::CacheHit, [off, CLASS_SIZES[class], 0, 0]);
            }
            // A failed tag insert (table full) only means the block is
            // untracked: its eventual free passes through to the inner
            // allocator, which still considers it allocated. Correct either
            // way, so the grant is unconditional.
            let _ = self.tags.insert(off, class);
            return Ok(DevicePtr::new(off));
        }
        self.metrics.tick(ctx.sm, Counter::MagazineMisses);
        // Round up to the class so any same-class request can reuse the
        // block later.
        let ptr = self.inner.malloc(ctx, CLASS_SIZES[class])?;
        let _ = self.tags.insert(ptr.raw(), class);
        Ok(ptr)
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        if !self.enabled || ptr.is_null() {
            return self.inner.free(ctx, ptr);
        }
        match self.tags.remove(ptr.raw()) {
            Some(class) => self.park_or_evict(ctx, ptr, class),
            // Untracked (oversize, tag table overflow, or a pointer that
            // never passed through this layer): the inner allocator owns it.
            None => self.inner.free(ctx, ptr),
        }
    }

    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        debug_assert_eq!(sizes.len(), out.len());
        if !self.enabled {
            return self.inner.malloc_warp(warp, sizes, out);
        }
        // Serve the whole warp from magazines when possible; otherwise roll
        // the pops back and delegate the intact warp to the inner
        // allocator, preserving its coalesced fast path and all-or-nothing
        // failure semantics.
        let shard = self.shard(warp.sm);
        let mut popped: Vec<(usize, u64)> = Vec::with_capacity(sizes.len());
        let mut complete = true;
        for (lane, &size) in sizes.iter().enumerate() {
            let Some(class) = self.class_for(size) else {
                complete = false;
                break;
            };
            match shard.mags[class].pop() {
                Some(off) => popped.push((class, off)),
                None => {
                    complete = false;
                    break;
                }
            }
            let _ = lane;
        }
        if complete {
            self.metrics.add(warp.sm, Counter::MagazineHits, popped.len() as u64);
            if let Some(rec) = self.metrics.tracer() {
                rec.emit(warp.sm, EventKind::CacheHit, [popped.len() as u64, 0, 0, 1]);
            }
            for (lane, &(class, off)) in popped.iter().enumerate() {
                let _ = self.tags.insert(off, class);
                out[lane] = DevicePtr::new(off);
                let _ = class;
            }
            return Ok(());
        }
        for &(class, off) in &popped {
            if shard.mags[class].push(off).is_err() {
                // Raced full between pop and push-back: evict for real.
                let ctx = warp.leader();
                self.metrics.tick(warp.sm, Counter::MagazineFlushes);
                let _ = self.inner.free(&ctx, DevicePtr::new(off));
            }
        }
        self.metrics.add(warp.sm, Counter::MagazineMisses, sizes.len() as u64);
        let rounded: Vec<u64> = sizes
            .iter()
            .map(|&s| match self.class_for(s) {
                Some(c) => CLASS_SIZES[c],
                None => s,
            })
            .collect();
        self.inner.malloc_warp(warp, &rounded, out)?;
        for (&p, &s) in out.iter().zip(rounded.iter()) {
            if !p.is_null() {
                if let Some(c) = self.class_for(s) {
                    let _ = self.tags.insert(p.raw(), c);
                }
            }
        }
        Ok(())
    }

    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        if !self.enabled {
            return self.inner.free_warp(warp, ptrs);
        }
        debug_assert!(ptrs.len() <= WARP_SIZE as usize);
        let shard = self.shard(warp.sm);
        // Park what fits; batch the rest into ONE leader-driven publication
        // to the inner allocator (lane positions preserved, parked lanes
        // nulled out) instead of one inner call per lane.
        let mut remaining = [DevicePtr::NULL; WARP_SIZE as usize];
        let mut parked = 0u64;
        let mut evicted = 0u64;
        let mut any_remaining = false;
        for (lane, &p) in ptrs.iter().enumerate() {
            if p.is_null() {
                continue;
            }
            match self.tags.remove(p.raw()) {
                Some(class) if shard.mags[class].push(p.raw()).is_ok() => parked += 1,
                Some(_) => {
                    evicted += 1;
                    remaining[lane] = p;
                    any_remaining = true;
                }
                None => {
                    remaining[lane] = p;
                    any_remaining = true;
                }
            }
        }
        self.metrics.add(warp.sm, Counter::MagazineHits, parked);
        self.metrics.add(warp.sm, Counter::MagazineFlushes, evicted);
        if !any_remaining {
            return Ok(());
        }
        if let Some(rec) = self.metrics.tracer() {
            rec.emit(warp.sm, EventKind::CacheFlush, [evicted, 0, 0, 1]);
        }
        self.inner.free_warp(warp, &remaining[..ptrs.len()])
    }

    fn free_warp_all(&self, warp: &WarpCtx) -> Result<(), AllocError> {
        // Only warp-level-only families implement this; for them caching is
        // disabled and the magazines are empty by construction.
        self.inner.free_warp_all(warp)
    }

    fn register_footprint(&self) -> RegisterFootprint {
        self.inner.register_footprint()
    }

    fn grow(&self, additional: u64) -> Result<(), AllocError> {
        self.inner.grow(additional)
    }

    fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    fn drain(&self) -> u64 {
        // Published magazine contents first, then whatever the inner
        // manager itself might be holding back (a nested decorator).
        self.flush_all() + self.inner.drain()
    }
}

impl<A: DeviceAllocator> Drop for Cached<A> {
    fn drop(&mut self) {
        let _ = self.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Ordering as O;
    use std::sync::Arc;

    /// Free-capable bump allocator counting its calls, for decorator tests.
    struct CountingInner {
        heap: Arc<DeviceHeap>,
        top: AtomicU64,
        mallocs: AtomicU64,
        frees: AtomicU64,
    }

    impl CountingInner {
        fn new(len: u64) -> Self {
            CountingInner {
                heap: Arc::new(DeviceHeap::new(len)),
                top: AtomicU64::new(0),
                mallocs: AtomicU64::new(0),
                frees: AtomicU64::new(0),
            }
        }
    }

    impl DeviceAllocator for CountingInner {
        fn info(&self) -> ManagerInfo {
            ManagerInfo::builder("CountingInner").supports_free(true).build()
        }
        fn heap(&self) -> &DeviceHeap {
            &self.heap
        }
        fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
            self.mallocs.fetch_add(1, O::Relaxed);
            let sz = crate::util::align_up(size.max(1), 16);
            let off = self.top.fetch_add(sz, O::Relaxed);
            if off + sz > self.heap.len() {
                return Err(AllocError::OutOfMemory(size));
            }
            Ok(DevicePtr::new(off))
        }
        fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
            self.frees.fetch_add(1, O::Relaxed);
            Ok(())
        }
        fn register_footprint(&self) -> RegisterFootprint {
            RegisterFootprint { malloc: 4, free: 2 }
        }
    }

    #[test]
    fn class_table_is_sorted_pow2_and_3x2k() {
        assert_eq!(CLASS_SIZES.len(), NUM_CLASSES);
        for w in CLASS_SIZES.windows(2) {
            assert!(w[0] < w[1]);
        }
        for &c in &CLASS_SIZES {
            let pow2 = c.is_power_of_two();
            let three_2k = c % 3 == 0 && (c / 3).is_power_of_two();
            assert!(pow2 || three_2k, "{c} is neither 2^k nor 3*2^k");
            assert!(c % MIN_CLASS == 0 || c == 24, "{c} breaks 16 B alignment steps");
        }
        assert_eq!(CLASS_SIZES[0], MIN_CLASS);
        assert_eq!(CLASS_SIZES[NUM_CLASSES - 1], MAX_CLASS);
    }

    #[test]
    fn class_of_picks_smallest_fit() {
        assert_eq!(class_of(0), Some(0));
        assert_eq!(class_of(16), Some(0));
        assert_eq!(class_of(17), Some(1));
        assert_eq!(class_of(24), Some(1));
        assert_eq!(class_of(25), Some(2));
        assert_eq!(class_of(4096), Some(NUM_CLASSES - 1));
        assert_eq!(class_of(4097), None);
        for s in 1..=MAX_CLASS {
            let c = class_of(s).unwrap();
            assert!(CLASS_SIZES[c] >= s);
            if c > 0 {
                assert!(CLASS_SIZES[c - 1] < s, "class for {s} not minimal");
            }
        }
    }

    #[test]
    fn magazine_lifo_push_pop() {
        let m = Magazine::new(4);
        assert_eq!(m.pop(), None);
        m.push(10).unwrap();
        m.push(20).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.pop(), Some(20));
        assert_eq!(m.pop(), Some(10));
        assert_eq!(m.pop(), None);
    }

    #[test]
    fn magazine_rejects_past_capacity() {
        let m = Magazine::new(2);
        m.push(1).unwrap();
        m.push(2).unwrap();
        assert_eq!(m.push(3), Err(()));
        assert_eq!(m.pop(), Some(2));
        m.push(3).unwrap();
    }

    #[test]
    fn magazine_handles_offset_zero() {
        let m = Magazine::new(2);
        m.push(0).unwrap();
        assert_eq!(m.pop(), Some(0));
    }

    #[test]
    fn tag_table_insert_remove_roundtrip() {
        let t = TagTable::new(64);
        assert!(t.insert(0, 3));
        assert!(t.insert(4096, 7));
        assert_eq!(t.remove(4096), Some(7));
        assert_eq!(t.remove(4096), None, "second remove must miss");
        assert_eq!(t.remove(0), Some(3));
        assert_eq!(t.remove(12345), None);
        // Tombstones are re-usable.
        for i in 0..200u64 {
            assert!(t.insert(i * 16, (i % NUM_CLASSES as u64) as usize));
            assert_eq!(t.remove(i * 16), Some((i % NUM_CLASSES as u64) as usize));
        }
    }

    #[test]
    fn malloc_free_malloc_hits_magazine() {
        let c = Cached::new(CountingInner::new(1 << 20), 4);
        let ctx = ThreadCtx::host();
        let p = c.malloc(&ctx, 100).unwrap();
        assert_eq!(c.inner().mallocs.load(O::Relaxed), 1);
        c.free(&ctx, p).unwrap();
        // Parked, not freed through the inner allocator.
        assert_eq!(c.inner().frees.load(O::Relaxed), 0);
        assert_eq!(c.cached_blocks(), 1);
        // Same class (128 B) from the same SM: served from the magazine.
        let q = c.malloc(&ctx, 128).unwrap();
        assert_eq!(q, p, "repeat allocation must reuse the parked block");
        assert_eq!(c.inner().mallocs.load(O::Relaxed), 1, "no inner trip on a hit");
    }

    #[test]
    fn different_class_misses() {
        let c = Cached::new(CountingInner::new(1 << 20), 4);
        let ctx = ThreadCtx::host();
        let p = c.malloc(&ctx, 64).unwrap();
        c.free(&ctx, p).unwrap();
        let q = c.malloc(&ctx, 1024).unwrap();
        assert_ne!(q, p);
        assert_eq!(c.inner().mallocs.load(O::Relaxed), 2);
    }

    #[test]
    fn oversize_passes_through_unrounded() {
        let c = Cached::new(CountingInner::new(1 << 20), 4);
        let ctx = ThreadCtx::host();
        let p = c.malloc(&ctx, MAX_CLASS + 1).unwrap();
        c.free(&ctx, p).unwrap();
        assert_eq!(c.inner().frees.load(O::Relaxed), 1, "oversize free reaches inner");
        assert_eq!(c.cached_blocks(), 0);
    }

    #[test]
    fn magazine_overflow_evicts_to_inner() {
        let cfg = CachedConfig { magazine_cap: 2, ..CachedConfig::default() };
        let c = Cached::with_config(CountingInner::new(1 << 20), 1, cfg);
        let ctx = ThreadCtx::host();
        let ptrs: Vec<_> = (0..3).map(|_| c.malloc(&ctx, 32).unwrap()).collect();
        for p in ptrs {
            c.free(&ctx, p).unwrap();
        }
        assert_eq!(c.cached_blocks(), 2);
        assert_eq!(c.inner().frees.load(O::Relaxed), 1, "third free overflowed to inner");
        assert_eq!(c.metrics().snapshot().magazine_flushes(), 0, "relay: disabled handle");
    }

    #[test]
    fn flush_all_returns_parked_blocks_to_inner() {
        let c = Cached::new(CountingInner::new(1 << 20), 2);
        let ctx = ThreadCtx::host();
        let ptrs: Vec<_> = (0..5).map(|_| c.malloc(&ctx, 64).unwrap()).collect();
        for p in ptrs {
            c.free(&ctx, p).unwrap();
        }
        assert_eq!(c.cached_blocks(), 5);
        assert_eq!(c.flush_all(), 5);
        assert_eq!(c.cached_blocks(), 0);
        assert_eq!(c.inner().frees.load(O::Relaxed), 5, "every parked block reaches inner free");
    }

    #[test]
    fn drop_drains_magazines() {
        let inner = Arc::new(CountingInner::new(1 << 20));
        {
            let c = Cached::new(Arc::clone(&inner), 2);
            let ctx = ThreadCtx::host();
            let p = c.malloc(&ctx, 256).unwrap();
            c.free(&ctx, p).unwrap();
            assert_eq!(inner.frees.load(O::Relaxed), 0);
        }
        assert_eq!(inner.frees.load(O::Relaxed), 1, "drop must flush parked blocks");
    }

    #[test]
    fn warp_free_batches_unknown_pointers_to_inner() {
        let c = Cached::new(CountingInner::new(1 << 20), 2);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        // Pointers that never passed through the cache: one batched inner
        // publication, not a park.
        let ptrs = [DevicePtr::new(0), DevicePtr::new(64), DevicePtr::NULL];
        c.free_warp(&warp, &ptrs).unwrap();
        assert_eq!(c.inner().frees.load(O::Relaxed), 2);
        assert_eq!(c.cached_blocks(), 0);
    }

    #[test]
    fn warp_free_parks_known_pointers() {
        let c = Cached::new(CountingInner::new(1 << 20), 2);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let ctx = warp.leader();
        let a = c.malloc(&ctx, 48).unwrap();
        let b = c.malloc(&ctx, 48).unwrap();
        c.free_warp(&warp, &[a, b]).unwrap();
        assert_eq!(c.inner().frees.load(O::Relaxed), 0, "both parked, no inner call");
        assert_eq!(c.cached_blocks(), 2);
    }

    #[test]
    fn warp_malloc_serves_full_warp_from_magazines() {
        let c = Cached::new(CountingInner::new(1 << 20), 2);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let ctx = warp.leader();
        let a = c.malloc(&ctx, 32).unwrap();
        let b = c.malloc(&ctx, 32).unwrap();
        c.free_warp(&warp, &[a, b]).unwrap();
        let mallocs_before = c.inner().mallocs.load(O::Relaxed);
        let mut out = [DevicePtr::NULL; 2];
        c.malloc_warp(&warp, &[32, 32], &mut out).unwrap();
        assert!(!out[0].is_null() && !out[1].is_null());
        assert_eq!(c.inner().mallocs.load(O::Relaxed), mallocs_before, "all-hit warp");
    }

    #[test]
    fn warp_malloc_partial_rolls_back_and_delegates() {
        let c = Cached::new(CountingInner::new(1 << 20), 2);
        let warp = WarpCtx { warp: 0, block: 0, sm: 0 };
        let ctx = warp.leader();
        let a = c.malloc(&ctx, 32).unwrap();
        c.free(&ctx, a).unwrap();
        assert_eq!(c.cached_blocks(), 1);
        let mut out = [DevicePtr::NULL; 2];
        // Two lanes, one parked block: the warp must delegate whole.
        c.malloc_warp(&warp, &[32, 32], &mut out).unwrap();
        assert!(!out[0].is_null() && !out[1].is_null());
        assert_eq!(c.cached_blocks(), 1, "popped block rolled back on partial hit");
    }

    #[test]
    fn no_free_inner_disables_caching() {
        struct NoFree(CountingInner);
        impl DeviceAllocator for NoFree {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("NoFree").supports_free(false).build()
            }
            fn heap(&self) -> &DeviceHeap {
                self.0.heap()
            }
            fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                self.0.malloc(ctx, size)
            }
            fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
                Err(AllocError::Unsupported("free"))
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 4, free: 0 }
            }
        }
        let c = Cached::new(NoFree(CountingInner::new(1 << 20)), 2);
        assert!(!c.is_caching());
        let ctx = ThreadCtx::host();
        let p = c.malloc(&ctx, 64).unwrap();
        assert_eq!(c.free(&ctx, p), Err(AllocError::Unsupported("free")));
        assert_eq!(c.cached_blocks(), 0);
    }

    #[test]
    fn magazine_counters_flow_into_shared_metrics() {
        struct Metered {
            inner: CountingInner,
            m: Metrics,
        }
        impl DeviceAllocator for Metered {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("Metered").supports_free(true).build()
            }
            fn heap(&self) -> &DeviceHeap {
                self.inner.heap()
            }
            fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                self.m.tick(ctx.sm, Counter::MallocCalls);
                self.inner.malloc(ctx, size)
            }
            fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
                self.m.tick(ctx.sm, Counter::FreeCalls);
                self.inner.free(ctx, ptr)
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 4, free: 2 }
            }
            fn metrics(&self) -> Metrics {
                self.m.clone()
            }
        }
        let m = Metrics::enabled(4);
        let c = Cached::new(Metered { inner: CountingInner::new(1 << 20), m: m.clone() }, 4);
        let ctx = ThreadCtx::host();
        let p = c.malloc(&ctx, 64).unwrap(); // miss
        c.free(&ctx, p).unwrap(); // park (no inner free call)
        let _ = c.malloc(&ctx, 64).unwrap(); // hit
        let s = m.snapshot();
        assert_eq!(s.magazine_misses(), 1);
        assert_eq!(s.magazine_hits(), 1);
        assert_eq!(s.magazine_flushes(), 0);
        assert_eq!(s.malloc_calls(), 1, "hit bypasses inner call accounting");
        assert_eq!(s.free_calls(), 0, "parked free never reached inner");
        // Inner view of the identity stays consistent: 1 call, 1 live.
        assert_eq!(s.live(), 1);
    }
}

#[cfg(all(test, loom))]
mod loom_tests {
    use super::Magazine;
    use std::collections::HashSet;
    use std::sync::Arc;

    /// Concurrent pushes into one magazine: every accepted offset is
    /// popped exactly once afterwards, none lost, none duplicated.
    #[test]
    fn loom_magazine_concurrent_push_conserves_blocks() {
        crate::sync::model(|| {
            let m = Arc::new(Magazine::new(2));
            let handles: Vec<_> = [10u64, 20]
                .into_iter()
                .map(|v| {
                    let m = Arc::clone(&m);
                    crate::sync::thread::spawn(move || m.push(v).is_ok())
                })
                .collect();
            let accepted: usize = handles.into_iter().map(|h| h.join().unwrap() as usize).sum();
            let mut seen = HashSet::new();
            while let Some(v) = m.pop() {
                assert!(seen.insert(v), "duplicated block {v}");
                assert!(v == 10 || v == 20, "invented block {v}");
            }
            assert_eq!(seen.len(), accepted, "accepted pushes must all drain");
        });
    }

    /// A push racing a pop on a nearly-full magazine: the handoff spin
    /// never loses the in-flight block.
    #[test]
    fn loom_magazine_push_pop_handoff() {
        crate::sync::model(|| {
            let m = Arc::new(Magazine::new(1));
            m.push(7).unwrap();
            let pusher = {
                let m = Arc::clone(&m);
                crate::sync::thread::spawn(move || m.push(9).is_ok())
            };
            let popper = {
                let m = Arc::clone(&m);
                crate::sync::thread::spawn(move || m.pop())
            };
            let pushed = pusher.join().unwrap();
            let popped = popper.join().unwrap();
            let mut drained = Vec::new();
            while let Some(v) = m.pop() {
                drained.push(v);
            }
            let mut all: Vec<u64> = popped.into_iter().chain(drained).collect();
            all.sort_unstable();
            let mut expect = vec![7u64];
            if pushed {
                expect.push(9);
            }
            expect.sort_unstable();
            assert_eq!(all, expect, "multiset in == multiset out");
        });
    }

    /// A concurrent flush (pop-until-empty) against a pusher: conservation
    /// holds and the flusher never observes a phantom value.
    #[test]
    fn loom_magazine_flush_vs_push() {
        crate::sync::model(|| {
            let m = Arc::new(Magazine::new(2));
            m.push(1).unwrap();
            let pusher = {
                let m = Arc::clone(&m);
                crate::sync::thread::spawn(move || m.push(2).is_ok())
            };
            let flusher = {
                let m = Arc::clone(&m);
                crate::sync::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = m.pop() {
                        got.push(v);
                    }
                    got
                })
            };
            let pushed = pusher.join().unwrap();
            let mut all = flusher.join().unwrap();
            while let Some(v) = m.pop() {
                all.push(v);
            }
            all.sort_unstable();
            let mut expect = vec![1u64];
            if pushed {
                expect.push(2);
            }
            assert_eq!(all, expect);
        });
    }
}
