//! Thread and warp identity, the SIMT coordinates of an allocation request.
//!
//! The surveyed allocators are not oblivious to *who* is asking: ScatterAlloc
//! hashes the multiprocessor id into its page hash, Reg-Eff-CM/-CFM keep one
//! ring offset per SM, FDGMalloc keys its whole state on the warp, and
//! XMalloc/Halloc coalesce requests issued by the same warp. The simulated
//! executor (crate `gpu-sim`) fabricates these coordinates when it schedules
//! logical threads; benchmarks and tests may also construct them directly.

/// Number of lanes per warp — fixed at 32 on every NVIDIA architecture the
/// paper evaluates.
pub const WARP_SIZE: u32 = 32;

/// The identity of one simulated GPU thread at one point of execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThreadCtx {
    /// Global linear thread id (`blockIdx * blockDim + threadIdx` flattened).
    pub thread_id: u32,
    /// Lane within the warp, `0..WARP_SIZE`.
    pub lane: u32,
    /// Global warp id (`thread_id / WARP_SIZE`).
    pub warp: u32,
    /// Block id the thread belongs to.
    pub block: u32,
    /// Multiprocessor the warp is resident on. The executor assigns this;
    /// hash-scattering allocators consume it.
    pub sm: u32,
}

impl ThreadCtx {
    /// Builds a context from a flat thread id, assigning lane/warp ids and a
    /// round-robin SM placement — the layout the simulated executor uses.
    pub fn from_linear(thread_id: u32, block_size: u32, num_sms: u32) -> Self {
        debug_assert!(block_size > 0 && num_sms > 0);
        let warp = thread_id / WARP_SIZE;
        let block = thread_id / block_size;
        ThreadCtx {
            thread_id,
            lane: thread_id % WARP_SIZE,
            warp,
            block,
            // Warps of the same block stay on the same SM, blocks round-robin
            // over SMs — the same placement heuristic real hardware exhibits
            // for a saturating launch.
            sm: block % num_sms,
        }
    }

    /// A convenience context for host-side tests: thread 0 of warp 0 on SM 0.
    pub fn host() -> Self {
        ThreadCtx { thread_id: 0, lane: 0, warp: 0, block: 0, sm: 0 }
    }

    /// A deterministic per-thread hash, used by allocators that scatter by
    /// thread id (and by tests that need reproducible per-thread values).
    #[inline]
    pub fn scatter_hash(&self) -> u64 {
        crate::util::mix64(self.thread_id as u64 ^ ((self.sm as u64) << 32))
    }
}

/// The identity of a warp performing a *collective* operation.
///
/// Warp-level entry points ([`crate::DeviceAllocator::malloc_warp`]) receive
/// this instead of a single [`ThreadCtx`]; the allocator may assume all 32
/// lanes participate (warp-synchronous model, the pre-Volta behaviour the
/// paper compiles most managers for).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WarpCtx {
    /// Global warp id.
    pub warp: u32,
    /// Block the warp belongs to.
    pub block: u32,
    /// Multiprocessor the warp is resident on.
    pub sm: u32,
}

impl WarpCtx {
    /// The context of the warp's leader lane (lane 0) as a [`ThreadCtx`].
    pub fn leader(&self) -> ThreadCtx {
        ThreadCtx {
            thread_id: self.warp * WARP_SIZE,
            lane: 0,
            warp: self.warp,
            block: self.block,
            sm: self.sm,
        }
    }

    /// The context of an arbitrary lane of this warp.
    pub fn lane(&self, lane: u32) -> ThreadCtx {
        debug_assert!(lane < WARP_SIZE);
        ThreadCtx {
            thread_id: self.warp * WARP_SIZE + lane,
            lane,
            warp: self.warp,
            block: self.block,
            sm: self.sm,
        }
    }

    /// Builds the warp context that contains `ctx`.
    pub fn of(ctx: &ThreadCtx) -> Self {
        WarpCtx { warp: ctx.warp, block: ctx.block, sm: ctx.sm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_layout() {
        let c = ThreadCtx::from_linear(100, 256, 80);
        assert_eq!(c.thread_id, 100);
        assert_eq!(c.lane, 100 % 32);
        assert_eq!(c.warp, 100 / 32);
        assert_eq!(c.block, 0);
        assert_eq!(c.sm, 0);

        let c = ThreadCtx::from_linear(1000, 256, 80);
        assert_eq!(c.block, 3);
        assert_eq!(c.sm, 3);
    }

    #[test]
    fn sm_round_robin_wraps() {
        let c = ThreadCtx::from_linear(256 * 85, 256, 80);
        assert_eq!(c.block, 85);
        assert_eq!(c.sm, 5);
    }

    #[test]
    fn warp_lanes_cover_thread_ids() {
        let w = WarpCtx { warp: 7, block: 0, sm: 3 };
        assert_eq!(w.leader().thread_id, 7 * 32);
        assert_eq!(w.lane(31).thread_id, 7 * 32 + 31);
        assert_eq!(w.lane(31).sm, 3);
    }

    #[test]
    fn warp_of_thread() {
        let c = ThreadCtx::from_linear(1234, 128, 68);
        let w = WarpCtx::of(&c);
        assert_eq!(w.warp, c.warp);
        assert_eq!(w.sm, c.sm);
    }

    #[test]
    fn scatter_hash_differs_between_threads() {
        let a = ThreadCtx::from_linear(0, 256, 80).scatter_hash();
        let b = ThreadCtx::from_linear(1, 256, 80).scatter_hash();
        assert_ne!(a, b);
    }
}
