//! Event-tracing layer: per-SM ring-buffer trace recorder and its consumers.
//!
//! The [`Metrics`](crate::Metrics) counters (DESIGN.md §6) answer *how much*
//! contention a run saw; this module answers *when* and *where*. A
//! [`TraceRecorder`] collects a bounded stream of timestamped events —
//! allocation begin/end pairs with latency and CAS-retry payloads, frees,
//! OOM fallbacks, sanitizer violations, and warp/launch lifecycle markers
//! emitted by the executor — into fixed-capacity per-SM ring buffers. Three
//! consumers are derived from one recorded [`Trace`]:
//!
//! 1. [`OpLatencies`]: per-operation log2-bucketed latency histograms with
//!    p50/p95/p99 extraction ([`LatencyHistogram`]),
//! 2. [`occupancy_timeline`]: a heap-occupancy/fragmentation timeline that
//!    replays alloc/free events into live-byte counts and
//!    [`AddressRange`](crate::AddressRange) deltas over time,
//! 3. [`chrome_trace_json`]: a Chrome trace-event JSON exporter that loads
//!    directly in Perfetto (`ui.perfetto.dev`) or `chrome://tracing`, with
//!    one track per SM, async spans for allocation lifetimes, and counter
//!    tracks for heap occupancy and CAS-retry rate.
//!
//! # Recording discipline
//!
//! The recorder follows the same zero-cost-when-disabled discipline as
//! `Metrics`: tracing is enabled by *attaching* a recorder to a `Metrics`
//! handle ([`Metrics::with_tracer`](crate::Metrics::with_tracer)) and
//! wrapping the allocator in [`Traced`]; an unattached handle costs the one
//! `Option` branch the counters already pay, and a default-built manager
//! records zero events.
//!
//! Each shard is a fixed-capacity array of 6-word slots. A writer claims a
//! slot with one `fetch_add` on the shard's `claimed` cursor; claims past
//! capacity increment a `dropped` counter and write nothing, so memory stays
//! bounded and loss is observable (drop-newest). Slot words are plain
//! atomics written `Relaxed`; the writer then publishes with a `Release`
//! `fetch_add` on `committed`. Because read-modify-writes continue each
//! other's release sequences, a reader's `Acquire` load of the final
//! `committed` value synchronises with *every* writer, making all committed
//! slot payloads visible. [`TraceRecorder::snapshot`] is intended for
//! quiescent points (after a launch returns); it tolerates a mid-flight
//! writer by bounded spinning and skipping slots whose tag word is still
//! zero.

use crate::ctx::{ThreadCtx, WarpCtx};
use crate::error::AllocError;
use crate::frag::AddressRange;
use crate::heap::DeviceHeap;
use crate::info::ManagerInfo;
use crate::metrics::Metrics;
use crate::ptr::DevicePtr;
use crate::regs::RegisterFootprint;
use crate::sync::{AtomicU64, Ordering};
use crate::traits::DeviceAllocator;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// Default ring capacity per SM shard, in events.
///
/// At 48 bytes per slot this bounds an 80-SM recorder to ~31 MiB. A
/// contention run of 10 000 threads emits 4 events per thread (two
/// begin/end pairs) spread over the SMs the threads land on, so the default
/// holds a full default-scale run without drops.
pub const DEFAULT_EVENTS_PER_SM: usize = 8192;

/// Number of log2 latency buckets — covers 1 ns ..= `u64::MAX` ns.
pub const LATENCY_BUCKETS: usize = 64;

/// What happened, encoded in the slot tag word. Payload word semantics are
/// listed per variant; unused words are zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum EventKind {
    /// An allocation request entered the manager.
    /// `args = [requested_bytes, thread_id, 0, 0]` (warp-collective calls
    /// report the leader's thread id and the warp's total bytes).
    MallocBegin = 0,
    /// An allocation request returned.
    /// `args = [ptr_raw (u64::MAX on failure), size_bytes, latency_ns,
    /// cas_retries]`. Warp-collective calls emit one `MallocEnd` per lane,
    /// each carrying the collective latency; retries are attributed to the
    /// first lane only so sums stay correct.
    MallocEnd = 1,
    /// A free request entered the manager.
    /// `args = [ptr_raw (u64::MAX for collective frees), thread_id,
    /// lane_count, 0]`.
    FreeBegin = 2,
    /// A free request returned.
    /// `args = [ptr_raw, latency_ns, cas_retries, ok (1 = freed)]`.
    /// `ptr_raw == u64::MAX` marks a warp-collective bulk free
    /// (`free_warp_all`) whose individual pointers the manager never
    /// exposes.
    FreeEnd = 3,
    /// The manager fell back past its own heap (e.g. Halloc's CUDA
    /// fallback). `args = [count, 0, 0, 0]`.
    OomFallback = 4,
    /// The shadow-heap sanitizer recorded a violation.
    /// `args = [violation_kind, offset, size, 0]`.
    SanitizerViolation = 5,
    /// The executor handed a warp to a worker. `args = [warp_id, launch_id,
    /// 0, 0]`.
    WarpDispatched = 6,
    /// A warp finished its body. `args = [warp_id, launch_id, 0, 0]`.
    WarpRetired = 7,
    /// An observed launch started. `args = [launch_id, n_threads, n_warps,
    /// 0]`; recorded on shard 0.
    LaunchBegin = 8,
    /// An observed launch completed. `args = [launch_id, elapsed_ns, 0,
    /// 0]`; recorded on shard 0.
    LaunchEnd = 9,
    /// A [`Cached`](crate::cache::Cached) magazine served an allocation
    /// without touching the inner allocator.
    /// `args = [ptr_raw_or_lane_count, class_size, 0, warp (1 = collective)]`.
    CacheHit = 10,
    /// A `Cached` magazine evicted or drained parked blocks back to the
    /// inner allocator. `args = [count, class_size, 0, warp]`.
    CacheFlush = 11,
}

/// Number of event kinds.
pub const EVENT_KINDS: usize = 12;

/// All event kinds, in tag order.
pub const ALL_EVENT_KINDS: [EventKind; EVENT_KINDS] = [
    EventKind::MallocBegin,
    EventKind::MallocEnd,
    EventKind::FreeBegin,
    EventKind::FreeEnd,
    EventKind::OomFallback,
    EventKind::SanitizerViolation,
    EventKind::WarpDispatched,
    EventKind::WarpRetired,
    EventKind::LaunchBegin,
    EventKind::LaunchEnd,
    EventKind::CacheHit,
    EventKind::CacheFlush,
];

impl EventKind {
    /// Stable snake_case name (used in exports and reports).
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::MallocBegin => "malloc_begin",
            EventKind::MallocEnd => "malloc_end",
            EventKind::FreeBegin => "free_begin",
            EventKind::FreeEnd => "free_end",
            EventKind::OomFallback => "oom_fallback",
            EventKind::SanitizerViolation => "sanitizer_violation",
            EventKind::WarpDispatched => "warp_dispatched",
            EventKind::WarpRetired => "warp_retired",
            EventKind::LaunchBegin => "launch_begin",
            EventKind::LaunchEnd => "launch_end",
            EventKind::CacheHit => "cache_hit",
            EventKind::CacheFlush => "cache_flush",
        }
    }

    fn from_tag(tag: u32) -> Option<EventKind> {
        // Tag 0 is reserved for "slot not yet written" so a torn snapshot
        // can never mistake an unpublished slot for a real event; on-wire
        // tags are therefore discriminant + 1.
        match tag {
            1 => Some(EventKind::MallocBegin),
            2 => Some(EventKind::MallocEnd),
            3 => Some(EventKind::FreeBegin),
            4 => Some(EventKind::FreeEnd),
            5 => Some(EventKind::OomFallback),
            6 => Some(EventKind::SanitizerViolation),
            7 => Some(EventKind::WarpDispatched),
            8 => Some(EventKind::WarpRetired),
            9 => Some(EventKind::LaunchBegin),
            10 => Some(EventKind::LaunchEnd),
            11 => Some(EventKind::CacheHit),
            12 => Some(EventKind::CacheFlush),
            _ => None,
        }
    }

    const fn tag(self) -> u64 {
        self as u64 + 1
    }
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the recorder's epoch (its construction time).
    pub ts_ns: u64,
    /// Event kind; see [`EventKind`] for payload semantics.
    pub kind: EventKind,
    /// SM shard the event was recorded on.
    pub sm: u32,
    /// Kind-specific payload words.
    pub args: [u64; 4],
}

const SLOT_WORDS: usize = 6;

/// One fixed slot: `[ts, tag<<32|sm, a0, a1, a2, a3]`.
struct Slot {
    words: [AtomicU64; SLOT_WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn decode(&self) -> Option<TraceEvent> {
        // The meta word is the publication point: the writer stores it last
        // with Release, so once a valid tag is visible here, this Acquire
        // load synchronizes-with that store and every other word of the
        // slot is visible. An unpublished slot shows the reserved zero tag.
        let meta = self.words[1].load(Ordering::Acquire);
        let kind = EventKind::from_tag((meta >> 32) as u32)?;
        let ts = self.words[0].load(Ordering::Relaxed);
        Some(TraceEvent {
            ts_ns: ts,
            kind,
            sm: meta as u32,
            args: [
                self.words[2].load(Ordering::Relaxed),
                self.words[3].load(Ordering::Relaxed),
                self.words[4].load(Ordering::Relaxed),
                self.words[5].load(Ordering::Relaxed),
            ],
        })
    }
}

/// One per-SM ring shard. The cursors live on their own cache line so two
/// SMs' claim traffic does not false-share (same layout rationale as the
/// counter shards in `metrics`).
#[repr(align(128))]
struct TraceShard {
    /// Slots ever claimed on this shard (monotonic; may exceed capacity).
    claimed: AtomicU64,
    /// Slots fully written and published.
    committed: AtomicU64,
    /// Claims that found the ring full and were discarded (drop-newest).
    dropped: AtomicU64,
    slots: Box<[Slot]>,
}

impl TraceShard {
    fn new(capacity: usize) -> Self {
        TraceShard {
            claimed: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }
}

/// Lock-free, fixed-capacity, per-SM trace recorder.
///
/// Writers on any thread call [`TraceRecorder::emit`]; the cost per event is
/// one `fetch_add`, five `Relaxed` stores and one `Release` `fetch_add`.
/// When a shard fills, further events on it are counted in
/// [`TraceRecorder::dropped`] and discarded — memory stays bounded at
/// `shards × events_per_sm × 48` bytes no matter how long the run.
pub struct TraceRecorder {
    shards: Box<[TraceShard]>,
    /// Per-shard slot capacity.
    capacity: usize,
    epoch: Instant,
    next_launch: AtomicU64,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("shards", &self.shards.len())
            .field("events_per_sm", &self.capacity)
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl TraceRecorder {
    /// A recorder with one ring of `events_per_sm` slots per SM shard.
    /// The shard count is rounded up to a power of two (minimum 1) so SM ids
    /// beyond the configured count fold in with a mask, mirroring
    /// `AllocCounters`.
    pub fn new(num_sms: u32, events_per_sm: usize) -> Self {
        let shards = (num_sms.max(1) as usize).next_power_of_two();
        let capacity = events_per_sm.max(1);
        TraceRecorder {
            shards: (0..shards).map(|_| TraceShard::new(capacity)).collect(),
            capacity,
            epoch: Instant::now(),
            next_launch: AtomicU64::new(0),
        }
    }

    /// A recorder with [`DEFAULT_EVENTS_PER_SM`] slots per shard.
    pub fn with_default_capacity(num_sms: u32) -> Self {
        TraceRecorder::new(num_sms, DEFAULT_EVENTS_PER_SM)
    }

    /// Per-shard slot capacity.
    pub fn events_per_sm(&self) -> usize {
        self.capacity
    }

    /// Nanoseconds elapsed since this recorder was constructed. All event
    /// timestamps share this epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Hands out monotonically increasing launch ids for
    /// [`EventKind::LaunchBegin`]/[`EventKind::LaunchEnd`] pairs.
    pub fn next_launch_id(&self) -> u64 {
        self.next_launch.fetch_add(1, Ordering::Relaxed)
    }

    /// Records an event timestamped now.
    #[inline]
    pub fn emit(&self, sm: u32, kind: EventKind, args: [u64; 4]) {
        self.emit_at(self.now_ns(), sm, kind, args);
    }

    /// Records an event with an explicit timestamp (callers that time an
    /// operation themselves pass the operation's start or end instant).
    pub fn emit_at(&self, ts_ns: u64, sm: u32, kind: EventKind, args: [u64; 4]) {
        let shard = &self.shards[sm as usize & (self.shards.len() - 1)];
        let idx = shard.claimed.fetch_add(1, Ordering::Relaxed);
        if idx >= self.capacity as u64 {
            shard.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let slot = &shard.slots[idx as usize];
        // The claim above made `idx` exclusively ours, so these Relaxed
        // stores race with nothing. The meta word (timestamp-independent
        // nonzero tag) is stored last with Release: it is the slot's own
        // publication point, so a reader that sees the tag sees the whole
        // slot. Commits on neighboring slots can land in any order, which
        // is why publication must be per-slot, not via the `committed`
        // counter (that counter only sizes `recorded()` and bounds the
        // snapshot's completeness spin).
        slot.words[0].store(ts_ns, Ordering::Relaxed);
        slot.words[2].store(args[0], Ordering::Relaxed);
        slot.words[3].store(args[1], Ordering::Relaxed);
        slot.words[4].store(args[2], Ordering::Relaxed);
        slot.words[5].store(args[3], Ordering::Relaxed);
        slot.words[1].store((kind.tag() << 32) | sm as u64, Ordering::Release);
        shard.committed.fetch_add(1, Ordering::Release);
    }

    /// Total events recorded (committed) across all shards.
    pub fn recorded(&self) -> u64 {
        self.shards.iter().map(|s| s.committed.load(Ordering::Acquire)).sum()
    }

    /// Total events discarded because their shard was full.
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Decodes every committed event into a time-sorted [`Trace`].
    ///
    /// Meant for quiescent points (after the traced launches return). If a
    /// writer is caught between claim and commit the snapshot spins briefly,
    /// then reads what is published; a still-unwritten slot decodes to the
    /// reserved zero tag and is skipped rather than misread.
    pub fn snapshot(&self) -> Trace {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for shard in self.shards.iter() {
            let claims = shard.claimed.load(Ordering::Acquire).min(self.capacity as u64);
            // Loom explores each spin iteration as a branch; keep the bound
            // tight there and generous on real hardware.
            let spin_bound: u32 = if cfg!(loom) { 100 } else { 1_000_000 };
            let mut spins = 0u32;
            while shard.committed.load(Ordering::Acquire) < claims {
                crate::sync::hint::spin_loop();
                spins += 1;
                if spins > spin_bound {
                    break;
                }
            }
            // Walk the claimed prefix, not the committed count: commits can
            // land out of claim order (slot 1's writer may finish before
            // slot 0's), so the count says how many slots are published but
            // not which. Each slot carries its own publication tag; a
            // still-unwritten one decodes to the reserved zero tag and is
            // skipped rather than misread.
            for slot in shard.slots[..claims as usize].iter() {
                if let Some(ev) = slot.decode() {
                    events.push(ev);
                }
            }
            dropped += shard.dropped.load(Ordering::Relaxed);
        }
        events.sort_by_key(|e| (e.ts_ns, e.sm));
        Trace { events, dropped, events_per_sm: self.capacity }
    }

    /// Incrementally decodes events committed since the last call with the
    /// same cursor vector, returning each event exactly once across calls.
    ///
    /// The rings are drop-newest — a claimed slot is never recycled — so a
    /// per-shard index over the published prefix is an exact cursor, not a
    /// heuristic. Each call consumes the *contiguous* published prefix: a
    /// slot still between claim and commit stops this shard's walk (after
    /// the same bounded spin [`TraceRecorder::snapshot`] uses) and is
    /// picked up by the next call instead of being skipped or re-read.
    ///
    /// This is the telemetry sampler's drain path: at kHz cadences a full
    /// [`TraceRecorder::snapshot`] per window re-decodes the entire ring
    /// (`capacity × num_sms` slots) every time, which is what dominated
    /// the sampler's measured overhead before this path existed.
    pub fn snapshot_since(&self, cursors: &mut Vec<u64>) -> Trace {
        cursors.resize(self.shards.len(), 0);
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for (shard, cursor) in self.shards.iter().zip(cursors.iter_mut()) {
            let claims = shard.claimed.load(Ordering::Acquire).min(self.capacity as u64);
            let spin_bound: u32 = if cfg!(loom) { 100 } else { 1_000_000 };
            let mut spins = 0u32;
            while shard.committed.load(Ordering::Acquire) < claims {
                crate::sync::hint::spin_loop();
                spins += 1;
                if spins > spin_bound {
                    break;
                }
            }
            let start = (*cursor).min(claims) as usize;
            let mut consumed = claims as usize;
            for i in start..claims as usize {
                match shard.slots[i].decode() {
                    Some(ev) => events.push(ev),
                    None => {
                        consumed = i;
                        break;
                    }
                }
            }
            *cursor = consumed as u64;
            dropped += shard.dropped.load(Ordering::Relaxed);
        }
        events.sort_by_key(|e| (e.ts_ns, e.sm));
        Trace { events, dropped, events_per_sm: self.capacity }
    }
}

// Per-thread scope stack bridging `Metrics::record_retries` (called from
// inside the managers, which know nothing about tracing) to the `Traced`
// wrapper timing the enclosing operation on the same thread. Kernel bodies
// run entirely on one worker thread, so begin/accumulate/drain never cross
// threads.
//
// A *stack* (not a single cell) because decorators nest: in
// `Traced<Cached<Traced<A>>>` the outer wrapper's operation encloses the
// inner wrapper's. Each `Traced` entry point pushes a fresh frame before
// calling inward and pops it when the call returns, so retries noted by a
// layer land in the innermost open frame — the operation of the layer that
// caused them — and are neither double-counted by the outer record nor
// stolen from it when an inner wrapper begins.
thread_local! {
    static OP_RETRIES: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Adds `n` CAS retries to the innermost in-flight traced operation on this
/// thread. Called by `Metrics::record_retries` when a tracer is attached;
/// a no-op when no traced operation is open (nothing to attribute to).
#[inline]
pub(crate) fn note_op_retries(n: u64) {
    OP_RETRIES.with(|c| {
        if let Some(top) = c.borrow_mut().last_mut() {
            *top = top.saturating_add(n);
        }
    });
}

/// Opens a retry-attribution frame for one traced operation.
fn begin_op_scope() {
    OP_RETRIES.with(|c| c.borrow_mut().push(0));
}

/// Closes the innermost frame, returning the retries noted while it was
/// open (excluding those captured by deeper frames).
fn end_op_scope() -> u64 {
    OP_RETRIES.with(|c| c.borrow_mut().pop().unwrap_or(0))
}

/// [`DeviceAllocator`] wrapper that records `MallocBegin/End` and
/// `FreeBegin/End` events (with latency and CAS-retry payloads) around every
/// entry point of the wrapped manager.
///
/// Mirrors the `Sanitized` wrapper: apply it at construction time (the
/// builder's `.trace(true)` does this) and every manager gets tracing
/// without per-crate changes. The wrapped manager's `Metrics` handle must
/// carry the same recorder (`Metrics::with_tracer`) for retry payloads and
/// `OomFallback` events to land in the same trace.
pub struct Traced<A> {
    inner: A,
    rec: Arc<TraceRecorder>,
}

impl<A: DeviceAllocator> Traced<A> {
    /// Wraps `inner`, recording into `rec`.
    pub fn new(inner: A, rec: Arc<TraceRecorder>) -> Self {
        Traced { inner, rec }
    }

    /// The recorder events land in.
    pub fn recorder(&self) -> &Arc<TraceRecorder> {
        &self.rec
    }

    /// Unwraps the inner manager.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<A: DeviceAllocator> DeviceAllocator for Traced<A> {
    fn info(&self) -> ManagerInfo {
        self.inner.info()
    }

    fn heap(&self) -> &DeviceHeap {
        self.inner.heap()
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let t0 = self.rec.now_ns();
        self.rec.emit_at(t0, ctx.sm, EventKind::MallocBegin, [size, ctx.thread_id as u64, 0, 0]);
        begin_op_scope();
        let r = self.inner.malloc(ctx, size);
        let retries = end_op_scope();
        let t1 = self.rec.now_ns();
        let ptr = match &r {
            Ok(p) => p.raw(),
            Err(_) => u64::MAX,
        };
        // Clamp to 1 ns: the operation took nonzero time even when the
        // clock's granularity says otherwise.
        self.rec.emit_at(t1, ctx.sm, EventKind::MallocEnd, [ptr, size, (t1 - t0).max(1), retries]);
        r
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        let t0 = self.rec.now_ns();
        self.rec.emit_at(t0, ctx.sm, EventKind::FreeBegin, [ptr.raw(), ctx.thread_id as u64, 1, 0]);
        begin_op_scope();
        let r = self.inner.free(ctx, ptr);
        let retries = end_op_scope();
        let t1 = self.rec.now_ns();
        self.rec.emit_at(
            t1,
            ctx.sm,
            EventKind::FreeEnd,
            [ptr.raw(), (t1 - t0).max(1), retries, r.is_ok() as u64],
        );
        r
    }

    fn malloc_warp(
        &self,
        warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        let total: u64 = sizes.iter().sum();
        let leader = warp.leader();
        let t0 = self.rec.now_ns();
        self.rec.emit_at(
            t0,
            warp.sm,
            EventKind::MallocBegin,
            [total, leader.thread_id as u64, 0, 0],
        );
        begin_op_scope();
        let r = self.inner.malloc_warp(warp, sizes, out);
        let retries = end_op_scope();
        let t1 = self.rec.now_ns();
        let latency = (t1 - t0).max(1);
        match &r {
            Ok(()) => {
                for (i, (&size, ptr)) in sizes.iter().zip(out.iter()).enumerate() {
                    let lane_retries = if i == 0 { retries } else { 0 };
                    self.rec.emit_at(
                        t1,
                        warp.sm,
                        EventKind::MallocEnd,
                        [ptr.raw(), size, latency, lane_retries],
                    );
                }
            }
            Err(_) => {
                self.rec.emit_at(
                    t1,
                    warp.sm,
                    EventKind::MallocEnd,
                    [u64::MAX, total, latency, retries],
                );
            }
        }
        r
    }

    fn free_warp(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        let live = ptrs.iter().filter(|p| !p.is_null()).count() as u64;
        let leader = warp.leader();
        let t0 = self.rec.now_ns();
        self.rec.emit_at(
            t0,
            warp.sm,
            EventKind::FreeBegin,
            [u64::MAX, leader.thread_id as u64, live, 0],
        );
        begin_op_scope();
        let r = self.inner.free_warp(warp, ptrs);
        let retries = end_op_scope();
        let t1 = self.rec.now_ns();
        let latency = (t1 - t0).max(1);
        // `ok` reflects the collective result: `free_warp` reports only the
        // first error, so on Err the occupancy replay conservatively keeps
        // all lanes live.
        let ok = r.is_ok() as u64;
        for (i, ptr) in ptrs.iter().filter(|p| !p.is_null()).enumerate() {
            let lane_retries = if i == 0 { retries } else { 0 };
            self.rec.emit_at(
                t1,
                warp.sm,
                EventKind::FreeEnd,
                [ptr.raw(), latency, lane_retries, ok],
            );
        }
        r
    }

    fn free_warp_all(&self, warp: &WarpCtx) -> Result<(), AllocError> {
        let leader = warp.leader();
        let t0 = self.rec.now_ns();
        self.rec.emit_at(
            t0,
            warp.sm,
            EventKind::FreeBegin,
            [u64::MAX, leader.thread_id as u64, 0, 0],
        );
        begin_op_scope();
        let r = self.inner.free_warp_all(warp);
        let retries = end_op_scope();
        let t1 = self.rec.now_ns();
        // Bulk free: the individual pointers are the manager's private
        // state, so the event carries the null sentinel and the occupancy
        // replay leaves these allocations in place (documented limitation
        // for FDGMalloc-style tidy-up).
        self.rec.emit_at(
            t1,
            warp.sm,
            EventKind::FreeEnd,
            [u64::MAX, (t1 - t0).max(1), retries, r.is_ok() as u64],
        );
        r
    }

    fn register_footprint(&self) -> RegisterFootprint {
        self.inner.register_footprint()
    }

    fn grow(&self, bytes: u64) -> Result<(), AllocError> {
        self.inner.grow(bytes)
    }

    fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    fn drain(&self) -> u64 {
        // Forwarded without events of its own: the inner drain's frees run
        // through the inner allocator directly (they are magazine
        // publications, not caller-visible free calls), so there is no
        // begin/end pair to record at this layer.
        self.inner.drain()
    }
}

/// A decoded, time-sorted snapshot of a recorder's contents.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Committed events, sorted by timestamp.
    pub events: Vec<TraceEvent>,
    /// Events discarded because a shard was full.
    pub dropped: u64,
    /// The recorder's per-shard capacity (for drop-rate context).
    pub events_per_sm: usize,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events of `kind`.
    pub fn count(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Wall-clock span covered, first event to last, in nanoseconds.
    pub fn span_ns(&self) -> u64 {
        match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.ts_ns - a.ts_ns,
            _ => 0,
        }
    }
}

/// Log2-bucketed latency histogram with percentile extraction.
///
/// Bucket `k` holds samples whose nanosecond latency has its highest set
/// bit at position `k`, i.e. the range `[2^k, 2^(k+1))` (bucket 0 also
/// holds 0 ns, which the recording path clamps away). Percentiles report
/// the *upper bound* of the bucket the requested rank falls in, capped at
/// the exact observed maximum — pessimistic by at most 2×, never zero for a
/// non-empty histogram.
#[derive(Clone, Copy)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; LATENCY_BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean_ns())
            .field("p50_ns", &self.p50())
            .field("p95_ns", &self.p95())
            .field("p99_ns", &self.p99())
            .field("max_ns", &self.max_ns)
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Arithmetic mean in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Latency at percentile `p` (0 < p <= 100), as the upper bound of the
    /// bucket containing that rank, capped at the observed maximum. Returns
    /// 0 only for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                let upper = if k >= 63 { u64::MAX } else { (1u64 << (k + 1)) - 1 };
                return upper.min(self.max_ns).max(1);
            }
        }
        self.max_ns.max(1)
    }

    /// Median latency (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 95th-percentile latency (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// 99th-percentile latency (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-operation latency histograms extracted from a trace.
#[derive(Clone, Debug, Default)]
pub struct OpLatencies {
    /// Latency of `malloc`/`malloc_warp` operations (per lane for
    /// collective calls).
    pub malloc: LatencyHistogram,
    /// Latency of `free`/`free_warp`/`free_warp_all` operations.
    pub free: LatencyHistogram,
}

impl OpLatencies {
    /// Builds the histograms from every `MallocEnd`/`FreeEnd` event in the
    /// trace (failed mallocs included — a refusal takes time too).
    pub fn from_trace(trace: &Trace) -> Self {
        let mut out = OpLatencies::default();
        for e in &trace.events {
            match e.kind {
                EventKind::MallocEnd => out.malloc.record(e.args[2]),
                EventKind::FreeEnd => out.free.record(e.args[1]),
                _ => {}
            }
        }
        out
    }
}

/// One point of the heap-occupancy timeline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OccupancySample {
    /// Timestamp of the alloc/free event that produced this sample.
    pub ts_ns: u64,
    /// Bytes live (allocated, not yet freed) at this instant.
    pub live_bytes: u64,
    /// Allocations live at this instant.
    pub live_allocs: u64,
    /// Span of the cumulative touched address range, in bytes
    /// ([`AddressRange::range`]): how far apart the manager has scattered
    /// its placements so far.
    pub range_span: u64,
}

/// The heap-occupancy/fragmentation timeline replayed from a trace.
#[derive(Clone, Debug, Default)]
pub struct OccupancyTimeline {
    /// Samples in time order, decimated to the requested maximum.
    pub samples: Vec<OccupancySample>,
    /// Peak live bytes over the run.
    pub peak_live_bytes: u64,
    /// Peak live allocation count over the run.
    pub peak_live_allocs: u64,
    /// Cumulative address range touched by all successful allocations.
    pub address_range: AddressRange,
    /// `FreeEnd` events whose pointer the replay never saw allocated
    /// (collective bulk frees, or `MallocEnd` events lost to ring drops).
    pub unmatched_frees: u64,
}

/// Replays the trace's alloc/free events into a heap-occupancy timeline:
/// live bytes, live allocation count and the cumulative
/// [`AddressRange`](crate::AddressRange) after every event, decimated to at
/// most `max_samples` points (the final state is always kept).
pub fn occupancy_timeline(trace: &Trace, max_samples: usize) -> OccupancyTimeline {
    let mut live: HashMap<u64, u64> = HashMap::new();
    let mut range = AddressRange::new();
    let mut out = OccupancyTimeline::default();
    let mut live_bytes = 0u64;
    let mut raw: Vec<OccupancySample> = Vec::new();
    for e in &trace.events {
        match e.kind {
            EventKind::MallocEnd if e.args[0] != u64::MAX => {
                let (ptr, size) = (e.args[0], e.args[1]);
                if live.insert(ptr, size).is_none() {
                    live_bytes += size;
                }
                range.record(DevicePtr::new(ptr), size);
            }
            EventKind::FreeEnd if e.args[0] != u64::MAX && e.args[3] == 1 => {
                match live.remove(&e.args[0]) {
                    Some(size) => live_bytes -= size,
                    None => out.unmatched_frees += 1,
                }
            }
            _ => continue,
        }
        let sample = OccupancySample {
            ts_ns: e.ts_ns,
            live_bytes,
            live_allocs: live.len() as u64,
            range_span: range.range(),
        };
        out.peak_live_bytes = out.peak_live_bytes.max(live_bytes);
        out.peak_live_allocs = out.peak_live_allocs.max(live.len() as u64);
        raw.push(sample);
    }
    out.address_range = range;
    out.samples = decimate(raw, max_samples);
    out
}

/// Keeps at most `max` evenly strided samples, always including the last.
fn decimate(raw: Vec<OccupancySample>, max: usize) -> Vec<OccupancySample> {
    let max = max.max(2);
    if raw.len() <= max {
        return raw;
    }
    let stride = raw.len().div_ceil(max);
    let last = *raw.last().expect("non-empty: len > max >= 2");
    let mut out: Vec<OccupancySample> = raw.into_iter().step_by(stride).collect();
    if out.last() != Some(&last) {
        out.push(last);
    }
    out
}

/// Maximum number of counter samples [`chrome_trace_json`] emits per
/// counter track, to keep exported files tractable.
const EXPORT_COUNTER_SAMPLES: usize = 1024;

/// Number of bins for the exported CAS-retry-rate counter track.
const EXPORT_RETRY_BINS: usize = 256;

/// Synthetic Chrome-trace thread id for the launch-lifecycle track (real SM
/// tracks use the SM id, which is far below this).
const LAUNCH_TRACK_TID: u32 = 1_000_000;

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Microseconds with sub-µs precision, the unit Chrome trace `ts`/`dur`
/// fields use.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Exports the trace as Chrome trace-event JSON (the "JSON array format"),
/// loadable in Perfetto (`ui.perfetto.dev`) and `chrome://tracing`.
///
/// Layout: one thread track per SM carrying complete (`"X"`) slices for
/// malloc/free operations and warp residency, a separate track for launch
/// spans, async (`"b"`/`"e"`) spans tying each successful allocation to its
/// free, and counter (`"C"`) tracks for live heap bytes, live allocation
/// count and CAS-retry rate. Instant (`"i"`) events mark OOM fallbacks and
/// sanitizer violations. Every event carries `ph`/`ts`/`pid`/`tid`.
pub fn chrome_trace_json(trace: &Trace, label: &str) -> String {
    let mut out = String::with_capacity(trace.events.len() * 128 + 1024);
    out.push_str("[\n");
    let mut first = true;
    let mut push = |line: String| {
        // Delimiting here keeps every emitter below a plain `push`.
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
        out.push(' ');
        out.push_str(&line);
    };

    push(format!(
        "{{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"gpumemsurvey trace: {}\"}}}}",
        json_escape(label)
    ));

    let mut sms: Vec<u32> = trace.events.iter().map(|e| e.sm).collect();
    sms.sort_unstable();
    sms.dedup();
    for &sm in &sms {
        push(format!(
            "{{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{sm},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"SM {sm}\"}}}}"
        ));
        push(format!(
            "{{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{sm},\"name\":\"thread_sort_index\",\
             \"args\":{{\"sort_index\":{sm}}}}}"
        ));
    }
    push(format!(
        "{{\"ph\":\"M\",\"ts\":0,\"pid\":0,\"tid\":{LAUNCH_TRACK_TID},\"name\":\"thread_name\",\
         \"args\":{{\"name\":\"launches\"}}}}"
    ));

    // Open warp-dispatch and launch-begin events waiting for their close.
    let mut open_warps: HashMap<(u64, u64), u64> = HashMap::new();
    let mut open_launches: HashMap<u64, u64> = HashMap::new();
    // Successful allocations still live, for async alloc-lifetime spans:
    // ptr -> begin ts.
    let mut open_allocs: HashMap<u64, u64> = HashMap::new();

    for e in &trace.events {
        let sm = e.sm;
        match e.kind {
            EventKind::MallocEnd => {
                let latency = e.args[2];
                let start = e.ts_ns.saturating_sub(latency);
                let ok = e.args[0] != u64::MAX;
                push(format!(
                    "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{sm},\
                     \"cat\":\"malloc\",\"name\":\"{}\",\"args\":{{\"size\":{},\
                     \"retries\":{},\"ptr\":{}}}}}",
                    us(start),
                    us(latency),
                    if ok { "malloc" } else { "malloc (failed)" },
                    e.args[1],
                    e.args[3],
                    e.args[0]
                ));
                if ok && !open_allocs.contains_key(&e.args[0]) {
                    open_allocs.insert(e.args[0], e.ts_ns);
                    push(format!(
                        "{{\"ph\":\"b\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"cat\":\"alloc\",\
                         \"name\":\"allocation\",\"id\":\"{:#x}\",\
                         \"args\":{{\"size\":{}}}}}",
                        us(e.ts_ns),
                        e.args[0],
                        e.args[1]
                    ));
                }
            }
            EventKind::FreeEnd => {
                let latency = e.args[1];
                let start = e.ts_ns.saturating_sub(latency);
                push(format!(
                    "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{sm},\
                     \"cat\":\"free\",\"name\":\"free\",\"args\":{{\"ptr\":{},\
                     \"retries\":{},\"ok\":{}}}}}",
                    us(start),
                    us(latency),
                    e.args[0],
                    e.args[2],
                    e.args[3]
                ));
                if e.args[0] != u64::MAX
                    && e.args[3] == 1
                    && open_allocs.remove(&e.args[0]).is_some()
                {
                    push(format!(
                        "{{\"ph\":\"e\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"cat\":\"alloc\",\
                         \"name\":\"allocation\",\"id\":\"{:#x}\"}}",
                        us(e.ts_ns),
                        e.args[0]
                    ));
                }
            }
            EventKind::WarpDispatched => {
                open_warps.insert((e.args[1], e.args[0]), e.ts_ns);
            }
            EventKind::WarpRetired => {
                if let Some(t0) = open_warps.remove(&(e.args[1], e.args[0])) {
                    push(format!(
                        "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{sm},\
                         \"cat\":\"warp\",\"name\":\"warp {}\",\
                         \"args\":{{\"launch\":{}}}}}",
                        us(t0),
                        us(e.ts_ns.saturating_sub(t0)),
                        e.args[0],
                        e.args[1]
                    ));
                }
            }
            EventKind::LaunchBegin => {
                open_launches.insert(e.args[0], e.ts_ns);
            }
            EventKind::LaunchEnd => {
                if let Some(t0) = open_launches.remove(&e.args[0]) {
                    push(format!(
                        "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\
                         \"tid\":{LAUNCH_TRACK_TID},\"cat\":\"launch\",\
                         \"name\":\"launch {}\",\"args\":{{\"elapsed_ns\":{}}}}}",
                        us(t0),
                        us(e.ts_ns.saturating_sub(t0)),
                        e.args[0],
                        e.args[1]
                    ));
                }
            }
            EventKind::OomFallback => {
                push(format!(
                    "{{\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"s\":\"t\",\
                     \"cat\":\"oom\",\"name\":\"oom_fallback\",\"args\":{{\"count\":{}}}}}",
                    us(e.ts_ns),
                    e.args[0]
                ));
            }
            EventKind::SanitizerViolation => {
                push(format!(
                    "{{\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"s\":\"t\",\
                     \"cat\":\"sanitizer\",\"name\":\"violation\",\
                     \"args\":{{\"kind\":{},\"offset\":{},\"size\":{}}}}}",
                    us(e.ts_ns),
                    e.args[0],
                    e.args[1],
                    e.args[2]
                ));
            }
            EventKind::CacheHit => {
                push(format!(
                    "{{\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"s\":\"t\",\
                     \"cat\":\"cache\",\"name\":\"cache_hit\",\
                     \"args\":{{\"class_size\":{},\"warp\":{}}}}}",
                    us(e.ts_ns),
                    e.args[1],
                    e.args[3]
                ));
            }
            EventKind::CacheFlush => {
                push(format!(
                    "{{\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{sm},\"s\":\"t\",\
                     \"cat\":\"cache\",\"name\":\"cache_flush\",\
                     \"args\":{{\"count\":{},\"class_size\":{}}}}}",
                    us(e.ts_ns),
                    e.args[0],
                    e.args[1]
                ));
            }
            EventKind::MallocBegin | EventKind::FreeBegin => {}
        }
    }

    // Counter track 1+2: heap occupancy replay.
    let occ = occupancy_timeline(trace, EXPORT_COUNTER_SAMPLES);
    for s in &occ.samples {
        push(format!(
            "{{\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\"name\":\"heap occupancy\",\
             \"args\":{{\"live_bytes\":{},\"live_allocs\":{}}}}}",
            us(s.ts_ns),
            s.live_bytes,
            s.live_allocs
        ));
    }

    // Counter track 3: CAS-retry rate, binned over the trace span.
    if trace.span_ns() > 0 {
        let t0 = trace.events.first().expect("span > 0 implies events").ts_ns;
        let bin_ns = (trace.span_ns() / EXPORT_RETRY_BINS as u64).max(1);
        let mut bins = [0u64; EXPORT_RETRY_BINS];
        for e in &trace.events {
            let retries = match e.kind {
                EventKind::MallocEnd => e.args[3],
                EventKind::FreeEnd => e.args[2],
                _ => 0,
            };
            if retries > 0 {
                let bin = (((e.ts_ns - t0) / bin_ns) as usize).min(EXPORT_RETRY_BINS - 1);
                bins[bin] += retries;
            }
        }
        for (i, &n) in bins.iter().enumerate() {
            // Only emit non-empty bins and their edges to keep files small;
            // Perfetto draws steps between samples.
            let prev = i.checked_sub(1).map(|p| bins[p]).unwrap_or(0);
            if n != 0 || prev != 0 {
                push(format!(
                    "{{\"ph\":\"C\",\"ts\":{},\"pid\":0,\"tid\":0,\
                     \"name\":\"cas retries\",\"args\":{{\"retries\":{n}}}}}",
                    us(t0 + i as u64 * bin_ns)
                ));
            }
        }
    }

    out.push_str("\n]\n");
    out
}

/// Validates `s` as Chrome trace-event JSON in the array format: a single
/// JSON array whose elements are objects each carrying `ph`, `ts`, `pid`
/// and `tid` keys. Returns the number of events.
///
/// This is a purpose-built structural checker (the workspace carries no
/// JSON dependency): it fully tokenizes the input, so malformed JSON —
/// not just missing keys — is rejected.
pub fn validate_chrome_json(s: &str) -> Result<usize, String> {
    let mut p = JsonParser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'[')?;
    let mut events = 0usize;
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let keys = p.object_keys()?;
            for required in ["ph", "ts", "pid", "tid"] {
                if !keys.iter().any(|k| k == required) {
                    return Err(format!("event {events} is missing required key \"{required}\""));
                }
            }
            events += 1;
            p.skip_ws();
            match p.next_byte()? {
                b',' => continue,
                b']' => break,
                c => return Err(format!("expected ',' or ']' after event, got '{}'", c as char)),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing data after the top-level array".into());
    }
    Ok(events)
}

/// Minimal JSON tokenizer backing [`validate_chrome_json`].
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next_byte(&mut self) -> Result<u8, String> {
        let b = self.peek().ok_or_else(|| "unexpected end of input".to_string())?;
        self.pos += 1;
        Ok(b)
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next_byte()? {
            b if b == want => Ok(()),
            b => Err(format!("expected '{}', got '{}'", want as char, b as char)),
        }
    }

    /// Parses an object, returning its top-level key names.
    fn object_keys(&mut self) -> Result<Vec<String>, String> {
        self.expect(b'{')?;
        let mut keys = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(keys);
        }
        loop {
            self.skip_ws();
            keys.push(self.string()?);
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.next_byte()? {
                b',' => continue,
                b'}' => return Ok(keys),
                c => return Err(format!("expected ',' or '}}' in object, got '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        loop {
            match self.next_byte()? {
                b'\\' => {
                    self.next_byte()?;
                }
                b'"' => {
                    return String::from_utf8(self.bytes[start..self.pos - 1].to_vec())
                        .map_err(|_| "invalid UTF-8 in string".to_string());
                }
                _ => {}
            }
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| "unexpected end of input".to_string())? {
            b'"' => self.string().map(|_| ()),
            b'{' => self.object_keys().map(|_| ()),
            b'[' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    self.value()?;
                    self.skip_ws();
                    match self.next_byte()? {
                        b',' => continue,
                        b']' => return Ok(()),
                        c => {
                            return Err(format!(
                                "expected ',' or ']' in array, got '{}'",
                                c as char
                            ))
                        }
                    }
                }
            }
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            b'-' | b'0'..=b'9' => {
                while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
                    self.pos += 1;
                }
                Ok(())
            }
            c => Err(format!("unexpected character '{}'", c as char)),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("invalid literal, expected '{lit}'"))
        }
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: EventKind, sm: u32, args: [u64; 4]) -> TraceEvent {
        TraceEvent { ts_ns: ts, kind, sm, args }
    }

    #[test]
    fn emit_and_snapshot_roundtrip() {
        let rec = TraceRecorder::new(4, 16);
        rec.emit_at(10, 1, EventKind::MallocBegin, [64, 7, 0, 0]);
        rec.emit_at(20, 1, EventKind::MallocEnd, [0x100, 64, 10, 3]);
        rec.emit_at(5, 2, EventKind::FreeBegin, [0x100, 7, 1, 0]);
        let t = rec.snapshot();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped, 0);
        // Sorted by timestamp.
        assert_eq!(t.events[0].kind, EventKind::FreeBegin);
        assert_eq!(t.events[0].sm, 2);
        assert_eq!(t.events[1], ev(10, EventKind::MallocBegin, 1, [64, 7, 0, 0]));
        assert_eq!(t.events[2].args, [0x100, 64, 10, 3]);
        assert_eq!(rec.recorded(), 3);
    }

    #[test]
    fn snapshot_since_returns_each_event_exactly_once() {
        let rec = TraceRecorder::new(4, 8);
        let mut cursors = Vec::new();

        rec.emit_at(10, 0, EventKind::MallocEnd, [0x100, 64, 5, 0]);
        rec.emit_at(20, 3, EventKind::MallocEnd, [0x200, 64, 5, 0]);
        let t1 = rec.snapshot_since(&mut cursors);
        assert_eq!(t1.len(), 2, "first drain sees everything committed so far");

        let t2 = rec.snapshot_since(&mut cursors);
        assert!(t2.events.is_empty(), "nothing new, nothing returned");

        rec.emit_at(30, 0, EventKind::FreeEnd, [0x100, 5, 0, 1]);
        let t3 = rec.snapshot_since(&mut cursors);
        assert_eq!(t3.len(), 1, "incremental drain sees only the new event");
        assert_eq!(t3.events[0].kind, EventKind::FreeEnd);

        // The incremental drains and a full snapshot agree on the stream.
        assert_eq!(rec.snapshot().len(), t1.len() + t3.len());

        // Cursors survive shard overflow: drop-newest never recycles slots,
        // so a full shard simply stops yielding.
        for i in 0..20 {
            rec.emit_at(40 + i, 0, EventKind::OomFallback, [1, 0, 0, 0]);
        }
        let t4 = rec.snapshot_since(&mut cursors);
        assert_eq!(t4.len() as u64, rec.recorded() - 3, "drains exactly the committed tail");
        assert!(rec.snapshot_since(&mut cursors).events.is_empty());
        assert!(rec.dropped() > 0, "overflow counted, not replayed");
    }

    #[test]
    fn full_shard_drops_and_counts() {
        let rec = TraceRecorder::new(1, 4);
        for i in 0..10 {
            rec.emit_at(i, 0, EventKind::OomFallback, [1, 0, 0, 0]);
        }
        assert_eq!(rec.recorded(), 4);
        assert_eq!(rec.dropped(), 6);
        let t = rec.snapshot();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped, 6);
        // Drop-newest: the first four events survive.
        assert_eq!(t.events.iter().map(|e| e.ts_ns).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sm_ids_fold_into_shards() {
        let rec = TraceRecorder::new(4, 8);
        // SM 5 folds into shard 1 (mask 3) but the event keeps its real id.
        rec.emit_at(1, 5, EventKind::WarpDispatched, [9, 0, 0, 0]);
        let t = rec.snapshot();
        assert_eq!(t.events[0].sm, 5);
    }

    #[test]
    fn concurrent_emitters_lose_nothing_within_capacity() {
        let rec = Arc::new(TraceRecorder::new(8, 4096));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let rec = Arc::clone(&rec);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        rec.emit(t as u32, EventKind::MallocEnd, [i, t, 1, 0]);
                    }
                })
            })
            .collect();
        for h in threads {
            h.join().unwrap();
        }
        let t = rec.snapshot();
        assert_eq!(t.len(), 4000);
        assert_eq!(t.dropped, 0);
        for sm in 0..4u64 {
            let seen: Vec<u64> =
                t.events.iter().filter(|e| e.args[1] == sm).map(|e| e.args[0]).collect();
            assert_eq!(seen.len(), 1000, "sm {sm} lost events");
        }
    }

    #[test]
    fn launch_ids_are_unique() {
        let rec = TraceRecorder::new(1, 4);
        assert_eq!(rec.next_launch_id(), 0);
        assert_eq!(rec.next_launch_id(), 1);
        assert_eq!(rec.next_launch_id(), 2);
    }

    #[test]
    fn event_kind_tags_roundtrip() {
        for kind in ALL_EVENT_KINDS {
            assert_eq!(EventKind::from_tag(kind.tag() as u32), Some(kind), "{}", kind.name());
        }
        assert_eq!(EventKind::from_tag(0), None, "tag 0 is reserved for unwritten slots");
        assert_eq!(EventKind::from_tag(EVENT_KINDS as u32 + 1), None);
    }

    #[test]
    fn histogram_percentiles_hand_computed() {
        let mut h = LatencyHistogram::new();
        // 90 samples in [16,32), 9 in [1024,2048), 1 at 1 << 20.
        for _ in 0..90 {
            h.record(20);
        }
        for _ in 0..9 {
            h.record(1500);
        }
        h.record(1 << 20);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 31); // upper bound of [16,32)
        assert_eq!(h.p95(), 2047); // rank 95 falls in [1024,2048)
        assert_eq!(h.p99(), 2047);
        assert_eq!(h.percentile(100.0), 1 << 20); // capped at observed max
        assert_eq!(h.max_ns(), 1 << 20);
        assert_eq!(h.mean_ns(), (90 * 20 + 9 * 1500 + (1 << 20)) / 100);
    }

    #[test]
    fn histogram_empty_and_single() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        let mut h = LatencyHistogram::new();
        h.record(1);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p99(), 1);
        // Non-empty histograms never report 0, even for clamped samples.
        let mut h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.p50(), 1);
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut both = LatencyHistogram::new();
        for i in 1..=100u64 {
            if i % 2 == 0 {
                a.record(i * 10)
            } else {
                b.record(i * 10)
            }
            both.record(i * 10);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.p50(), both.p50());
        assert_eq!(a.p99(), both.p99());
        assert_eq!(a.max_ns(), both.max_ns());
    }

    #[test]
    fn op_latencies_split_malloc_and_free() {
        let t = Trace {
            events: vec![
                ev(10, EventKind::MallocEnd, 0, [0x40, 64, 100, 0]),
                ev(20, EventKind::MallocEnd, 0, [u64::MAX, 64, 900, 2]),
                ev(30, EventKind::FreeEnd, 0, [0x40, 50, 0, 1]),
                ev(40, EventKind::WarpRetired, 0, [0, 0, 0, 0]),
            ],
            dropped: 0,
            events_per_sm: 16,
        };
        let lat = OpLatencies::from_trace(&t);
        assert_eq!(lat.malloc.count(), 2);
        assert_eq!(lat.free.count(), 1);
        assert_eq!(lat.malloc.max_ns(), 900);
        assert_eq!(lat.free.max_ns(), 50);
    }

    #[test]
    fn occupancy_replay_tracks_live_bytes_and_range() {
        let t = Trace {
            events: vec![
                ev(10, EventKind::MallocEnd, 0, [0, 100, 5, 0]),
                ev(20, EventKind::MallocEnd, 0, [100, 50, 5, 0]),
                ev(30, EventKind::FreeEnd, 0, [0, 5, 0, 1]),
                // Failed free: stays live.
                ev(40, EventKind::FreeEnd, 0, [100, 5, 0, 0]),
                // Unknown pointer.
                ev(50, EventKind::FreeEnd, 0, [9999, 5, 0, 1]),
                // Failed malloc: ignored.
                ev(60, EventKind::MallocEnd, 0, [u64::MAX, 64, 5, 0]),
            ],
            dropped: 0,
            events_per_sm: 64,
        };
        let occ = occupancy_timeline(&t, 1000);
        assert_eq!(occ.peak_live_bytes, 150);
        assert_eq!(occ.peak_live_allocs, 2);
        assert_eq!(occ.unmatched_frees, 1);
        let last = occ.samples.last().unwrap();
        assert_eq!(last.live_bytes, 50);
        assert_eq!(last.live_allocs, 1);
        // Allocations covered [0,100) and [100,150) -> span 150.
        assert_eq!(occ.address_range.range(), 150);
        assert_eq!(occ.address_range.count(), 2);
    }

    #[test]
    fn occupancy_decimation_keeps_last_sample() {
        let events: Vec<TraceEvent> =
            (0..100).map(|i| ev(i, EventKind::MallocEnd, 0, [i * 64, 64, 5, 0])).collect();
        let t = Trace { events, dropped: 0, events_per_sm: 256 };
        let occ = occupancy_timeline(&t, 10);
        assert!(occ.samples.len() <= 11, "got {}", occ.samples.len());
        assert_eq!(occ.samples.last().unwrap().live_allocs, 100);
        assert_eq!(occ.peak_live_bytes, 6400);
    }

    #[test]
    fn chrome_export_validates_and_carries_tracks() {
        let t = Trace {
            events: vec![
                ev(1000, EventKind::LaunchBegin, 0, [0, 64, 2, 0]),
                ev(1100, EventKind::WarpDispatched, 1, [0, 0, 0, 0]),
                ev(1200, EventKind::MallocEnd, 1, [0x80, 64, 100, 7]),
                ev(1300, EventKind::FreeEnd, 1, [0x80, 50, 1, 1]),
                ev(1400, EventKind::WarpRetired, 1, [0, 0, 0, 0]),
                ev(1500, EventKind::OomFallback, 1, [1, 0, 0, 0]),
                ev(1600, EventKind::SanitizerViolation, 2, [3, 64, 16, 0]),
                ev(1700, EventKind::LaunchEnd, 0, [0, 700, 0, 0]),
            ],
            dropped: 0,
            events_per_sm: 64,
        };
        let json = chrome_trace_json(&t, "test \"quoted\" label");
        let n = validate_chrome_json(&json).expect("export must be valid");
        assert!(n >= 8, "expected metadata + events, got {n}");
        for needle in [
            "\"ph\":\"X\"",
            "\"ph\":\"M\"",
            "\"ph\":\"C\"",
            "\"ph\":\"b\"",
            "\"ph\":\"e\"",
            "\"ph\":\"i\"",
            "thread_name",
            "heap occupancy",
            "cas retries",
            "launches",
            "test \\\"quoted\\\" label",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn chrome_export_of_empty_trace_is_valid() {
        let json = chrome_trace_json(&Trace::default(), "empty");
        let n = validate_chrome_json(&json).expect("valid");
        assert!(n >= 1, "metadata events expected");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_json("").is_err());
        assert!(validate_chrome_json("{}").is_err(), "top level must be an array");
        assert!(validate_chrome_json("[{\"ph\":\"X\"}]").is_err(), "missing ts/pid/tid");
        assert!(
            validate_chrome_json("[{\"ph\":\"X\",\"ts\":1,\"pid\":0,\"tid\":0}").is_err(),
            "unterminated array"
        );
        assert!(
            validate_chrome_json("[{\"ph\":\"X\",\"ts\":1,\"pid\":0,\"tid\":0}]x").is_err(),
            "trailing garbage"
        );
        assert_eq!(
            validate_chrome_json(
                "[{\"ph\":\"X\",\"ts\":1.5,\"pid\":0,\"tid\":0,\"args\":{\"a\":[1,null,true]}}]"
            ),
            Ok(1)
        );
        assert_eq!(validate_chrome_json("[]"), Ok(0));
    }

    #[test]
    fn retry_accumulator_is_per_thread() {
        begin_op_scope();
        note_op_retries(5);
        note_op_retries(2);
        let h = std::thread::spawn(|| {
            begin_op_scope();
            note_op_retries(100);
            end_op_scope()
        });
        assert_eq!(h.join().unwrap(), 100);
        assert_eq!(end_op_scope(), 7);
        assert_eq!(end_op_scope(), 0, "empty stack drains to zero");
    }

    #[test]
    fn retries_outside_any_scope_are_dropped() {
        note_op_retries(9);
        begin_op_scope();
        assert_eq!(end_op_scope(), 0, "orphan retries must not leak into the next op");
    }

    #[test]
    fn nested_scopes_attribute_retries_per_layer() {
        begin_op_scope(); // outer wrapper's operation
        note_op_retries(2); // middle layer's own retries
        begin_op_scope(); // inner wrapper's operation
        note_op_retries(3); // innermost manager's retries
        assert_eq!(end_op_scope(), 3, "inner op sees only its own retries");
        assert_eq!(end_op_scope(), 2, "outer op keeps the middle layer's retries");
    }

    /// Regression test for the nested-decorator retry bridge: in
    /// `Traced<Middle<Traced<Inner>>>` the outer `MallocEnd` must carry
    /// only the middle layer's retries (2) and the inner `MallocEnd` only
    /// the innermost manager's (3) — with a single shared accumulator the
    /// inner wrapper's clear-on-begin destroyed the middle layer's count
    /// and its drain misattributed the total.
    #[test]
    fn nested_traced_wrappers_scope_retries_per_layer() {
        struct Inner {
            heap: Arc<DeviceHeap>,
            m: Metrics,
        }
        impl DeviceAllocator for Inner {
            fn info(&self) -> ManagerInfo {
                ManagerInfo::builder("Inner").supports_free(true).build()
            }
            fn heap(&self) -> &DeviceHeap {
                &self.heap
            }
            fn malloc(&self, ctx: &ThreadCtx, _size: u64) -> Result<DevicePtr, AllocError> {
                self.m.record_retries(ctx.sm, 3);
                Ok(DevicePtr::new(0))
            }
            fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
                Ok(())
            }
            fn register_footprint(&self) -> RegisterFootprint {
                RegisterFootprint { malloc: 1, free: 1 }
            }
            fn metrics(&self) -> Metrics {
                self.m.clone()
            }
        }

        struct Middle<A> {
            inner: A,
            m: Metrics,
        }
        impl<A: DeviceAllocator> DeviceAllocator for Middle<A> {
            fn info(&self) -> ManagerInfo {
                self.inner.info()
            }
            fn heap(&self) -> &DeviceHeap {
                self.inner.heap()
            }
            fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
                // The middle layer burns retries of its own (e.g. magazine
                // CAS contention) before delegating.
                self.m.record_retries(ctx.sm, 2);
                self.inner.malloc(ctx, size)
            }
            fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
                self.inner.free(ctx, ptr)
            }
            fn register_footprint(&self) -> RegisterFootprint {
                self.inner.register_footprint()
            }
            fn metrics(&self) -> Metrics {
                self.inner.metrics()
            }
        }

        let rec = Arc::new(TraceRecorder::new(1, 16));
        let m = Metrics::enabled(1).with_tracer(Arc::clone(&rec));
        let inner = Inner { heap: Arc::new(DeviceHeap::new(4096)), m: m.clone() };
        let stack = Traced::new(
            Middle { inner: Traced::new(inner, Arc::clone(&rec)), m: m.relay() },
            Arc::clone(&rec),
        );

        let ctx = ThreadCtx::host();
        stack.malloc(&ctx, 64).unwrap();

        let trace = rec.snapshot();
        let retries: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::MallocEnd)
            .map(|e| e.args[3])
            .collect();
        // Events sort by timestamp: the inner wrapper's end precedes the
        // outer's.
        assert_eq!(retries, vec![3, 2], "inner op keeps 3, outer op keeps 2");
        let total: u64 = retries.iter().sum();
        assert_eq!(total, 5, "no retry double-counted or lost across layers");
    }
}

// Loom model of the claim/commit publication protocol: two writers race one
// reader; every committed slot the reader observes must decode to a fully
// written event (never the reserved zero tag, never a half-written payload).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;

    #[test]
    fn loom_claim_commit_publishes_whole_slots() {
        crate::sync::model(|| {
            let rec = Arc::new(TraceRecorder::new(1, 4));
            let writers: Vec<_> = (0..2u64)
                .map(|t| {
                    let rec = Arc::clone(&rec);
                    crate::sync::thread::spawn(move || {
                        rec.emit_at(t + 1, 0, EventKind::MallocEnd, [t + 1, t + 1, t + 1, t + 1]);
                    })
                })
                .collect();
            // Read while the writers may still be mid-protocol: whatever is
            // visible must decode whole (the reserved zero tag shields
            // unpublished slots; spinning is avoided by reading only the
            // committed prefix loom has made visible).
            let mid = rec.snapshot();
            for ev in &mid.events {
                assert_eq!(ev.kind, EventKind::MallocEnd);
                assert_eq!([ev.ts_ns, ev.args[1], ev.args[2], ev.args[3]], [ev.args[0]; 4]);
            }
            for w in writers {
                w.join().unwrap();
            }
            let done = rec.snapshot();
            assert_eq!(done.len(), 2);
            for ev in &done.events {
                assert_eq!([ev.ts_ns, ev.args[1], ev.args[2], ev.args[3]], [ev.args[0]; 4]);
            }
        });
    }
}
