//! The simulated slab of GPU global memory.
//!
//! Every manager in the survey is "instantiated on the host with a
//! configurable size of the manageable memory" (paper §3) and then serves all
//! requests out of that one region. [`DeviceHeap`] is that region: a single
//! zero-initialised host allocation addressed by byte offsets
//! ([`DevicePtr`]).
//!
//! Two access families are offered:
//!
//! * **Atomic views** ([`DeviceHeap::atomic_u32`], [`DeviceHeap::atomic_u64`])
//!   give shared references to atomics living *inside* the heap. The original
//!   allocators keep headers, bit fields and queue storage in device memory
//!   and manipulate them with `atomicCAS`/`atomicAdd`; the Rust ports do
//!   exactly the same through these views, so the heap layouts in the paper's
//!   figures are preserved byte-for-byte where they are specified.
//! * **Payload access** ([`DeviceHeap::fill`], [`DeviceHeap::read_u8`],
//!   [`DeviceHeap::write_bytes`], …) used by benchmarks that write to the
//!   memory they allocated (the Fig. 11e access test, the graph test cases).
//!
//! # Backends
//!
//! Where the bytes physically live is delegated to a [`HeapBackend`]
//! (see [`crate::backend`]): the original in-RAM slab, an mmap
//! `MAP_NORESERVE` reservation that runs the paper's full 8 GiB heap on any
//! host, or a NUMA-interleaved mapping for multi-socket fidelity.
//! [`DeviceHeap::try_new`] selects by [`HeapSpec`] and surfaces OS refusal
//! as a typed [`HeapError`]; [`DeviceHeap::new`] is the thin panicking
//! wrapper tests use. The base pointer and length are cached on the heap
//! itself, so backend dispatch never appears on allocator hot paths.
//!
//! # Safety model
//!
//! The heap hands out `&AtomicU32`/`&AtomicU64` freely: aliasing atomics is
//! sound. Non-atomic payload access is only performed by benchmark kernels on
//! regions the allocator under test returned, and the allocator invariant
//! "live allocations never overlap" (property-tested for every manager) makes
//! those accesses race-free. Payload reads/writes deliberately go through
//! volatile-style raw-pointer ops rather than slices so that a *buggy*
//! allocator under test produces torn data, not Rust UB on references.

use crate::backend::{self, HeapBackend, HeapBackendKind, HeapError, HeapSpec};
use crate::sync::{AtomicU32, AtomicU64, Ordering};

use crate::ptr::DevicePtr;

/// One contiguous region of simulated device memory.
pub struct DeviceHeap {
    /// Cached `backend.base()` — hot-path reads skip the vtable.
    base: *mut u8,
    /// Cached `backend.len()`.
    len: u64,
    /// Owns the mapping; dropping it releases the memory.
    backend: Box<dyn HeapBackend>,
}

// SAFETY: all shared mutation of heap contents goes through atomics or
// through non-overlapping payload regions (see module docs).
unsafe impl Send for DeviceHeap {}
// SAFETY: see the Send impl — concurrent access is mediated by the in-heap
// atomic views; plain reads/writes require caller-side exclusivity.
unsafe impl Sync for DeviceHeap {}

impl DeviceHeap {
    /// Alignment of the heap base — matches the 128-byte memory-transaction
    /// segment size of the GPUs in the survey, so segment math on offsets is
    /// also valid segment math on simulated physical addresses.
    pub const BASE_ALIGN: usize = 128;

    /// Allocates a zeroed heap of `len` bytes over the default backend
    /// (RAM, or whatever `GMS_HEAP_BACKEND` selects) — the thin panicking
    /// wrapper over [`DeviceHeap::try_new`] that tests and examples use.
    ///
    /// # Panics
    /// Panics if `len` is zero, not a multiple of 128, or the reservation
    /// fails.
    pub fn new(len: u64) -> Self {
        Self::try_new(HeapSpec::new(len)).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Constructs a heap as described by `spec`, surfacing failure (zero or
    /// unrounded size, OS refusing the reservation, backend unavailable on
    /// this platform) as a typed [`HeapError`].
    pub fn try_new(spec: HeapSpec) -> Result<Self, HeapError> {
        Ok(Self::with_backend(backend::open(spec)?))
    }

    /// Wraps an already-constructed backend (the extension point for
    /// substrates this crate does not know about, e.g. a real-GPU mapping).
    ///
    /// # Panics
    /// Panics if the backend violates its contract: zero/unrounded length
    /// or a base pointer misaligned for [`DeviceHeap::BASE_ALIGN`].
    pub fn with_backend(backend: Box<dyn HeapBackend>) -> Self {
        let base = backend.base();
        let len = backend.len();
        assert!(
            len > 0 && len.is_multiple_of(128),
            "backend length {len} violates the heap contract"
        );
        assert!(
            (base as usize).is_multiple_of(Self::BASE_ALIGN),
            "backend base misaligned for BASE_ALIGN"
        );
        DeviceHeap { base, len, backend }
    }

    /// The backing store this heap lives in.
    #[inline]
    pub fn backend(&self) -> &dyn HeapBackend {
        &*self.backend
    }

    /// Which backend family backs this heap (for provenance stamps).
    #[inline]
    pub fn backend_kind(&self) -> HeapBackendKind {
        self.backend.kind()
    }

    /// Touches every page of `[offset, offset + len)` so it is physically
    /// committed — warm-up for timing-sensitive runs on lazily committed
    /// backends. Only call on ranges that carry no payload yet (the touch
    /// writes zero).
    pub fn commit(&self, offset: u64, len: u64) {
        self.backend.commit(offset, len);
    }

    /// Size of the manageable memory in bytes.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the heap is empty (never true: construction requires > 0).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, offset: u64, bytes: u64, align: u64) {
        assert!(
            offset.checked_add(bytes).is_some_and(|end| end <= self.len),
            "heap access out of bounds: offset {offset} + {bytes} > len {}",
            self.len
        );
        assert_eq!(offset % align, 0, "heap access misaligned: offset {offset}, align {align}");
    }

    /// A shared view of the 4 bytes at `offset` as an [`AtomicU32`].
    ///
    /// # Panics
    /// Panics if `offset` is out of bounds or not 4-byte aligned.
    #[inline]
    pub fn atomic_u32(&self, offset: u64) -> &AtomicU32 {
        self.check(offset, 4, 4);
        // SAFETY: in-bounds, aligned; AtomicU32 has no invalid bit patterns,
        // and the backing memory outlives `&self`.
        unsafe { &*(self.base.add(offset as usize) as *const AtomicU32) }
    }

    /// A shared view of the 8 bytes at `offset` as an [`AtomicU64`].
    ///
    /// # Panics
    /// Panics if `offset` is out of bounds or not 8-byte aligned.
    #[inline]
    pub fn atomic_u64(&self, offset: u64) -> &AtomicU64 {
        self.check(offset, 8, 8);
        // SAFETY: as in `atomic_u32`.
        unsafe { &*(self.base.add(offset as usize) as *const AtomicU64) }
    }

    /// Relaxed load of the `u32` at `offset` (convenience over
    /// [`DeviceHeap::atomic_u32`]).
    #[inline]
    pub fn load_u32(&self, offset: u64) -> u32 {
        self.atomic_u32(offset).load(Ordering::Relaxed)
    }

    /// Relaxed store of the `u32` at `offset`.
    #[inline]
    pub fn store_u32(&self, offset: u64, v: u32) {
        self.atomic_u32(offset).store(v, Ordering::Relaxed);
    }

    /// Relaxed load of the `u64` at `offset`.
    #[inline]
    pub fn load_u64(&self, offset: u64) -> u64 {
        self.atomic_u64(offset).load(Ordering::Relaxed)
    }

    /// Relaxed store of the `u64` at `offset`.
    #[inline]
    pub fn store_u64(&self, offset: u64, v: u64) {
        self.atomic_u64(offset).store(v, Ordering::Relaxed);
    }

    /// Fills `[ptr, ptr+len)` with `val` — the benchmark "write to my
    /// allocation" kernel body.
    ///
    /// # Panics
    /// Panics on null pointers or out-of-bounds ranges.
    pub fn fill(&self, ptr: DevicePtr, len: u64, val: u8) {
        let offset = ptr.offset();
        self.check(offset, len, 1);
        // SAFETY: in-bounds; region is an allocation owned by the caller's
        // thread (allocator non-overlap invariant), so no data race.
        unsafe {
            std::ptr::write_bytes(self.base.add(offset as usize), val, len as usize);
        }
    }

    /// Reads one byte (used by tests to verify fills landed).
    pub fn read_u8(&self, ptr: DevicePtr, at: u64) -> u8 {
        // checked: `offset + at` wrapping in release would land the read back
        // inside the heap and sail past `check`.
        let offset = ptr
            .offset()
            .checked_add(at)
            .unwrap_or_else(|| panic!("heap read offset overflow: {} + {at}", ptr.offset()));
        self.check(offset, 1, 1);
        // SAFETY: in-bounds read of initialised (zeroed-or-written) memory.
        unsafe { self.base.add(offset as usize).read_volatile() }
    }

    /// Copies `data` into the heap at `ptr` (graph adjacency uploads).
    pub fn write_bytes(&self, ptr: DevicePtr, data: &[u8]) {
        let offset = ptr.offset();
        self.check(offset, data.len() as u64, 1);
        // SAFETY: in-bounds, non-overlapping with `data` (heap memory is
        // never handed out as a slice), race-free per allocator invariant.
        unsafe {
            std::ptr::copy_nonoverlapping(
                data.as_ptr(),
                self.base.add(offset as usize),
                data.len(),
            );
        }
    }

    /// Copies `out.len()` bytes from the heap at `ptr` into `out`.
    pub fn read_bytes(&self, ptr: DevicePtr, out: &mut [u8]) {
        let offset = ptr.offset();
        self.check(offset, out.len() as u64, 1);
        // SAFETY: symmetric to `write_bytes`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.add(offset as usize),
                out.as_mut_ptr(),
                out.len(),
            );
        }
    }

    /// Device-to-device copy of `len` bytes; `src` and `dst` must not
    /// overlap. Used by the dynamic-graph test case when an adjacency grows
    /// over a power-of-two boundary and moves to a new allocation.
    pub fn copy(&self, src: DevicePtr, dst: DevicePtr, len: u64) {
        let s = src.offset();
        let d = dst.offset();
        self.check(s, len, 1);
        self.check(d, len, 1);
        assert!(
            s + len <= d || d + len <= s,
            "DeviceHeap::copy regions overlap: src={s}, dst={d}, len={len}"
        );
        // SAFETY: in-bounds and non-overlapping (asserted).
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.base.add(s as usize),
                self.base.add(d as usize),
                len as usize,
            );
        }
    }
}

impl std::fmt::Debug for DeviceHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceHeap")
            .field("len", &self.len)
            .field("backend", &self.backend.kind())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::Ordering;

    #[test]
    fn zero_initialised() {
        let h = DeviceHeap::new(4096);
        assert_eq!(h.len(), 4096);
        assert_eq!(h.load_u64(0), 0);
        assert_eq!(h.load_u32(4092), 0);
        assert_eq!(h.read_u8(DevicePtr::new(0), 17), 0);
    }

    #[test]
    fn atomic_views_mutate_heap() {
        let h = DeviceHeap::new(1024);
        h.atomic_u32(128).store(0xdead_beef, Ordering::SeqCst);
        assert_eq!(h.load_u32(128), 0xdead_beef);
        let prev = h.atomic_u64(256).fetch_add(40, Ordering::SeqCst);
        assert_eq!(prev, 0);
        assert_eq!(h.load_u64(256), 40);
    }

    #[test]
    fn atomic_cas_through_view() {
        let h = DeviceHeap::new(256);
        let a = h.atomic_u32(0);
        assert!(a.compare_exchange(0, 7, Ordering::SeqCst, Ordering::SeqCst).is_ok());
        assert!(a.compare_exchange(0, 9, Ordering::SeqCst, Ordering::SeqCst).is_err());
        assert_eq!(h.load_u32(0), 7);
    }

    #[test]
    fn fill_and_read_roundtrip() {
        let h = DeviceHeap::new(1024);
        let p = DevicePtr::new(100);
        h.fill(p, 64, 0xab);
        assert_eq!(h.read_u8(p, 0), 0xab);
        assert_eq!(h.read_u8(p, 63), 0xab);
        assert_eq!(h.read_u8(DevicePtr::new(0), 99), 0);
        assert_eq!(h.read_u8(DevicePtr::new(164), 0), 0);
    }

    #[test]
    fn write_read_bytes_roundtrip() {
        let h = DeviceHeap::new(1024);
        let p = DevicePtr::new(512);
        let data: Vec<u8> = (0..32).collect();
        h.write_bytes(p, &data);
        let mut out = vec![0u8; 32];
        h.read_bytes(p, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn device_copy_moves_payload() {
        let h = DeviceHeap::new(1024);
        h.write_bytes(DevicePtr::new(0), &[1, 2, 3, 4]);
        h.copy(DevicePtr::new(0), DevicePtr::new(500), 4);
        let mut out = [0u8; 4];
        h.read_bytes(DevicePtr::new(500), &mut out);
        assert_eq!(out, [1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_copy_panics() {
        let h = DeviceHeap::new(1024);
        h.copy(DevicePtr::new(0), DevicePtr::new(2), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_access_panics() {
        let h = DeviceHeap::new(256);
        h.load_u32(256);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_atomic_panics() {
        let h = DeviceHeap::new(256);
        h.load_u64(4);
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn unrounded_heap_size_panics() {
        let _ = DeviceHeap::new(100);
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        assert!(matches!(
            DeviceHeap::try_new(HeapSpec::ram(0)),
            Err(HeapError::InvalidLen { len: 0, .. })
        ));
        assert!(matches!(
            DeviceHeap::try_new(HeapSpec::ram(100)),
            Err(HeapError::InvalidLen { len: 100, .. })
        ));
        // An absurd RAM demand must come back as an error, not an abort.
        // (1 << 60 bytes = 1 EiB; no allocator grants this.)
        assert!(matches!(
            DeviceHeap::try_new(HeapSpec::ram(1 << 60)),
            Err(HeapError::ReserveFailed { .. })
        ));
    }

    #[test]
    fn default_heap_reports_its_backend() {
        let h = DeviceHeap::new(4096);
        // `new` follows GMS_HEAP_BACKEND, so only assert coherence.
        assert_eq!(h.backend_kind(), h.backend().kind());
        assert!(!h.backend().describe().is_empty());
        assert!(format!("{h:?}").contains("backend"));
    }

    #[test]
    fn every_available_backend_yields_an_equivalent_heap() {
        for kind in HeapBackendKind::ALL {
            if !kind.available() {
                continue;
            }
            let h = DeviceHeap::try_new(HeapSpec::new(1 << 20).with_backend(kind))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(h.backend_kind(), kind);
            assert_eq!(h.len(), 1 << 20);
            assert_eq!(h.load_u64(0), 0, "{kind}: not zeroed");
            assert_eq!(h.read_u8(DevicePtr::new(0), (1 << 20) - 1), 0, "{kind}");
            h.atomic_u32(256).store(0x5eed_cafe, Ordering::SeqCst);
            assert_eq!(h.load_u32(256), 0x5eed_cafe, "{kind}");
            h.commit(0, 1 << 20); // idempotent on already-committed pages
            let p = DevicePtr::new(4096);
            h.fill(p, 512, 0x7f);
            assert_eq!(h.read_u8(p, 511), 0x7f, "{kind}");
        }
    }

    #[test]
    fn concurrent_fetch_add_sums() {
        let h = std::sync::Arc::new(DeviceHeap::new(128));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    h.atomic_u64(0).fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(h.load_u64(0), 40_000);
    }
}
