//! Heap backends: where the simulated device memory physically lives.
//!
//! The paper instantiates every manager over the full 8 GiB device heap of a
//! TITAN V. A single `alloc_zeroed` slab cannot honestly reach that size on
//! most hosts — allocating and pre-touching 8 GiB of RAM per benchmark cell
//! forces scaled-down heaps and biases any experiment that sweeps heap size.
//! This module isolates the memory substrate behind the [`HeapBackend`]
//! trait (the same move the SYCL Ouroboros port makes to run one allocator
//! across CPU/GPU backends) so [`crate::DeviceHeap`] stays a thin
//! offset-addressed view while the backing storage scales:
//!
//! * [`RamBackend`] — the original `alloc_zeroed` slab, fully pre-touched.
//!   Default; behaviour-identical to the pre-trait heap.
//! * [`MmapBackend`] — anonymous `mmap` with `MAP_NORESERVE`: reserves
//!   address space without committing physical pages, so the paper's 8 GiB
//!   heap (and larger) constructs instantly on any host. Pages commit on
//!   first touch, governed by an explicit [`Pretouch`] policy.
//! * [`NumaBackend`] — `mmap` plus transparent-hugepage advice and a
//!   striped, affinity-pinned first-touch pass that interleaves physical
//!   pages across NUMA nodes, for multi-socket timing fidelity.
//!
//! # Pre-touch policy
//!
//! GPU V-RAM is physically backed; host demand-paging is not. A simulated
//! kernel that takes the first-touch page faults *inside* its timed region
//! would charge the allocator under test for the host OS's lazy commit —
//! biasing results against designs that scatter allocations across the heap
//! (scattering is free on a real device). Every backend therefore carries an
//! explicit [`Pretouch`] policy, and the resolved policy is recorded in
//! [`HeapBackend::describe`] so CSV provenance can expose it. The mmap
//! default (`Lazy`) is the one deliberate exception: it is what makes
//! over-RAM-size reservations possible at all, and timing-sensitive runs at
//! such sizes should either warm the heap first ([`HeapBackend::commit`]) or
//! accept the documented first-touch cost. DESIGN.md §11 spells this out.
//!
//! # Selection
//!
//! [`HeapSpec`] names a backend; [`crate::DeviceHeap::try_new`] constructs
//! it, surfacing OS refusal as a typed [`HeapError`] instead of an abort.
//! The `GMS_HEAP_BACKEND` environment variable (`ram`, `mmap`, `numa`)
//! overrides the default backend workspace-wide, which is how CI runs the
//! whole conformance battery over the mmap path without code changes.

use std::fmt;
use std::str::FromStr;

/// Which backing store a heap lives in. Parsed from `--heap-backend
/// {ram,mmap,numa}` and from the `GMS_HEAP_BACKEND` environment variable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum HeapBackendKind {
    /// Host RAM via `alloc_zeroed`, fully pre-touched (the original heap).
    #[default]
    Ram,
    /// Anonymous `mmap` with `MAP_NORESERVE`; lazily committed by default.
    Mmap,
    /// `mmap` + hugepage advice + NUMA-interleaved, affinity-pinned
    /// first-touch.
    Numa,
}

impl HeapBackendKind {
    /// All kinds, in selector order.
    pub const ALL: [HeapBackendKind; 3] =
        [HeapBackendKind::Ram, HeapBackendKind::Mmap, HeapBackendKind::Numa];

    /// The selector token (`ram`, `mmap`, `numa`).
    pub fn name(&self) -> &'static str {
        match self {
            HeapBackendKind::Ram => "ram",
            HeapBackendKind::Mmap => "mmap",
            HeapBackendKind::Numa => "numa",
        }
    }

    /// Whether this backend can be constructed on the current platform.
    /// `Ram` always can; the mapped backends need the Linux mmap surface.
    pub fn available(&self) -> bool {
        match self {
            HeapBackendKind::Ram => true,
            HeapBackendKind::Mmap | HeapBackendKind::Numa => cfg!(target_os = "linux"),
        }
    }

    /// The workspace-wide default: `GMS_HEAP_BACKEND` when set (this is how
    /// CI reruns whole test batteries over the mmap path), `Ram` otherwise.
    ///
    /// # Panics
    /// Panics on an unparseable `GMS_HEAP_BACKEND` value — a misconfigured
    /// gate must fail loudly, not silently fall back to RAM.
    pub fn env_default() -> HeapBackendKind {
        match std::env::var("GMS_HEAP_BACKEND") {
            Ok(s) => s.parse().unwrap_or_else(|e| panic!("invalid GMS_HEAP_BACKEND: {e}")),
            Err(_) => HeapBackendKind::default(),
        }
    }
}

impl fmt::Display for HeapBackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for HeapBackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ram" | "malloc" => Ok(HeapBackendKind::Ram),
            "mmap" => Ok(HeapBackendKind::Mmap),
            "numa" => Ok(HeapBackendKind::Numa),
            other => Err(format!("unknown heap backend: {other:?} (expected ram, mmap or numa)")),
        }
    }
}

/// When the backing pages are physically committed (touched).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Pretouch {
    /// Backend default: `Full` for RAM, `Lazy` for mmap, `Striped` for NUMA.
    #[default]
    Auto,
    /// Touch every page up-front from the constructing thread.
    Full,
    /// Touch pages in parallel stripes, one thread per NUMA node, each
    /// pinned to its node's CPUs — Linux first-touch placement then
    /// interleaves physical pages across nodes.
    Striped,
    /// No up-front touch; pages commit on first access (demand paging).
    Lazy,
}

impl Pretouch {
    /// The selector token (`auto`, `full`, `striped`, `lazy`).
    pub fn name(&self) -> &'static str {
        match self {
            Pretouch::Auto => "auto",
            Pretouch::Full => "full",
            Pretouch::Striped => "striped",
            Pretouch::Lazy => "lazy",
        }
    }

    /// Resolves `Auto` to the concrete policy of `backend`.
    pub fn resolve(self, backend: HeapBackendKind) -> Pretouch {
        match self {
            Pretouch::Auto => match backend {
                HeapBackendKind::Ram => Pretouch::Full,
                HeapBackendKind::Mmap => Pretouch::Lazy,
                HeapBackendKind::Numa => Pretouch::Striped,
            },
            other => other,
        }
    }
}

impl fmt::Display for Pretouch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Pretouch {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Ok(Pretouch::Auto),
            "full" => Ok(Pretouch::Full),
            "striped" => Ok(Pretouch::Striped),
            "lazy" | "none" => Ok(Pretouch::Lazy),
            other => Err(format!(
                "unknown pretouch policy: {other:?} (expected auto, full, striped or lazy)"
            )),
        }
    }
}

/// Everything needed to construct a heap: size, backing store, commit
/// policy. The single construction currency from `ManagerBuilder` down to
/// [`crate::DeviceHeap::try_new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapSpec {
    /// Size of the manageable memory in bytes (non-zero, multiple of 128).
    pub len: u64,
    /// Backing store.
    pub backend: HeapBackendKind,
    /// Page-commit policy; `Auto` resolves per backend.
    pub pretouch: Pretouch,
}

impl HeapSpec {
    /// A spec of `len` bytes over the environment-default backend
    /// ([`HeapBackendKind::env_default`]) with `Auto` pre-touch.
    pub fn new(len: u64) -> Self {
        HeapSpec { len, backend: HeapBackendKind::env_default(), pretouch: Pretouch::Auto }
    }

    /// A RAM-backed spec (ignores `GMS_HEAP_BACKEND`).
    pub fn ram(len: u64) -> Self {
        HeapSpec { len, backend: HeapBackendKind::Ram, pretouch: Pretouch::Auto }
    }

    /// An mmap-backed spec (ignores `GMS_HEAP_BACKEND`).
    pub fn mmap(len: u64) -> Self {
        HeapSpec { len, backend: HeapBackendKind::Mmap, pretouch: Pretouch::Auto }
    }

    /// A NUMA-backed spec (ignores `GMS_HEAP_BACKEND`).
    pub fn numa(len: u64) -> Self {
        HeapSpec { len, backend: HeapBackendKind::Numa, pretouch: Pretouch::Auto }
    }

    /// Replaces the backend.
    pub fn with_backend(mut self, backend: HeapBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the pre-touch policy.
    pub fn with_pretouch(mut self, pretouch: Pretouch) -> Self {
        self.pretouch = pretouch;
        self
    }

    /// Validates the size constraints shared by every backend.
    pub fn validate(&self) -> Result<(), HeapError> {
        if self.len == 0 {
            return Err(HeapError::InvalidLen {
                len: self.len,
                reason: "heap size must be non-zero",
            });
        }
        if !self.len.is_multiple_of(128) {
            return Err(HeapError::InvalidLen {
                len: self.len,
                reason: "heap size must be a multiple of 128 bytes",
            });
        }
        Ok(())
    }
}

/// Why a heap could not be constructed. Surfaces OS refusal of huge
/// reservations as a typed error through `repro` instead of an abort.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HeapError {
    /// The requested size is zero or not a multiple of 128 bytes.
    InvalidLen { len: u64, reason: &'static str },
    /// The OS refused the reservation (malloc returned null / mmap failed).
    ReserveFailed { len: u64, backend: HeapBackendKind },
    /// The backend cannot be constructed on this platform or build.
    Unavailable { backend: HeapBackendKind, reason: &'static str },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::InvalidLen { len, reason } => {
                write!(f, "invalid heap size {len}: {reason}")
            }
            HeapError::ReserveFailed { len, backend } => {
                write!(f, "heap reservation of {len} bytes failed on the {backend} backend")
            }
            HeapError::Unavailable { backend, reason } => {
                write!(f, "heap backend {backend} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for HeapError {}

/// One backing store for a [`crate::DeviceHeap`].
///
/// Contract: `base()` points at `len()` bytes of zero-initialised memory,
/// aligned to at least [`crate::DeviceHeap::BASE_ALIGN`], valid for the
/// backend's lifetime, and released on drop. Shared mutation through the
/// pointer is mediated by the heap's atomic views, so implementations must
/// be `Send + Sync`. The trait is object-safe: `DeviceHeap` stores
/// `Box<dyn HeapBackend>` and caches `base`/`len`, so backend dispatch
/// never appears on allocator hot paths.
#[allow(clippy::len_without_is_empty)] // a zero-length heap is rejected at construction
pub trait HeapBackend: Send + Sync {
    /// Which backend family this is.
    fn kind(&self) -> HeapBackendKind;

    /// Base of the zeroed region.
    fn base(&self) -> *mut u8;

    /// Region size in bytes (always non-zero; `HeapSpec::validate` rejects
    /// empty heaps before a backend is opened).
    fn len(&self) -> u64;

    /// Touches every page of `[offset, offset + len)` (clamped to the
    /// region) so it is physically committed before timed code runs.
    fn commit(&self, offset: u64, len: u64) {
        let end = offset.saturating_add(len).min(self.len());
        let mut at = offset.min(self.len());
        while at < end {
            // SAFETY: `at < len()` and the trait contract keeps the region
            // valid. Writing zero is idempotent on anonymous (zero-fill)
            // pages; callers must only commit ranges that carry no data yet.
            unsafe { touch_zero(self.base(), at as usize) };
            at += PAGE_SIZE as u64;
        }
    }

    /// One-line placement description for provenance stamps, e.g.
    /// `mmap(noreserve) pretouch=lazy`.
    fn describe(&self) -> String;
}

/// Host page size assumed by the pre-touch loops. A stale constant only
/// costs extra touches (64 KiB pages are touched 16×), never correctness.
pub const PAGE_SIZE: usize = 4096;

/// Volatile-writes a zero byte at `base + offset` — the idempotent page
/// touch used by every commit path (anonymous pages are zero-fill, so
/// writing zero never clobbers data that raced in before the heap was
/// shared).
///
/// # Safety
/// `base + offset` must be in-bounds of a live allocation.
#[inline]
unsafe fn touch_zero(base: *mut u8, offset: usize) {
    // SAFETY: forwarded to the caller.
    unsafe { base.add(offset).write_volatile(0) };
}

/// Constructs the backend named by `spec`. The single dispatch point used
/// by [`crate::DeviceHeap::try_new`]; external backends can bypass it via
/// [`crate::DeviceHeap::with_backend`].
pub fn open(spec: HeapSpec) -> Result<Box<dyn HeapBackend>, HeapError> {
    spec.validate()?;
    match spec.backend {
        HeapBackendKind::Ram => Ok(Box::new(RamBackend::new(spec.len, spec.pretouch)?)),
        #[cfg(target_os = "linux")]
        HeapBackendKind::Mmap => Ok(Box::new(MmapBackend::new(spec.len, spec.pretouch)?)),
        #[cfg(target_os = "linux")]
        HeapBackendKind::Numa => Ok(Box::new(NumaBackend::new(spec.len, spec.pretouch)?)),
        #[cfg(not(target_os = "linux"))]
        HeapBackendKind::Mmap | HeapBackendKind::Numa => Err(HeapError::Unavailable {
            backend: spec.backend,
            reason: "mapped backends require the Linux mmap surface",
        }),
    }
}

// ---------------------------------------------------------------------------
// RAM backend — the original heap, extracted.
// ---------------------------------------------------------------------------

/// The original in-RAM slab: one `alloc_zeroed` allocation, pre-touched in
/// full by default so demand paging never shows up inside simulated kernels.
pub struct RamBackend {
    base: *mut u8,
    len: u64,
    layout: std::alloc::Layout,
    pretouch: Pretouch,
}

// SAFETY: the raw base pointer is only mutated through the DeviceHeap
// discipline (atomic views / non-overlapping payload regions).
unsafe impl Send for RamBackend {}
// SAFETY: see Send.
unsafe impl Sync for RamBackend {}

impl RamBackend {
    /// Allocates a zeroed slab of `len` bytes (validated by [`open`]; direct
    /// callers get the same checks via [`HeapSpec::validate`] semantics).
    pub fn new(len: u64, pretouch: Pretouch) -> Result<Self, HeapError> {
        HeapSpec::ram(len).validate()?;
        let layout =
            std::alloc::Layout::from_size_align(len as usize, crate::heap::DeviceHeap::BASE_ALIGN)
                .map_err(|_| HeapError::InvalidLen { len, reason: "heap layout overflow" })?;
        // SAFETY: layout has non-zero size (validated above).
        let base = unsafe { std::alloc::alloc_zeroed(layout) };
        if base.is_null() {
            return Err(HeapError::ReserveFailed { len, backend: HeapBackendKind::Ram });
        }
        let backend =
            RamBackend { base, len, layout, pretouch: pretouch.resolve(HeapBackendKind::Ram) };
        if backend.pretouch != Pretouch::Lazy {
            backend.commit(0, len);
        }
        Ok(backend)
    }
}

impl HeapBackend for RamBackend {
    fn kind(&self) -> HeapBackendKind {
        HeapBackendKind::Ram
    }
    fn base(&self) -> *mut u8 {
        self.base
    }
    fn len(&self) -> u64 {
        self.len
    }
    fn describe(&self) -> String {
        format!("ram pretouch={}", self.pretouch)
    }
}

impl Drop for RamBackend {
    fn drop(&mut self) {
        // SAFETY: `base` was allocated with exactly this layout in `new`.
        unsafe { std::alloc::dealloc(self.base, self.layout) }
    }
}

// ---------------------------------------------------------------------------
// Mapped backends (Linux).
// ---------------------------------------------------------------------------

/// Minimal raw bindings to the always-linked C library. The workspace is
/// dependency-free by policy (no `libc` crate), and these five calls are the
/// entire surface the mapped backends need. Constants are the x86-64/aarch64
/// Linux values; both backends are compiled only for `target_os = "linux"`.
#[cfg(target_os = "linux")]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_PRIVATE: i32 = 0x02;
    pub const MAP_ANONYMOUS: i32 = 0x20;
    /// Reserve address space without charging it against overcommit limits;
    /// the load-bearing flag of the whole backend.
    pub const MAP_NORESERVE: i32 = 0x4000;
    pub const MADV_HUGEPAGE: i32 = 14;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn madvise(addr: *mut c_void, len: usize, advice: i32) -> i32;
        /// `pid == 0` targets the calling thread.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }

    pub fn map_failed(p: *mut c_void) -> bool {
        p as isize == -1
    }
}

/// RAII anonymous mapping shared by [`MmapBackend`] and [`NumaBackend`].
#[cfg(target_os = "linux")]
struct Map {
    base: *mut u8,
    len: usize,
}

// SAFETY: as for RamBackend — mutation is mediated by the heap discipline.
#[cfg(target_os = "linux")]
unsafe impl Send for Map {}
// SAFETY: see Send.
#[cfg(target_os = "linux")]
unsafe impl Sync for Map {}

#[cfg(target_os = "linux")]
impl Map {
    fn reserve(len: u64, backend: HeapBackendKind) -> Result<Self, HeapError> {
        // SAFETY: plain anonymous reservation; no aliasing, fd unused (-1).
        let p = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len as usize,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS | sys::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if sys::map_failed(p) || p.is_null() {
            return Err(HeapError::ReserveFailed { len, backend });
        }
        Ok(Map { base: p as *mut u8, len: len as usize })
    }
}

#[cfg(target_os = "linux")]
impl Drop for Map {
    fn drop(&mut self) {
        // SAFETY: exactly the mapping created in `reserve`.
        unsafe { sys::munmap(self.base as *mut std::ffi::c_void, self.len) };
    }
}

/// Anonymous `MAP_NORESERVE` mapping: address space up front, physical pages
/// on first touch. This is the backend that runs the paper's actual 8 GiB
/// heap — and larger — on hosts with far less RAM: only touched pages ever
/// commit. Default pre-touch is `Lazy` (see the module docs for the timing
/// caveat); `Full`/`Striped` are available when the size fits RAM and the
/// run is timing-sensitive.
#[cfg(target_os = "linux")]
pub struct MmapBackend {
    map: Map,
    pretouch: Pretouch,
}

#[cfg(target_os = "linux")]
impl MmapBackend {
    /// Reserves `len` bytes and applies the resolved pre-touch policy.
    pub fn new(len: u64, pretouch: Pretouch) -> Result<Self, HeapError> {
        HeapSpec::mmap(len).validate()?;
        let map = Map::reserve(len, HeapBackendKind::Mmap)?;
        let backend = MmapBackend { map, pretouch: pretouch.resolve(HeapBackendKind::Mmap) };
        match backend.pretouch {
            Pretouch::Full => backend.commit(0, len),
            Pretouch::Striped => striped_first_touch(backend.map.base, len as usize),
            _ => {}
        }
        Ok(backend)
    }
}

#[cfg(target_os = "linux")]
impl HeapBackend for MmapBackend {
    fn kind(&self) -> HeapBackendKind {
        HeapBackendKind::Mmap
    }
    fn base(&self) -> *mut u8 {
        self.map.base
    }
    fn len(&self) -> u64 {
        self.map.len as u64
    }
    fn describe(&self) -> String {
        format!("mmap(noreserve) pretouch={}", self.pretouch)
    }
}

/// NUMA-aware mapping for multi-socket timing fidelity: transparent-hugepage
/// advice plus a striped first-touch pass with one worker per NUMA node,
/// each best-effort pinned to its node's CPUs. Linux's first-touch policy
/// then places each 2 MiB stripe on the toucher's node, interleaving the
/// heap so no benchmark thread sees all-remote memory. On single-node hosts
/// this degrades to a parallel `Full` pre-touch — same committed state,
/// honestly described by [`HeapBackend::describe`].
#[cfg(target_os = "linux")]
pub struct NumaBackend {
    map: Map,
    pretouch: Pretouch,
    nodes: u32,
    hugepage: bool,
}

#[cfg(target_os = "linux")]
impl NumaBackend {
    /// Reserves `len` bytes, advises hugepages, and interleaves first touch.
    pub fn new(len: u64, pretouch: Pretouch) -> Result<Self, HeapError> {
        HeapSpec::numa(len).validate()?;
        let map = Map::reserve(len, HeapBackendKind::Numa)?;
        // SAFETY: advice over exactly the mapping just created; failure is
        // non-fatal (THP may be disabled) and recorded, not propagated.
        let hugepage = unsafe {
            sys::madvise(map.base as *mut std::ffi::c_void, map.len, sys::MADV_HUGEPAGE) == 0
        };
        let pretouch = pretouch.resolve(HeapBackendKind::Numa);
        let nodes = numa_nodes().max(1);
        let backend = NumaBackend { map, pretouch, nodes, hugepage };
        match backend.pretouch {
            Pretouch::Full => backend.commit(0, len),
            Pretouch::Striped => striped_first_touch(backend.map.base, len as usize),
            _ => {}
        }
        Ok(backend)
    }

    /// NUMA nodes detected on this host (1 on single-socket machines).
    pub fn nodes(&self) -> u32 {
        self.nodes
    }
}

#[cfg(target_os = "linux")]
impl HeapBackend for NumaBackend {
    fn kind(&self) -> HeapBackendKind {
        HeapBackendKind::Numa
    }
    fn base(&self) -> *mut u8 {
        self.map.base
    }
    fn len(&self) -> u64 {
        self.map.len as u64
    }
    fn describe(&self) -> String {
        format!(
            "numa nodes={} hugepage={} pretouch={}",
            self.nodes,
            if self.hugepage { "advised" } else { "unavailable" },
            self.pretouch
        )
    }
}

/// Number of NUMA nodes, from sysfs; 0 when undetectable.
#[cfg(target_os = "linux")]
fn numa_nodes() -> u32 {
    let Ok(entries) = std::fs::read_dir("/sys/devices/system/node") else { return 0 };
    entries
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name();
            let name = name.to_string_lossy();
            name.strip_prefix("node").is_some_and(|rest| rest.chars().all(|c| c.is_ascii_digit()))
        })
        .count() as u32
}

/// CPUs of NUMA node `node`, from the sysfs `cpulist` (empty when unknown).
#[cfg(target_os = "linux")]
fn node_cpus(node: u32) -> Vec<u32> {
    let path = format!("/sys/devices/system/node/node{node}/cpulist");
    std::fs::read_to_string(path).map(|s| parse_cpu_list(&s)).unwrap_or_default()
}

/// Parses a Linux cpulist string (`"0-3,8,10-11"`) into CPU indices.
pub fn parse_cpu_list(s: &str) -> Vec<u32> {
    let mut cpus = Vec::new();
    for part in s.trim().split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<u32>(), hi.trim().parse::<u32>()) {
                    // Bounded to the kernel's CPU_SETSIZE; a garbage range
                    // must not allocate gigabytes of indices.
                    for c in lo..=hi.min(lo.saturating_add(1023)) {
                        cpus.push(c);
                    }
                }
            }
            None => {
                if let Ok(c) = part.parse::<u32>() {
                    cpus.push(c);
                }
            }
        }
    }
    cpus
}

/// Best-effort pins the calling thread to `cpus` (ignored on failure — the
/// touch still happens, just without placement control).
#[cfg(target_os = "linux")]
fn pin_to_cpus(cpus: &[u32]) {
    if cpus.is_empty() {
        return;
    }
    // cpu_set_t is 1024 bits on Linux.
    let mut mask = [0u64; 16];
    for &c in cpus {
        if (c as usize) < 1024 {
            mask[c as usize / 64] |= 1u64 << (c as usize % 64);
        }
    }
    // SAFETY: pid 0 = calling thread; mask is a valid 128-byte cpu_set_t.
    unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
}

/// 2 MiB stripes — hugepage-sized, so THP-backed regions are touched once
/// per huge page and the interleave granularity matches the page size the
/// kernel actually hands out.
#[cfg(target_os = "linux")]
const STRIPE_BYTES: usize = 2 << 20;

/// Touches every page of `[base, base + len)` from one thread per NUMA
/// node, round-robining 2 MiB stripes, each thread pinned to its node.
#[cfg(target_os = "linux")]
fn striped_first_touch(base: *mut u8, len: usize) {
    let nodes = numa_nodes().max(1) as usize;
    let stripes = len.div_ceil(STRIPE_BYTES);
    if nodes == 1 || stripes < 2 * nodes {
        // Single node (or a heap too small to interleave): touch inline.
        let mut off = 0usize;
        while off < len {
            // SAFETY: in-bounds touch of the anonymous mapping.
            unsafe { touch_zero(base, off) };
            off += PAGE_SIZE;
        }
        return;
    }
    // Raw-pointer capture: wrap in a Send shim for the scoped threads.
    struct BasePtr(*mut u8);
    // SAFETY: each thread touches disjoint stripes of a live mapping.
    unsafe impl Send for BasePtr {}
    // SAFETY: see Send — the touch pattern is disjoint by construction.
    unsafe impl Sync for BasePtr {}
    let shared = BasePtr(base);
    std::thread::scope(|scope| {
        let shared = &shared;
        for node in 0..nodes {
            scope.spawn(move || {
                pin_to_cpus(&node_cpus(node as u32));
                let mut stripe = node;
                while stripe < stripes {
                    let start = stripe * STRIPE_BYTES;
                    let end = (start + STRIPE_BYTES).min(len);
                    let mut off = start;
                    while off < end {
                        // SAFETY: `off < len`; stripes are disjoint between
                        // threads, and the zero touch is idempotent.
                        unsafe { touch_zero(shared.0, off) };
                        off += PAGE_SIZE;
                    }
                    stripe += nodes;
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_fromstr() {
        for kind in HeapBackendKind::ALL {
            assert_eq!(kind.name().parse::<HeapBackendKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!("RAM".parse::<HeapBackendKind>().unwrap(), HeapBackendKind::Ram);
        assert_eq!(" Mmap ".parse::<HeapBackendKind>().unwrap(), HeapBackendKind::Mmap);
        assert!("cuda".parse::<HeapBackendKind>().is_err());
    }

    #[test]
    fn pretouch_parses_and_resolves() {
        assert_eq!("none".parse::<Pretouch>().unwrap(), Pretouch::Lazy);
        assert_eq!("FULL".parse::<Pretouch>().unwrap(), Pretouch::Full);
        assert!("eager".parse::<Pretouch>().is_err());
        assert_eq!(Pretouch::Auto.resolve(HeapBackendKind::Ram), Pretouch::Full);
        assert_eq!(Pretouch::Auto.resolve(HeapBackendKind::Mmap), Pretouch::Lazy);
        assert_eq!(Pretouch::Auto.resolve(HeapBackendKind::Numa), Pretouch::Striped);
        assert_eq!(Pretouch::Full.resolve(HeapBackendKind::Mmap), Pretouch::Full);
    }

    #[test]
    fn spec_validation_rejects_bad_sizes() {
        assert!(HeapSpec::ram(0).validate().is_err());
        assert!(HeapSpec::ram(100).validate().is_err());
        assert!(HeapSpec::ram(4096).validate().is_ok());
        let e = HeapSpec::ram(100).validate().unwrap_err();
        assert!(e.to_string().contains("multiple of 128"), "{e}");
    }

    #[test]
    fn ram_backend_is_zeroed_and_described() {
        let b = RamBackend::new(4096, Pretouch::Auto).unwrap();
        assert_eq!(b.kind(), HeapBackendKind::Ram);
        assert_eq!(b.len(), 4096);
        // SAFETY: in-bounds read of the zeroed slab.
        assert_eq!(unsafe { b.base().add(4095).read() }, 0);
        assert_eq!(b.describe(), "ram pretouch=full");
    }

    #[test]
    fn open_dispatches_by_kind() {
        let b = open(HeapSpec::ram(1024)).unwrap();
        assert_eq!(b.kind(), HeapBackendKind::Ram);
        if HeapBackendKind::Mmap.available() {
            let b = open(HeapSpec::mmap(1024)).unwrap();
            assert_eq!(b.kind(), HeapBackendKind::Mmap);
            assert!(b.describe().contains("noreserve"), "{}", b.describe());
        }
        if HeapBackendKind::Numa.available() {
            let b = open(HeapSpec::numa(1 << 20)).unwrap();
            assert_eq!(b.kind(), HeapBackendKind::Numa);
            assert!(b.describe().starts_with("numa nodes="), "{}", b.describe());
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_backend_reads_back_writes() {
        let b = MmapBackend::new(1 << 20, Pretouch::Auto).unwrap();
        assert_eq!(b.len(), 1 << 20);
        // SAFETY: in-bounds accesses of the private anonymous mapping.
        unsafe {
            assert_eq!(b.base().read(), 0);
            b.base().add(123_456).write(0xab);
            assert_eq!(b.base().add(123_456).read(), 0xab);
        }
        // Aligned for the atomic views.
        assert_eq!(b.base() as usize % crate::heap::DeviceHeap::BASE_ALIGN, 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn mmap_reserves_beyond_plausible_ram_lazily() {
        // 64 GiB of address space: MAP_NORESERVE makes this instant and
        // RSS-free; only the pages the test touches ever commit. Hosts
        // running strict overcommit (vm.overcommit_memory=2) may refuse —
        // that is the typed error path, not a failure of this test.
        let b = match MmapBackend::new(64 << 30, Pretouch::Auto) {
            Ok(b) => b,
            Err(HeapError::ReserveFailed { .. }) => return,
            Err(e) => panic!("unexpected error: {e}"),
        };
        // SAFETY: touching three spread-out in-bounds pages.
        unsafe {
            b.base().write(1);
            b.base().add((32u64 << 30) as usize).write(2);
            b.base().add((64u64 << 30) as usize - 1).write(3);
            assert_eq!(b.base().add((32u64 << 30) as usize).read(), 2);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn numa_backend_commits_striped() {
        let b = NumaBackend::new(8 << 20, Pretouch::Auto).unwrap();
        assert!(b.nodes() >= 1);
        // SAFETY: in-bounds read; striped pre-touch already committed it.
        assert_eq!(unsafe { b.base().add((8 << 20) - 1).read() }, 0);
    }

    #[test]
    fn parse_cpu_list_handles_ranges_and_noise() {
        assert_eq!(parse_cpu_list("0-3,8,10-11\n"), vec![0, 1, 2, 3, 8, 10, 11]);
        assert_eq!(parse_cpu_list("5"), vec![5]);
        assert_eq!(parse_cpu_list(""), Vec::<u32>::new());
        assert_eq!(parse_cpu_list("garbage,2"), vec![2]);
    }

    #[test]
    fn commit_is_clamped_to_the_region() {
        let b = RamBackend::new(4096, Pretouch::Lazy).unwrap();
        b.commit(0, u64::MAX); // must not walk past the end
        b.commit(8192, 4096); // fully out of range: no-op
    }

    #[test]
    fn error_display_names_the_failure() {
        let e = HeapError::ReserveFailed { len: 8 << 30, backend: HeapBackendKind::Mmap };
        assert!(e.to_string().contains("mmap"), "{e}");
        let e = HeapError::Unavailable { backend: HeapBackendKind::Numa, reason: "no linux" };
        assert!(e.to_string().contains("numa"), "{e}");
    }
}
