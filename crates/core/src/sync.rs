//! Atomics facade: `std::sync::atomic` normally, `loom` under `cfg(loom)`.
//!
//! Every crate in the workspace routes its atomics, fences and spin hints
//! through this module instead of importing `std::sync::atomic` directly
//! (the `memlint` `raw-atomic-import` rule enforces this). The payoff: the
//! exact same allocator code compiles in two modes —
//!
//! * **Normal builds** re-export the `std` types; the facade costs nothing.
//! * **`RUSTFLAGS="--cfg loom"` builds** substitute the loom model-checker
//!   types, whose every operation is a scheduling point. Each allocator
//!   crate carries a `#[cfg(all(test, loom))] mod loom_tests` suite that
//!   exhaustively explores thread interleavings of its core protocol at
//!   small bounds (2–3 threads, preemption-bounded).
//!
//! The loom atomics are `repr(transparent)` over the `std` ones, so the
//! in-heap atomic views [`crate::DeviceHeap`] produces by pointer-casting
//! raw memory — and the `Box<[u64]> -> Box<[AtomicU64]>` table transmutes
//! some allocators use — remain sound in both modes, and even heap-resident
//! protocols (header CAS chains, in-heap queues) are model-checkable.
//!
//! What the loom mode explores is the space of *sequentially consistent*
//! interleavings under a preemption bound; it does not model weak-memory
//! reordering. Ordering discipline (which `Ordering` each site needs) is
//! audited statically by `memlint`. DESIGN.md §9 spells out this division
//! of labor.

#[cfg(not(loom))]
pub use std::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

#[cfg(loom)]
pub use loom::sync::atomic::{
    fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
};

/// Spin hints, routed through the model checker under `cfg(loom)` so a
/// spinning thread yields to the peer that can change the awaited state.
pub mod hint {
    #[cfg(not(loom))]
    pub use std::hint::spin_loop;

    #[cfg(loom)]
    pub use loom::hint::spin_loop;
}

/// Thread handling for concurrency tests: model-checked threads under
/// `cfg(loom)`, plain `std` threads otherwise, so the same test body can
/// run as a loom model or as a stress test.
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};

    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};
}

/// Runs `f` under the loom model checker when built with `--cfg loom`;
/// otherwise runs it once, directly. Lets a protocol test double as a plain
/// unit test in normal builds.
#[cfg(loom)]
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    loom::model(f);
}

/// See the `cfg(loom)` variant: without loom this simply invokes `f` once.
#[cfg(not(loom))]
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    f();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_atomics_roundtrip() {
        let a = AtomicU64::new(7);
        assert_eq!(a.load(Ordering::Acquire), 7);
        a.store(9, Ordering::Release);
        assert_eq!(a.swap(11, Ordering::AcqRel), 9);
        assert_eq!(a.compare_exchange(11, 13, Ordering::AcqRel, Ordering::Acquire), Ok(11));
        fence(Ordering::SeqCst);
        assert_eq!(a.load(Ordering::Relaxed), 13);
    }

    #[test]
    fn model_runs_closure_in_both_modes() {
        use std::sync::Arc;
        let hits = Arc::new(AtomicU32::new(0));
        let h = hits.clone();
        model(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.load(Ordering::SeqCst) >= 1);
    }
}
