//! Device pointers: byte offsets into a [`DeviceHeap`](crate::DeviceHeap).
//!
//! On a real GPU the surveyed allocators return raw `void*` into the device
//! heap. In the simulation a pointer is a byte offset into the managed
//! region, which keeps pointers stable, serializable and easy to validate
//! (the fragmentation and out-of-memory test cases of the paper only inspect
//! pointer *values*, never dereference them on the host).

use std::fmt;

/// A pointer into the simulated device heap, expressed as a byte offset.
///
/// `DevicePtr::NULL` plays the role of CUDA's null return from a failed
/// `malloc`. All other values are offsets in `0..heap.len()`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DevicePtr(u64);

impl DevicePtr {
    /// The null pointer (failed allocation / not yet assigned).
    pub const NULL: DevicePtr = DevicePtr(u64::MAX);

    /// Creates a pointer from a byte offset.
    #[inline]
    pub const fn new(offset: u64) -> Self {
        DevicePtr(offset)
    }

    /// The byte offset this pointer designates.
    ///
    /// # Panics
    /// Panics on [`DevicePtr::NULL`]; call [`DevicePtr::is_null`] first when
    /// null is a possible value.
    #[inline]
    pub fn offset(self) -> u64 {
        assert!(!self.is_null(), "offset() called on DevicePtr::NULL");
        self.0
    }

    /// The raw representation (including the null sentinel).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == u64::MAX
    }

    /// Pointer arithmetic: `self + bytes`.
    ///
    /// Named after CUDA-style raw pointer arithmetic rather than
    /// `std::ops::Add` — the operand is a byte count, not another pointer.
    ///
    /// # Panics
    /// Panics on null or on overflow into the null sentinel.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, bytes: u64) -> DevicePtr {
        let off = self.offset().checked_add(bytes).expect("DevicePtr overflow");
        assert_ne!(off, u64::MAX, "DevicePtr arithmetic produced the null sentinel");
        DevicePtr(off)
    }

    /// Returns whether `self` is aligned to `align` bytes (`align` must be a
    /// power of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        !self.is_null() && self.0 & (align - 1) == 0
    }
}

impl fmt::Debug for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "DevicePtr(NULL)")
        } else {
            write!(f, "DevicePtr({:#x})", self.0)
        }
    }
}

impl fmt::Display for DevicePtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for DevicePtr {
    fn default() -> Self {
        DevicePtr::NULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_roundtrip() {
        assert!(DevicePtr::NULL.is_null());
        assert!(!DevicePtr::new(0).is_null());
        assert_eq!(DevicePtr::default(), DevicePtr::NULL);
    }

    #[test]
    fn offset_and_add() {
        let p = DevicePtr::new(128);
        assert_eq!(p.offset(), 128);
        assert_eq!(p.add(64).offset(), 192);
    }

    #[test]
    #[should_panic(expected = "NULL")]
    fn offset_on_null_panics() {
        let _ = DevicePtr::NULL.offset();
    }

    #[test]
    fn alignment() {
        assert!(DevicePtr::new(256).is_aligned(16));
        assert!(!DevicePtr::new(260).is_aligned(16));
        assert!(DevicePtr::new(260).is_aligned(4));
        assert!(!DevicePtr::NULL.is_aligned(4));
    }

    #[test]
    fn ordering_follows_offsets() {
        assert!(DevicePtr::new(4) < DevicePtr::new(8));
        // NULL sorts last, which the fragmentation tracker relies on.
        assert!(DevicePtr::new(u64::MAX - 1) < DevicePtr::NULL);
    }
}
