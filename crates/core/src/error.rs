//! Error type shared by every memory manager in the framework.

use std::fmt;

/// Why an allocation or deallocation request failed.
///
/// The survey treats a returned null pointer / trap as failure; the Rust port
/// surfaces the cause so the out-of-memory test case (Fig. 11b) can
/// distinguish genuine exhaustion from misuse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AllocError {
    /// The manager could not find memory for the request. Carries the
    /// requested size in bytes.
    OutOfMemory(u64),
    /// The requested size is zero or exceeds what this manager supports
    /// (e.g. larger than the manageable region).
    UnsupportedSize(u64),
    /// `free` was handed a pointer this manager does not recognise as a live
    /// allocation of its own.
    InvalidPointer,
    /// The operation is not offered by this manager (e.g. FDGMalloc has no
    /// per-allocation `free`; the Atomic baseline has no `free` at all).
    Unsupported(&'static str),
    /// The manager gave up after exceeding an internal retry bound. The
    /// originals would deadlock or trap here; the port reports it. Carries a
    /// short description of the exhausted search.
    Contention(&'static str),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory(sz) => {
                write!(f, "out of memory allocating {sz} bytes")
            }
            AllocError::UnsupportedSize(sz) => {
                write!(f, "unsupported allocation size: {sz} bytes")
            }
            AllocError::InvalidPointer => write!(f, "invalid pointer passed to free"),
            AllocError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            AllocError::Contention(what) => {
                write!(f, "gave up after excessive contention: {what}")
            }
        }
    }
}

impl std::error::Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(AllocError::OutOfMemory(64).to_string(), "out of memory allocating 64 bytes");
        assert!(AllocError::Unsupported("free").to_string().contains("free"));
        assert!(AllocError::Contention("page search").to_string().contains("page search"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&AllocError::InvalidPointer);
    }
}
