//! # gpumem-core
//!
//! Core abstractions for the GPU dynamic-memory-manager survey reproduction
//! (Winter et al., *"Are Dynamic Memory Managers on GPUs Slow? A Survey and
//! Benchmarks"*, PPoPP 2021).
//!
//! This crate defines the pieces every memory manager and every benchmark
//! shares:
//!
//! * [`DeviceHeap`] — the simulated slab of GPU global memory. One contiguous
//!   host allocation addressed by byte offsets, with *in-heap atomic views*
//!   so allocators can keep their headers and tables inside the managed
//!   region, exactly like their CUDA originals.
//! * [`backend`] — the heap substrate: a [`HeapBackend`] trait with in-RAM,
//!   mmap (`MAP_NORESERVE`, runs the paper's full 8 GiB heap on any host)
//!   and NUMA-interleaved implementations, selected by [`HeapSpec`] and
//!   failing with a typed [`HeapError`].
//! * [`DevicePtr`] — a byte offset into a [`DeviceHeap`] (the survey's
//!   device-pointer equivalent).
//! * [`ThreadCtx`] / [`WarpCtx`] — the identity a simulated GPU thread or
//!   warp carries into an allocation call (thread / lane / warp / block /
//!   SM id). Several allocators hash these ids (ScatterAlloc scatters by SM
//!   id, Reg-Eff-CM keeps one offset per SM, FDGMalloc keys state by warp).
//! * [`DeviceAllocator`] — the unified `malloc`/`free` interface of the
//!   survey's framework, Section 3 of the paper. Warp-level entry points
//!   ([`DeviceAllocator::malloc_warp`]) model warp-aggregated allocation.
//! * [`ManagerInfo`] — the static survey metadata behind Table 1.
//! * [`RegisterFootprint`] — the register-requirement proxy used for the
//!   Section 4.1 comparison (see that type's docs for the methodology).
//! * [`frag`] — fragmentation / address-range measurement (Figure 11a).
//! * [`metrics`] — the contention-observability layer: sharded event
//!   counters ([`Metrics`], [`CounterSnapshot`]) that attribute cost to the
//!   algorithmic structure the paper blames (CAS retries, probe chains,
//!   queue spins, list walks).
//! * [`cache`] — the hot-path caching decorator: [`Cached`] parks recently
//!   freed blocks in per-SM size-class magazines (Halloc's class table
//!   generalized) so repeat allocations skip the inner allocator's shared
//!   metadata, and batches a warp's leftover frees into one inner
//!   publication.
//! * [`sanitize`] — the shadow-heap allocation sanitizer: [`Sanitized`]
//!   wraps any manager and detects overlap, out-of-heap and misaligned
//!   returns, double-/unknown-frees and redzone corruption, collecting
//!   structured [`Violation`]s instead of panicking mid-kernel.
//! * [`trace`] — the event-tracing layer: a per-SM ring-buffer
//!   [`TraceRecorder`] fed by the [`Traced`] wrapper and the executor,
//!   with latency-histogram, heap-occupancy-timeline and Chrome/Perfetto
//!   JSON consumers.
//! * [`telemetry`] — the live-observability plane: a host-thread sampler
//!   that folds counter deltas and trace-ring drains into a bounded
//!   [`Sample`] time-series, with rolling-window SLO evaluation
//!   ([`SloTracker`]) and OpenMetrics / JSON exporters.
//!
//! Everything here is `std`-only; no external dependencies.

pub mod backend;
pub mod cache;
pub mod ctx;
pub mod error;
pub mod frag;
pub mod heap;
pub mod info;
pub mod metrics;
pub mod ptr;
pub mod regs;
pub mod sanitize;
pub mod sync;
pub mod telemetry;
pub mod trace;
pub mod traits;
pub mod util;

pub use backend::{HeapBackend, HeapBackendKind, HeapError, HeapSpec, Pretouch, RamBackend};
pub use cache::{Cached, CachedConfig};
pub use ctx::{ThreadCtx, WarpCtx, WARP_SIZE};
pub use error::AllocError;
pub use frag::{AddressRange, FragmentationStats};
pub use heap::DeviceHeap;
pub use info::{Availability, ManagerInfo, ManagerInfoBuilder, SurveyRow, SURVEY_TABLE};
pub use metrics::{AllocCounters, Counter, CounterSnapshot, Metrics};
pub use ptr::DevicePtr;
pub use regs::RegisterFootprint;
pub use sanitize::{Sanitized, SanitizerConfig, SanitizerReport, Violation, ViolationKind};
pub use telemetry::{
    validate_openmetrics, BoundaryMarker, BreachSpan, Sample, SloMetric, SloOp, SloReport, SloSpec,
    SloTracker, Telemetry, TelemetryConfig, TelemetryServer, TelemetrySink, TimeSeries,
    TELEMETRY_SCHEMA_VERSION,
};
pub use trace::{
    chrome_trace_json, occupancy_timeline, validate_chrome_json, EventKind, LatencyHistogram,
    OccupancySample, OccupancyTimeline, OpLatencies, Trace, TraceEvent, TraceRecorder, Traced,
};
pub use traits::DeviceAllocator;
