//! Static survey metadata — the data behind **Table 1** of the paper.
//!
//! Table 1 lists *all* GPU memory managers the survey found, including the
//! three that could not be evaluated (KMA: OpenCL-only with no public source;
//! DynaSOAr: not a general-purpose allocator; BulkAllocator: no public
//! version exists). The evaluated managers additionally carry a live
//! [`ManagerInfo`] from their [`DeviceAllocator`](crate::DeviceAllocator)
//! implementation.

/// Whether/where the original implementation is available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Availability {
    /// Source is not public.
    NotAvailable,
    /// Part of the CUDA toolkit API.
    CudaApi,
    /// Downloadable from the authors' website.
    Website,
    /// Public GitHub repository.
    GitHub,
}

impl std::fmt::Display for Availability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Availability::NotAvailable => "✗",
            Availability::CudaApi => "CUDA API",
            Availability::Website => "Website",
            Availability::GitHub => "GitHub",
        };
        f.write_str(s)
    }
}

/// Tri-state for the "stable throughout testing" column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stability {
    Stable,
    Unstable,
    Unknown,
}

impl std::fmt::Display for Stability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Stability::Stable => "yes",
            Stability::Unstable => "no",
            Stability::Unknown => "?",
        })
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct SurveyRow {
    /// Citation key in the paper's bibliography, e.g. `[17]`.
    pub reference: &'static str,
    /// Short name used throughout the paper.
    pub short_name: &'static str,
    /// Year of publication.
    pub year: u32,
    /// Where the original can be obtained.
    pub availability: Availability,
    /// Build status: does it build with independent thread scheduling
    /// (`"yes"`), require pre-Volta warp-synchronous codegen (`"<7.0"`), or
    /// something else.
    pub build: &'static str,
    /// Number of allocator variants the system ships.
    pub variants: u32,
    /// Whether it forwards (some) requests to the CUDA-Allocator.
    pub depends_on_cuda_alloc: bool,
    /// Whether it is a general-purpose allocator (vs. warp-level-only /
    /// SOA-object-only designs).
    pub general_purpose: &'static str,
    /// Whether evaluation results are available.
    pub results_available: bool,
    /// Whether performance was stable throughout the survey's testing.
    pub stable: Stability,
    /// Whether this Rust reproduction implements & evaluates it.
    pub evaluated_here: bool,
}

/// The complete Table 1, in the paper's row order.
pub const SURVEY_TABLE: &[SurveyRow] = &[
    SurveyRow {
        reference: "[9]",
        short_name: "XMalloc",
        year: 2010,
        availability: Availability::NotAvailable,
        build: "<7.0",
        variants: 1,
        depends_on_cuda_alloc: true,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Unstable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[13]",
        short_name: "CUDA-Allocator",
        year: 2010,
        availability: Availability::CudaApi,
        build: "yes",
        variants: 1,
        depends_on_cuda_alloc: true,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Stable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[17]",
        short_name: "ScatterAlloc",
        year: 2012,
        availability: Availability::Website,
        build: "<7.0",
        variants: 1,
        depends_on_cuda_alloc: false,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Stable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[20]",
        short_name: "FDGMalloc",
        year: 2013,
        availability: Availability::Website,
        build: "<7.0",
        variants: 1,
        depends_on_cuda_alloc: true,
        general_purpose: "warp-level",
        results_available: false,
        stable: Stability::Unstable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[19]",
        short_name: "Reg-Eff",
        year: 2014,
        availability: Availability::Website,
        build: "<7.0",
        variants: 4,
        depends_on_cuda_alloc: false,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Unstable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[15]",
        short_name: "KMA",
        year: 2014,
        availability: Availability::NotAvailable,
        build: "OpenCL",
        variants: 1,
        depends_on_cuda_alloc: false,
        general_purpose: "yes",
        results_available: false,
        stable: Stability::Unknown,
        evaluated_here: false,
    },
    SurveyRow {
        reference: "[1]",
        short_name: "Halloc",
        year: 2014,
        availability: Availability::GitHub,
        build: "<7.0",
        variants: 1,
        depends_on_cuda_alloc: true,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Stable,
        evaluated_here: true,
    },
    SurveyRow {
        reference: "[16]",
        short_name: "DynaSOAr",
        year: 2019,
        availability: Availability::GitHub,
        build: "yes",
        variants: 1,
        depends_on_cuda_alloc: false,
        general_purpose: "SOA",
        results_available: false,
        stable: Stability::Unknown,
        evaluated_here: false,
    },
    SurveyRow {
        reference: "[7]",
        short_name: "BulkAllocator",
        year: 2019,
        availability: Availability::NotAvailable,
        build: ">7.0",
        variants: 2,
        depends_on_cuda_alloc: false,
        general_purpose: "yes",
        results_available: false,
        stable: Stability::Unknown,
        evaluated_here: false,
    },
    SurveyRow {
        reference: "[21]",
        short_name: "Ouroboros",
        year: 2020,
        availability: Availability::GitHub,
        build: "yes",
        variants: 6,
        depends_on_cuda_alloc: false,
        general_purpose: "yes",
        results_available: true,
        stable: Stability::Stable,
        evaluated_here: true,
    },
];

/// Live metadata a [`DeviceAllocator`](crate::DeviceAllocator) reports about
/// itself — name, variant, and the capability flags the paper's Discussion
/// (§5) and Conclusion (§6) reason about.
///
/// The struct is `#[non_exhaustive]`: allocator crates construct it through
/// [`ManagerInfo::builder`], so new capability flags (such as
/// [`instrumented`](ManagerInfo::instrumented)) can be added without a
/// breaking change rippling through every implementation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct ManagerInfo {
    /// Family name as used in the paper (e.g. `"Ouroboros"`).
    pub family: &'static str,
    /// Variant label, `""` for single-variant managers (e.g. `"VA-P"`).
    pub variant: &'static str,
    /// Whether individual allocations can be freed.
    pub supports_free: bool,
    /// Whether only whole-warp collective allocation is offered (FDGMalloc).
    pub warp_level_only: bool,
    /// Whether the manageable memory can grow at runtime (paper §6:
    /// ScatterAlloc and Ouroboros only).
    pub resizable: bool,
    /// Guaranteed alignment of returned pointers in bytes. The paper notes
    /// Reg-Eff does *not* return 16-byte-aligned memory; everything else
    /// aligns to ≥16.
    pub alignment: u64,
    /// Largest single allocation served without falling back to the
    /// CUDA-Allocator (u64::MAX = unbounded up to heap size).
    pub max_native_size: u64,
    /// Whether oversize requests are relayed to the CUDA-Allocator model.
    pub relays_large_to_cuda: bool,
    /// Whether the hot paths tick the contention counters of
    /// [`crate::metrics`] when a recording handle is attached.
    pub instrumented: bool,
}

impl ManagerInfo {
    /// Starts building an info record. Defaults: no variant, free
    /// supported, thread-level, not resizable, 16 B alignment, unbounded
    /// native size, no CUDA relay, not instrumented.
    pub fn builder(family: &'static str) -> ManagerInfoBuilder {
        ManagerInfoBuilder {
            info: ManagerInfo {
                family,
                variant: "",
                supports_free: true,
                warp_level_only: false,
                resizable: false,
                alignment: 16,
                max_native_size: u64::MAX,
                relays_large_to_cuda: false,
                instrumented: false,
            },
        }
    }

    /// `"Family"` or `"Family-Variant"` — the label used in result CSVs and
    /// plots.
    pub fn label(&self) -> String {
        if self.variant.is_empty() {
            self.family.to_string()
        } else {
            format!("{}-{}", self.family, self.variant)
        }
    }
}

/// Builder for [`ManagerInfo`] — the only way allocator crates construct
/// one (the struct is `#[non_exhaustive]`).
#[derive(Clone, Debug)]
pub struct ManagerInfoBuilder {
    info: ManagerInfo,
}

impl ManagerInfoBuilder {
    /// Sets the variant label (e.g. `"VA-P"`).
    pub fn variant(mut self, variant: &'static str) -> Self {
        self.info.variant = variant;
        self
    }

    /// Sets whether individual allocations can be freed.
    pub fn supports_free(mut self, v: bool) -> Self {
        self.info.supports_free = v;
        self
    }

    /// Sets whether only whole-warp collective allocation is offered.
    pub fn warp_level_only(mut self, v: bool) -> Self {
        self.info.warp_level_only = v;
        self
    }

    /// Sets whether the manageable memory can grow at runtime.
    pub fn resizable(mut self, v: bool) -> Self {
        self.info.resizable = v;
        self
    }

    /// Sets the guaranteed pointer alignment in bytes.
    pub fn alignment(mut self, bytes: u64) -> Self {
        self.info.alignment = bytes;
        self
    }

    /// Sets the largest natively served allocation size.
    pub fn max_native_size(mut self, bytes: u64) -> Self {
        self.info.max_native_size = bytes;
        self
    }

    /// Sets whether oversize requests are relayed to the CUDA-Allocator.
    pub fn relays_large_to_cuda(mut self, v: bool) -> Self {
        self.info.relays_large_to_cuda = v;
        self
    }

    /// Sets whether the hot paths tick contention counters.
    pub fn instrumented(mut self, v: bool) -> Self {
        self.info.instrumented = v;
        self
    }

    /// Finishes the record.
    pub fn build(self) -> ManagerInfo {
        self.info
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_ten_systems() {
        assert_eq!(SURVEY_TABLE.len(), 10);
        let names: Vec<_> = SURVEY_TABLE.iter().map(|r| r.short_name).collect();
        for expected in [
            "XMalloc",
            "CUDA-Allocator",
            "ScatterAlloc",
            "FDGMalloc",
            "Reg-Eff",
            "KMA",
            "Halloc",
            "DynaSOAr",
            "BulkAllocator",
            "Ouroboros",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn evaluated_set_matches_paper() {
        // The paper evaluates: CUDA-Allocator, XMalloc, ScatterAlloc,
        // FDGMalloc (included but crashes), Reg-Eff, Halloc, Ouroboros.
        let evaluated: Vec<_> =
            SURVEY_TABLE.iter().filter(|r| r.evaluated_here).map(|r| r.short_name).collect();
        assert_eq!(evaluated.len(), 7);
        assert!(!evaluated.contains(&"KMA"));
        assert!(!evaluated.contains(&"DynaSOAr"));
        assert!(!evaluated.contains(&"BulkAllocator"));
    }

    #[test]
    fn variant_counts_sum() {
        // 1+1+1+1+4+1+1+1+2+6 variants across the table.
        let total: u32 = SURVEY_TABLE.iter().map(|r| r.variants).sum();
        assert_eq!(total, 19);
    }

    #[test]
    fn label_formatting() {
        let mut info = ManagerInfo::builder("Ouroboros")
            .variant("VA-P")
            .resizable(true)
            .max_native_size(8192)
            .relays_large_to_cuda(true)
            .build();
        assert_eq!(info.label(), "Ouroboros-VA-P");
        info.variant = "";
        assert_eq!(info.label(), "Ouroboros");
    }

    #[test]
    fn builder_defaults_are_conservative() {
        let info = ManagerInfo::builder("X").build();
        assert_eq!(info.family, "X");
        assert_eq!(info.variant, "");
        assert!(info.supports_free);
        assert!(!info.warp_level_only);
        assert!(!info.resizable);
        assert_eq!(info.alignment, 16);
        assert_eq!(info.max_native_size, u64::MAX);
        assert!(!info.relays_large_to_cuda);
        assert!(!info.instrumented);
    }

    #[test]
    fn availability_display() {
        assert_eq!(Availability::GitHub.to_string(), "GitHub");
        assert_eq!(Availability::NotAvailable.to_string(), "✗");
        assert_eq!(Stability::Unknown.to_string(), "?");
    }
}
