//! Decorator default-method forwarding conformance.
//!
//! Rust trait default methods are a decorator hazard: a wrapper that
//! implements only the required methods silently swaps the inner
//! allocator's `malloc_warp`/`free_warp`/`free_warp_all`/`grow` overrides
//! for the trait defaults, which loop `self.malloc`/`self.free` on the
//! *wrapper* — losing warp coalescing and double-instrumenting each lane.
//!
//! The probe here overrides every default method with a reach flag, and
//! each test asserts that calls through a decorator reach the override —
//! not the trait default (which would trip the per-thread flags instead).
//!
//! Two audited, intentional deviations, asserted as such below:
//!
//! * `Sanitized::free_warp` re-implements the lane loop so every lane
//!   passes shadow-state checks; the inner allocator still sees each real
//!   free through `free`, never a bypassed pointer.
//! * `Cached` intercepts thread-level `malloc`/`free` (that is its job);
//!   its misses, evictions, and warp batches must land on the inner
//!   overrides.
//!
//! (The trait has no `spec()` method; capability metadata travels via
//! `info()`, which is a required method and cannot be lost by forwarding.)

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use gpumem_core::{
    AllocError, Cached, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, Sanitized, ThreadCtx, TraceRecorder, Traced, WarpCtx,
};

/// Which of the probe's method bodies actually ran.
#[derive(Default)]
struct Reached {
    malloc: AtomicBool,
    free: AtomicBool,
    malloc_warp: AtomicBool,
    free_warp: AtomicBool,
    free_warp_all: AtomicBool,
    grow: AtomicBool,
}

impl Reached {
    fn hit(flag: &AtomicBool) {
        flag.store(true, Ordering::Relaxed);
    }
    fn got(flag: &AtomicBool) -> bool {
        flag.swap(false, Ordering::Relaxed)
    }
}

/// Bump allocator overriding EVERY default method of [`DeviceAllocator`].
/// The warp overrides allocate directly (never via `self.malloc`), so a
/// decorator that degrades to the trait defaults trips the thread-level
/// flags instead of the warp-level ones.
struct Probe {
    heap: Arc<DeviceHeap>,
    top: AtomicU64,
    reached: Arc<Reached>,
    metrics: Metrics,
}

impl Probe {
    fn new() -> (Self, Arc<Reached>) {
        let reached = Arc::new(Reached::default());
        let probe = Probe {
            heap: Arc::new(DeviceHeap::new(1 << 20)),
            top: AtomicU64::new(0),
            reached: reached.clone(),
            metrics: Metrics::enabled(4),
        };
        (probe, reached)
    }

    fn bump(&self, size: u64) -> Result<DevicePtr, AllocError> {
        let sz = size.max(1).next_multiple_of(16);
        let off = self.top.fetch_add(sz, Ordering::Relaxed);
        if off + sz > self.heap.len() {
            return Err(AllocError::OutOfMemory(size));
        }
        Ok(DevicePtr::new(off))
    }
}

impl DeviceAllocator for Probe {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("Probe").supports_free(true).build()
    }
    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }
    fn malloc(&self, _ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        Reached::hit(&self.reached.malloc);
        self.bump(size)
    }
    fn free(&self, _ctx: &ThreadCtx, _ptr: DevicePtr) -> Result<(), AllocError> {
        Reached::hit(&self.reached.free);
        Ok(())
    }
    fn malloc_warp(
        &self,
        _warp: &WarpCtx,
        sizes: &[u64],
        out: &mut [DevicePtr],
    ) -> Result<(), AllocError> {
        Reached::hit(&self.reached.malloc_warp);
        for (&size, slot) in sizes.iter().zip(out.iter_mut()) {
            *slot = self.bump(size)?;
        }
        Ok(())
    }
    fn free_warp(&self, _warp: &WarpCtx, _ptrs: &[DevicePtr]) -> Result<(), AllocError> {
        Reached::hit(&self.reached.free_warp);
        Ok(())
    }
    fn free_warp_all(&self, _warp: &WarpCtx) -> Result<(), AllocError> {
        Reached::hit(&self.reached.free_warp_all);
        Ok(())
    }
    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint { malloc: 4, free: 2 }
    }
    fn grow(&self, _additional: u64) -> Result<(), AllocError> {
        Reached::hit(&self.reached.grow);
        Ok(())
    }
    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

fn warp() -> WarpCtx {
    WarpCtx { warp: 0, block: 0, sm: 0 }
}

#[test]
fn traced_forwards_every_override() {
    let (probe, reached) = Probe::new();
    let rec = Arc::new(TraceRecorder::new(4, 64));
    let t = Traced::new(probe, rec);
    let w = warp();

    let mut out = [DevicePtr::NULL; 4];
    t.malloc_warp(&w, &[64; 4], &mut out).unwrap();
    assert!(Reached::got(&reached.malloc_warp));
    assert!(!Reached::got(&reached.malloc), "trait-default lane loop leaked through Traced");

    t.free_warp(&w, &out).unwrap();
    assert!(Reached::got(&reached.free_warp));
    assert!(!Reached::got(&reached.free), "trait-default lane loop leaked through Traced");

    t.free_warp_all(&w).unwrap();
    assert!(Reached::got(&reached.free_warp_all));

    t.grow(4096).unwrap();
    assert!(Reached::got(&reached.grow));

    let p = t.malloc(&ThreadCtx::host(), 32).unwrap();
    assert!(Reached::got(&reached.malloc));
    t.free(&ThreadCtx::host(), p).unwrap();
    assert!(Reached::got(&reached.free));
}

#[test]
fn sanitized_forwards_overrides_and_checks_warp_frees_per_lane() {
    let (probe, reached) = Probe::new();
    let s = Sanitized::new(probe);
    let w = warp();

    let mut out = [DevicePtr::NULL; 4];
    s.malloc_warp(&w, &[64; 4], &mut out).unwrap();
    assert!(Reached::got(&reached.malloc_warp));
    assert!(!Reached::got(&reached.malloc));

    // Audited deviation: Sanitized routes warp frees lane-by-lane through
    // its checked `free` path, so the inner allocator sees each real free
    // via `free` — never a batched `free_warp` it could skip checks on.
    s.free_warp(&w, &out).unwrap();
    assert!(Reached::got(&reached.free), "inner must see every real free");
    assert!(
        !Reached::got(&reached.free_warp),
        "Sanitized::free_warp shadow-checks each lane by design"
    );

    s.free_warp_all(&w).unwrap();
    assert!(Reached::got(&reached.free_warp_all));

    s.grow(4096).unwrap();
    assert!(Reached::got(&reached.grow));

    assert!(s.take_report().recorded.is_empty());
}

#[test]
fn cached_forwards_overrides_on_miss_and_bypass() {
    let (probe, reached) = Probe::new();
    let c = Cached::new(probe, 1);
    assert!(c.is_caching());
    let w = warp();

    // Cold magazines: the whole cacheable warp forwards to the inner
    // warp override intact (not lane-by-lane).
    let mut out = [DevicePtr::NULL; 4];
    c.malloc_warp(&w, &[64; 4], &mut out).unwrap();
    assert!(Reached::got(&reached.malloc_warp));
    assert!(!Reached::got(&reached.malloc), "miss must forward the intact warp");

    // Oversize (uncacheable) pointers pass through: one batched inner
    // free_warp, no per-lane inner.free calls.
    let big = c.malloc(&ThreadCtx::host(), 8192).unwrap();
    assert!(Reached::got(&reached.malloc));
    c.free_warp(&w, &[big]).unwrap();
    assert!(Reached::got(&reached.free_warp), "uncached frees publish as one warp batch");
    assert!(!Reached::got(&reached.free));

    c.free_warp_all(&w).unwrap();
    assert!(Reached::got(&reached.free_warp_all));

    c.grow(4096).unwrap();
    assert!(Reached::got(&reached.grow));
}

#[test]
fn stacked_traced_cached_reaches_the_real_allocator() {
    // The registry's production wrap order: Traced<Cached<Probe>>.
    let (probe, reached) = Probe::new();
    let rec = Arc::new(TraceRecorder::new(4, 64));
    let stack = Traced::new(Cached::new(probe, 1), rec);
    let ctx = ThreadCtx::host();

    let p = stack.malloc(&ctx, 64).unwrap(); // cold: miss reaches Probe
    assert!(Reached::got(&reached.malloc));
    stack.free(&ctx, p).unwrap(); // parks in the magazine
    assert!(!Reached::got(&reached.free), "parked free must not reach the inner allocator yet");
    let q = stack.malloc(&ctx, 64).unwrap(); // magazine hit
    assert_eq!(q, p);
    assert!(!Reached::got(&reached.malloc), "magazine hit must bypass the inner allocator");

    stack.free_warp_all(&warp()).unwrap();
    assert!(Reached::got(&reached.free_warp_all), "forwarding must survive two layers");

    stack.free(&ctx, q).unwrap(); // parks again, so the drop has work to do
    assert!(!Reached::got(&reached.free));
    drop(stack); // Cached's drop drains the parked block back to Probe
    assert!(Reached::got(&reached.free), "flush-on-drop returns parked blocks to the inner");
}
