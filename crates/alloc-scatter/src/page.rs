//! Per-page state and the page-level chunk allocation protocol.
//!
//! Each page serves chunks of one size, fixed at the page's first use
//! (paper §2.3: "Each page can be split into equally sized chunks, this
//! chunk size is set at the first allocation from a page"). Free chunks are
//! tracked in a 32-bit usage field; pages holding more than 32 chunks add a
//! second hierarchy level *on the page itself*, "allowing for a maximum of
//! 1024 chunks per page".
//!
//! Side metadata per page (kept outside the manageable region, like the
//! original's page usage table): the chunk size, the allocated-chunk count,
//! and the first-level 32-bit usage/fullness word.

use gpumem_core::sync::{AtomicU32, Ordering};

use gpumem_core::DeviceHeap;

/// Chunk-size metadata sentinel: page is free / unclaimed.
pub const CS_FREE: u32 = 0;
/// Claimed, still being initialised (setup flag OR'd onto the chunk size).
pub const CS_SETUP: u32 = 0x8000_0000;
/// First page of a multi-page allocation.
pub const CS_MULTI_HEAD: u32 = 0xFFFF_FFFF;
/// Continuation page of a multi-page allocation.
pub const CS_MULTI_BODY: u32 = 0xFFFF_FFFE;
/// Count metadata sentinel: page is locked for reset.
pub const COUNT_LOCK: u32 = 0x4000_0000;

/// Hard limit from the paper: at most 1024 chunks per page.
pub const MAX_CHUNKS: u32 = 1024;

/// Geometry of a page once a chunk size is chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageLayout {
    /// Chunk size in bytes (multiple of 16).
    pub chunk_size: u32,
    /// Number of chunks the page holds.
    pub chunks: u32,
    /// Bytes reserved at the page start for the on-page second-level bit
    /// field (0 when the first-level word suffices), rounded to 16 so
    /// payloads stay 16-byte aligned.
    pub table_bytes: u32,
}

impl PageLayout {
    /// Computes the layout for `chunk_size` on a page of `page_size` bytes.
    pub fn new(chunk_size: u32, page_size: u32) -> Self {
        debug_assert!(chunk_size.is_multiple_of(16) && chunk_size > 0);
        debug_assert!(chunk_size <= page_size);
        let naive = (page_size / chunk_size).min(MAX_CHUNKS);
        if naive <= 32 {
            return PageLayout { chunk_size, chunks: naive, table_bytes: 0 };
        }
        // Second hierarchy level on the page: one u32 per group of 32.
        let groups = naive.div_ceil(32);
        let table_bytes = (groups * 4).div_ceil(16) * 16;
        let chunks = ((page_size - table_bytes) / chunk_size).min(MAX_CHUNKS);
        PageLayout { chunk_size, chunks, table_bytes }
    }

    /// Number of second-level groups (0 when the page is single-level).
    pub fn groups(&self) -> u32 {
        if self.table_bytes == 0 {
            0
        } else {
            self.chunks.div_ceil(32)
        }
    }

    /// Valid-bit mask for group `g` (all groups full except a partial tail).
    pub fn group_mask(&self, g: u32) -> u32 {
        let remaining = self.chunks - g * 32;
        if remaining >= 32 {
            u32::MAX
        } else {
            (1u32 << remaining) - 1
        }
    }

    /// Byte offset of chunk `idx` within its page.
    pub fn chunk_offset(&self, idx: u32) -> u64 {
        self.table_bytes as u64 + idx as u64 * self.chunk_size as u64
    }
}

/// Side metadata arrays, one entry per page of the manageable memory.
pub struct PageMeta {
    /// Chunk size serving this page (`CS_*` sentinels above).
    pub chunk_size: Box<[AtomicU32]>,
    /// Allocated chunks on the page (or multi-page length for a
    /// `CS_MULTI_HEAD` page; `COUNT_LOCK` while resetting).
    pub count: Box<[AtomicU32]>,
    /// First level of the usage hierarchy: chunk bits (≤ 32 chunks) or
    /// group-full bits (> 32 chunks).
    pub usage: Box<[AtomicU32]>,
}

impl PageMeta {
    pub fn new(total_pages: usize) -> Self {
        let mk = || (0..total_pages).map(|_| AtomicU32::new(0)).collect();
        PageMeta { chunk_size: mk(), count: mk(), usage: mk() }
    }
}

/// Contention tally of one page-level operation, fed into the
/// contention-observability layer by the caller.
#[derive(Clone, Copy, Debug, Default)]
pub struct PageStats {
    /// Lost CAS attempts: chunk-size claims, count reservations and usage
    /// bit claims that another thread won first.
    pub cas_retries: u64,
    /// Bit-search steps: usage-word loads and group probes.
    pub probe_steps: u64,
}

/// Outcome of a page-level allocation attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum PageAlloc {
    /// Allocated chunk `idx`; `made_full` reports whether this allocation
    /// filled the page (for region bookkeeping).
    Success { chunk_idx: u32, made_full: bool },
    /// Page serves a different chunk size (or is mid-setup / multi-page).
    Mismatch,
    /// Page full (or lost every race).
    Full,
}

/// Attempts to allocate one chunk of `layout.chunk_size` from `page_idx`.
///
/// `hash` seeds the start position of the bit search (ScatterAlloc scatters
/// within the page as well as across pages). `page_base` is the page's byte
/// offset in the heap, needed for the on-page second-level table.
pub fn try_alloc_on_page(
    heap: &DeviceHeap,
    meta: &PageMeta,
    page_idx: usize,
    page_base: u64,
    layout: PageLayout,
    hash: u64,
) -> PageAlloc {
    let mut stats = PageStats::default();
    try_alloc_on_page_with(heap, meta, page_idx, page_base, layout, hash, &mut stats)
}

/// [`try_alloc_on_page`] that also tallies lost CAS attempts and bit-search
/// steps into `stats`.
pub fn try_alloc_on_page_with(
    heap: &DeviceHeap,
    meta: &PageMeta,
    page_idx: usize,
    page_base: u64,
    layout: PageLayout,
    hash: u64,
    stats: &mut PageStats,
) -> PageAlloc {
    // Claim-or-match the chunk size.
    let cs_meta = &meta.chunk_size[page_idx];
    let current = cs_meta.load(Ordering::Acquire);
    if current == CS_FREE {
        match cs_meta.compare_exchange(
            CS_FREE,
            layout.chunk_size | CS_SETUP,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // We own setup: initialise usage words, then publish.
                init_page(heap, meta, page_idx, page_base, layout);
                cs_meta.store(layout.chunk_size, Ordering::Release);
            }
            Err(actual) => {
                stats.cas_retries += 1;
                if actual != layout.chunk_size {
                    return PageAlloc::Mismatch;
                }
            }
        }
    } else if current != layout.chunk_size {
        return PageAlloc::Mismatch;
    }

    // Reserve a slot in the count.
    let count = &meta.count[page_idx];
    let mut c = count.load(Ordering::Acquire);
    loop {
        if c >= layout.chunks {
            // Full, locked for reset, or mid-reset: all mean "not here".
            return PageAlloc::Full;
        }
        match count.compare_exchange_weak(c, c + 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => break,
            Err(actual) => {
                stats.cas_retries += 1;
                c = actual;
            }
        }
    }
    let made_full = c + 1 == layout.chunks;

    // Post-reservation validation: between the chunk-size match and the
    // count reservation the page may have been reset and re-claimed for a
    // different chunk size. The reservation blocks further resets (they
    // CAS the count from zero), so a matching size here is stable.
    if cs_meta.load(Ordering::Acquire) != layout.chunk_size {
        count.fetch_sub(1, Ordering::AcqRel);
        return PageAlloc::Mismatch;
    }

    // Find and set a free bit.
    let found = if layout.table_bytes == 0 {
        find_bit_single(&meta.usage[page_idx], layout, hash, stats)
    } else {
        find_bit_hierarchical(heap, &meta.usage[page_idx], page_base, layout, hash, stats)
    };
    match found {
        Some(idx) => PageAlloc::Success { chunk_idx: idx, made_full },
        None => {
            // Raced out of every candidate bit: give the reservation back.
            count.fetch_sub(1, Ordering::AcqRel);
            PageAlloc::Full
        }
    }
}

fn init_page(
    heap: &DeviceHeap,
    meta: &PageMeta,
    page_idx: usize,
    page_base: u64,
    layout: PageLayout,
) {
    if layout.table_bytes == 0 {
        // Invalid trailing bits pre-set so the free mask is just `!usage`.
        let valid = layout.group_mask(0);
        meta.usage[page_idx].store(!valid, Ordering::Release);
    } else {
        meta.usage[page_idx].store(0, Ordering::Release);
        for g in 0..layout.groups() {
            let valid = layout.group_mask(g);
            heap.atomic_u32(page_base + g as u64 * 4).store(!valid, Ordering::Release);
        }
    }
}

/// Bit search in the single first-level word (≤ 32 chunks).
fn find_bit_single(
    usage: &AtomicU32,
    layout: PageLayout,
    hash: u64,
    stats: &mut PageStats,
) -> Option<u32> {
    let start = (hash % layout.chunks as u64) as u32;
    // First attempt is blind at the hashed spot, as in ScatterAlloc's
    // published kernel: atomicOr first, then inspect the returned mask.
    // A hash collision with any earlier allocation is a lost claim.
    stats.probe_steps += 1;
    if usage.fetch_or(1 << start, Ordering::AcqRel) & (1 << start) == 0 {
        return Some(start);
    }
    stats.cas_retries += 1;
    for _ in 0..64 {
        stats.probe_steps += 1;
        let w = usage.load(Ordering::Acquire);
        let free = !w;
        if free == 0 {
            return None;
        }
        let bit = pick_bit(free, start);
        if usage.fetch_or(1 << bit, Ordering::AcqRel) & (1 << bit) == 0 {
            return Some(bit);
        }
        stats.cas_retries += 1;
    }
    None
}

/// Bit search over the on-page second-level words, guided by the
/// first-level group-full bits (> 32 chunks).
fn find_bit_hierarchical(
    heap: &DeviceHeap,
    first_level: &AtomicU32,
    page_base: u64,
    layout: PageLayout,
    hash: u64,
    stats: &mut PageStats,
) -> Option<u32> {
    let groups = layout.groups();
    let start_group = (hash % groups as u64) as u32;
    for probe in 0..groups * 2 {
        stats.probe_steps += 1;
        let g = (start_group + probe) % groups;
        if first_level.load(Ordering::Acquire) & (1 << g) != 0 {
            continue; // group marked full
        }
        let word = heap.atomic_u32(page_base + g as u64 * 4);
        // Blind attempt at the hashed in-word spot (invalid trailing bits
        // are pre-set, so a stray spot simply loses).
        let spot = (hash >> 5) as u32 % 32;
        stats.probe_steps += 1;
        let prev = word.fetch_or(1 << spot, Ordering::AcqRel);
        if prev & (1 << spot) == 0 {
            if (prev | (1 << spot)) == u32::MAX {
                first_level.fetch_or(1 << g, Ordering::AcqRel);
            }
            return Some(g * 32 + spot);
        }
        stats.cas_retries += 1;
        for _ in 0..32 {
            stats.probe_steps += 1;
            let w = word.load(Ordering::Acquire);
            let free = !w;
            if free == 0 {
                // Mark the group full so later searches skip it.
                first_level.fetch_or(1 << g, Ordering::AcqRel);
                break;
            }
            let bit = pick_bit(free, (hash >> 5) as u32 % 32);
            if word.fetch_or(1 << bit, Ordering::AcqRel) & (1 << bit) == 0 {
                if (w | (1 << bit)) == u32::MAX {
                    first_level.fetch_or(1 << g, Ordering::AcqRel);
                }
                return Some(g * 32 + bit);
            }
            stats.cas_retries += 1;
        }
    }
    None
}

/// Picks a set bit of `free`, preferring the first set bit at or after
/// `start` (wrap-around otherwise) — the local-clustering behaviour of
/// ScatterAlloc's in-page hashing.
#[inline]
fn pick_bit(free: u32, start: u32) -> u32 {
    let start = start % 32;
    let rotated = free.rotate_right(start);
    (rotated.trailing_zeros() + start) % 32
}

/// Frees chunk `chunk_idx` on `page_idx`. Returns the page's new count.
/// `Err(())` flags a double free; the caller maps it onto its own error type.
#[allow(clippy::result_unit_err)]
pub fn free_on_page(
    heap: &DeviceHeap,
    meta: &PageMeta,
    page_idx: usize,
    page_base: u64,
    layout: PageLayout,
    chunk_idx: u32,
) -> Result<FreeOutcome, ()> {
    // Clear the bit first, then drop the count (mirror of alloc order).
    if layout.table_bytes == 0 {
        let prev = meta.usage[page_idx].fetch_and(!(1 << chunk_idx), Ordering::AcqRel);
        if prev & (1 << chunk_idx) == 0 {
            return Err(()); // double free
        }
    } else {
        let g = chunk_idx / 32;
        let bit = chunk_idx % 32;
        let word = heap.atomic_u32(page_base + g as u64 * 4);
        let prev = word.fetch_and(!(1 << bit), Ordering::AcqRel);
        if prev & (1 << bit) == 0 {
            return Err(());
        }
        // Group can no longer be full.
        meta.usage[page_idx].fetch_and(!(1 << g), Ordering::AcqRel);
    }
    let prev_count = meta.count[page_idx].fetch_sub(1, Ordering::AcqRel);
    Ok(FreeOutcome { was_full: prev_count == layout.chunks, now_empty: prev_count == 1 })
}

/// What a page-level free did, for region/SB bookkeeping.
#[derive(Debug, PartialEq, Eq)]
pub struct FreeOutcome {
    /// The page was full before this free (region fullness must drop).
    pub was_full: bool,
    /// The page holds no chunks anymore (candidate for reset).
    pub now_empty: bool,
}

/// Attempts to return an empty page to the free state so it can serve a new
/// chunk size (paper: "Pages are reusable once all chunks on it have been
/// freed again"). Returns whether the reset won.
pub fn try_reset_page(meta: &PageMeta, page_idx: usize) -> bool {
    let count = &meta.count[page_idx];
    if count.compare_exchange(0, COUNT_LOCK, Ordering::AcqRel, Ordering::Acquire).is_err() {
        return false;
    }
    // The count lock only blocks *reservations*; storing `CS_FREE` instantly
    // re-opens the page to a claim-or-match CAS, whose winner re-initialises
    // `usage` (pre-setting the invalid trailing bits). So `usage` must be
    // cleared BEFORE the chunk size is republished — the original order
    // (`CS_FREE` first, `usage` second) let this reset clobber the new
    // claimant's init, marking out-of-range chunk bits free and handing out
    // chunk indices past the page capacity. Model-checked in `loom_tests::
    // reset_vs_claim_never_corrupts_usage`.
    meta.usage[page_idx].store(0, Ordering::Release);
    meta.chunk_size[page_idx].store(CS_FREE, Ordering::Release);
    count.store(0, Ordering::Release);
    true
}

/// Model-checked interleaving suites (built with `RUSTFLAGS="--cfg loom"`).
///
/// Each test explores every schedule of a 2-thread protocol interaction at a
/// preemption bound; invariants are asserted after all threads join.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::{model, thread};
    use std::sync::Arc;

    const PAGE: u32 = 4096;

    /// Regression for the `try_reset_page` ordering bug: a reset racing a
    /// re-claim (different chunk size) must never clobber the claimant's
    /// usage initialisation. With the original store order (`CS_FREE`
    /// published before `usage` cleared) the claimant's pre-set invalid
    /// trailing bits get wiped, so the typed page ends up with out-of-range
    /// chunk bits marked free — this model finds that within two
    /// preemptions.
    #[test]
    fn reset_vs_claim_never_corrupts_usage() {
        model(|| {
            let heap = Arc::new(gpumem_core::DeviceHeap::new(PAGE as u64));
            let meta = Arc::new(PageMeta::new(1));
            let l_old = PageLayout::new(1024, PAGE); // 4 chunks
            let l_new = PageLayout::new(512, PAGE); // 8 chunks
                                                    // Page typed at 1024B, one chunk allocated and freed again:
                                                    // empty-but-typed, the precondition for a reset.
            let PageAlloc::Success { chunk_idx, .. } =
                try_alloc_on_page(&heap, &meta, 0, 0, l_old, 0)
            else {
                panic!("seed alloc failed");
            };
            free_on_page(&heap, &meta, 0, 0, l_old, chunk_idx).unwrap();

            let resetter = {
                let meta = meta.clone();
                thread::spawn(move || try_reset_page(&meta, 0))
            };
            let claimer = {
                let (heap, meta) = (heap.clone(), meta.clone());
                thread::spawn(move || try_alloc_on_page(&heap, &meta, 0, 0, l_new, 1))
            };
            let _reset_won = resetter.join().unwrap();
            let claim = claimer.join().unwrap();

            let cs = meta.chunk_size[0].load(Ordering::Acquire);
            let usage = meta.usage[0].load(Ordering::Acquire);
            if cs == l_new.chunk_size {
                // The claimant re-typed the page: its invalid-trailing-bit
                // guard must have survived the concurrent reset.
                let invalid = !l_new.group_mask(0);
                assert_eq!(
                    usage & invalid,
                    invalid,
                    "reset clobbered the claimant's usage init (usage={usage:#010x})"
                );
            }
            if let PageAlloc::Success { chunk_idx, .. } = claim {
                assert!(chunk_idx < l_new.chunks, "chunk index past page capacity");
            }
        });
    }

    /// Two threads race to type a free page with *different* chunk sizes:
    /// exactly one size wins, the loser observes `Mismatch`, and the final
    /// usage word is consistent with the winner's layout.
    #[test]
    fn concurrent_claims_agree_on_one_size() {
        model(|| {
            let heap = Arc::new(gpumem_core::DeviceHeap::new(PAGE as u64));
            let meta = Arc::new(PageMeta::new(1));
            let l_a = PageLayout::new(512, PAGE);
            let l_b = PageLayout::new(1024, PAGE);
            let spawn_claim = |l: PageLayout| {
                let (heap, meta) = (heap.clone(), meta.clone());
                thread::spawn(move || try_alloc_on_page(&heap, &meta, 0, 0, l, 0))
            };
            let ha = spawn_claim(l_a);
            let hb = spawn_claim(l_b);
            let ra = ha.join().unwrap();
            let rb = hb.join().unwrap();

            let cs = meta.chunk_size[0].load(Ordering::Acquire);
            assert!(
                cs == l_a.chunk_size || cs == l_b.chunk_size,
                "page typed with neither size: {cs:#x}"
            );
            let (winner, loser) = if cs == l_a.chunk_size { (&ra, &rb) } else { (&rb, &ra) };
            assert!(
                matches!(winner, PageAlloc::Success { chunk_idx, .. } if *chunk_idx < MAX_CHUNKS),
                "size winner must allocate: {winner:?}"
            );
            assert_eq!(*loser, PageAlloc::Mismatch, "size loser must see Mismatch");
            let winner_layout = if cs == l_a.chunk_size { l_a } else { l_b };
            let invalid = !winner_layout.group_mask(0);
            let usage = meta.usage[0].load(Ordering::Acquire);
            assert_eq!(usage & invalid, invalid, "invalid bits must stay set");
        });
    }

    /// Concurrent allocations on an already-typed page claim distinct bits
    /// (CAS-claim vs. CAS-claim), and a concurrent free of a third chunk
    /// never disturbs them (CAS-claim vs. free overlap).
    #[test]
    fn bit_claims_exclusive_under_concurrent_free() {
        model(|| {
            let heap = Arc::new(gpumem_core::DeviceHeap::new(PAGE as u64));
            let meta = Arc::new(PageMeta::new(1));
            let l = PageLayout::new(512, PAGE); // 8 chunks, single level
                                                // Type the page and pre-allocate one chunk to free concurrently.
            let PageAlloc::Success { chunk_idx: pre, .. } =
                try_alloc_on_page(&heap, &meta, 0, 0, l, 7)
            else {
                panic!("seed alloc failed");
            };
            let freeer = {
                let (heap, meta) = (heap.clone(), meta.clone());
                thread::spawn(move || free_on_page(&heap, &meta, 0, 0, l, pre).unwrap())
            };
            let alloc_a = {
                let (heap, meta) = (heap.clone(), meta.clone());
                thread::spawn(move || try_alloc_on_page(&heap, &meta, 0, 0, l, 2))
            };
            let alloc_b = {
                let (heap, meta) = (heap.clone(), meta.clone());
                thread::spawn(move || try_alloc_on_page(&heap, &meta, 0, 0, l, 2))
            };
            freeer.join().unwrap();
            let ra = alloc_a.join().unwrap();
            let rb = alloc_b.join().unwrap();
            if let (
                PageAlloc::Success { chunk_idx: a, .. },
                PageAlloc::Success { chunk_idx: b, .. },
            ) = (&ra, &rb)
            {
                assert_ne!(a, b, "two allocations handed out the same chunk");
            }
            for r in [&ra, &rb] {
                if let PageAlloc::Success { chunk_idx, .. } = r {
                    assert!(*chunk_idx < l.chunks);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: u32 = 4096;

    #[test]
    fn layout_small_chunks_use_hierarchy() {
        let l = PageLayout::new(16, PAGE);
        assert!(l.table_bytes > 0);
        assert!(l.chunks > 32);
        assert!(l.chunks <= 256);
        // Payload region must fit.
        assert!(l.table_bytes as u64 + l.chunks as u64 * 16 <= PAGE as u64);
    }

    #[test]
    fn layout_large_chunks_single_level() {
        let l = PageLayout::new(256, PAGE);
        assert_eq!(l.table_bytes, 0);
        assert_eq!(l.chunks, 16);
        assert_eq!(l.groups(), 0);
        let l = PageLayout::new(4096, PAGE);
        assert_eq!(l.chunks, 1);
    }

    #[test]
    fn layout_caps_at_1024_chunks() {
        let l = PageLayout::new(16, 64 * 1024);
        assert!(l.chunks <= MAX_CHUNKS);
    }

    #[test]
    fn group_masks_handle_partial_tail() {
        let l = PageLayout::new(16, PAGE);
        let g_last = l.groups() - 1;
        let tail = l.chunks % 32;
        if tail != 0 {
            assert_eq!(l.group_mask(g_last), (1 << tail) - 1);
        }
        assert_eq!(l.group_mask(0), u32::MAX);
    }

    #[test]
    fn pick_bit_prefers_start() {
        assert_eq!(pick_bit(0b1111, 2), 2);
        assert_eq!(pick_bit(0b0011, 2), 0, "wraps past start");
        assert_eq!(pick_bit(1 << 31, 0), 31);
    }

    fn setup(pages: usize) -> (DeviceHeap, PageMeta) {
        (DeviceHeap::new(pages as u64 * PAGE as u64), PageMeta::new(pages))
    }

    #[test]
    fn alloc_free_roundtrip_single_level() {
        let (heap, meta) = setup(2);
        let l = PageLayout::new(512, PAGE);
        let r = try_alloc_on_page(&heap, &meta, 0, 0, l, 3);
        let PageAlloc::Success { chunk_idx, made_full } = r else { panic!("{r:?}") };
        assert!(!made_full);
        assert_eq!(chunk_idx, 3, "hash seeds the bit position");
        let out = free_on_page(&heap, &meta, 0, 0, l, chunk_idx).unwrap();
        assert!(out.now_empty);
        assert!(!out.was_full);
    }

    #[test]
    fn page_fills_exactly_to_capacity() {
        let (heap, meta) = setup(1);
        let l = PageLayout::new(1024, PAGE); // 4 chunks
        let mut got = Vec::new();
        for i in 0..4 {
            match try_alloc_on_page(&heap, &meta, 0, 0, l, i) {
                PageAlloc::Success { chunk_idx, made_full } => {
                    got.push(chunk_idx);
                    assert_eq!(made_full, i == 3);
                }
                other => panic!("alloc {i}: {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(try_alloc_on_page(&heap, &meta, 0, 0, l, 0), PageAlloc::Full);
    }

    #[test]
    fn mismatched_chunk_size_rejected() {
        let (heap, meta) = setup(1);
        let l1 = PageLayout::new(256, PAGE);
        let l2 = PageLayout::new(512, PAGE);
        assert!(matches!(try_alloc_on_page(&heap, &meta, 0, 0, l1, 0), PageAlloc::Success { .. }));
        assert_eq!(try_alloc_on_page(&heap, &meta, 0, 0, l2, 0), PageAlloc::Mismatch);
    }

    #[test]
    fn hierarchical_page_serves_all_chunks() {
        let (heap, meta) = setup(1);
        let l = PageLayout::new(16, PAGE);
        let mut seen = std::collections::HashSet::new();
        for i in 0..l.chunks {
            match try_alloc_on_page(&heap, &meta, 0, 0, l, (i * 7) as u64) {
                PageAlloc::Success { chunk_idx, .. } => {
                    assert!(seen.insert(chunk_idx), "duplicate chunk {chunk_idx}");
                }
                other => panic!("alloc {i}: {other:?}"),
            }
        }
        assert_eq!(try_alloc_on_page(&heap, &meta, 0, 0, l, 0), PageAlloc::Full);
    }

    #[test]
    fn hierarchical_free_reopens_group() {
        let (heap, meta) = setup(1);
        let l = PageLayout::new(16, PAGE);
        for i in 0..l.chunks {
            assert!(matches!(
                try_alloc_on_page(&heap, &meta, 0, 0, l, i as u64),
                PageAlloc::Success { .. }
            ));
        }
        let out = free_on_page(&heap, &meta, 0, 0, l, 40).unwrap();
        assert!(out.was_full);
        match try_alloc_on_page(&heap, &meta, 0, 0, l, 0) {
            PageAlloc::Success { chunk_idx, made_full } => {
                assert_eq!(chunk_idx, 40);
                assert!(made_full);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn double_free_detected_on_page() {
        let (heap, meta) = setup(1);
        let l = PageLayout::new(512, PAGE);
        let PageAlloc::Success { chunk_idx, .. } = try_alloc_on_page(&heap, &meta, 0, 0, l, 0)
        else {
            panic!()
        };
        free_on_page(&heap, &meta, 0, 0, l, chunk_idx).unwrap();
        assert!(free_on_page(&heap, &meta, 0, 0, l, chunk_idx).is_err());
    }

    #[test]
    fn reset_returns_page_to_free_state() {
        let (heap, meta) = setup(1);
        let l = PageLayout::new(256, PAGE);
        let PageAlloc::Success { chunk_idx, .. } = try_alloc_on_page(&heap, &meta, 0, 0, l, 5)
        else {
            panic!()
        };
        assert!(!try_reset_page(&meta, 0), "live page must not reset");
        free_on_page(&heap, &meta, 0, 0, l, chunk_idx).unwrap();
        assert!(try_reset_page(&meta, 0));
        // The page now accepts a different chunk size.
        let l2 = PageLayout::new(1024, PAGE);
        assert!(matches!(try_alloc_on_page(&heap, &meta, 0, 0, l2, 0), PageAlloc::Success { .. }));
    }

    #[test]
    fn concurrent_page_allocs_are_unique() {
        let (heap, meta) = setup(1);
        let heap = std::sync::Arc::new(heap);
        let meta = std::sync::Arc::new(meta);
        let l = PageLayout::new(16, PAGE);
        let mut handles = Vec::new();
        for t in 0..4 {
            let heap = heap.clone();
            let meta = meta.clone();
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..(l.chunks / 4) {
                    if let PageAlloc::Success { chunk_idx, .. } =
                        try_alloc_on_page(&heap, &meta, 0, 0, l, (t * 31 + i) as u64)
                    {
                        got.push(chunk_idx);
                    }
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "duplicate chunk indices under contention");
    }
}
