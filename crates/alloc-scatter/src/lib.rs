//! # alloc-scatter — ScatterAlloc (Steinberger et al., 2012)
//!
//! Paper §2.3: ScatterAlloc "addresses the problem of collisions during
//! allocation by scattering the allocation requests across its memory
//! regions". The design, reproduced here:
//!
//! * Memory is split into fixed-size **pages** (4 KiB) grouped into
//!   **Super Blocks** organised in a list; one Super Block is *active* and
//!   allocation moves to the next once it passes a fill level.
//! * Every page serves chunks of one size, fixed at first use; free chunks
//!   are tracked by a 32-bit **page usage table** with a second hierarchy
//!   level on the page itself for up to 1024 chunks per page (`page`
//!   module).
//! * A **hash function** `p = (S_req · k_S + mp · k_mp) mod #pages`
//!   scatters requests across pages by request size and multiprocessor id;
//!   collisions fall back to linear probing, which still clusters chunks of
//!   the same size locally.
//! * Super Blocks are subdivided into **regions** whose fill counters let
//!   the search reject a full region quickly.
//! * Requests that do not fit on one page are served as **multiple
//!   consecutive pages from specially reserved Super Blocks**.
//! * The manageable memory can **grow at runtime** (`grow`), one of
//!   ScatterAlloc's distinguishing features in the survey's conclusion.

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use gpumem_core::sync::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use gpumem_core::util::align_up;
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx,
};

pub mod page;

use page::{
    free_on_page, try_alloc_on_page_with, try_reset_page, PageAlloc, PageLayout, PageMeta,
    PageStats, CS_FREE, CS_MULTI_BODY, CS_MULTI_HEAD, CS_SETUP,
};

/// Size-scatter hash constant (`k_S`).
const K_SIZE: u64 = 38_183;
/// Multiprocessor-scatter hash constant (`k_mp`).
const K_MP: u64 = 17_497;

/// Tuning parameters. Defaults follow the original's published
/// configuration, scaled where the paper leaves freedom.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Page size in bytes (power of two).
    pub page_size: u32,
    /// Pages per Super Block.
    pub pages_per_superblock: u32,
    /// Pages per region (region fill counters).
    pub region_pages: u32,
    /// Active Super Block advances once its claimed-page percentage passes
    /// this threshold.
    pub sb_advance_fill_pct: u32,
    /// Denominator of the Super Block share reserved for multi-page
    /// allocations (¼ by default: `total_sbs / 4`).
    pub multipage_share_div: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            page_size: 4096,
            pages_per_superblock: 512, // 2 MiB Super Blocks
            region_pages: 32,
            sb_advance_fill_pct: 90,
            multipage_share_div: 4,
        }
    }
}

/// The ScatterAlloc memory manager.
pub struct ScatterAlloc {
    heap: Arc<DeviceHeap>,
    cfg: Config,
    meta: PageMeta,
    /// Number of Super Blocks currently available for small allocations
    /// (grows at runtime up to `small_sb_capacity`).
    small_sbs: AtomicU32,
    small_sb_capacity: u32,
    /// First page index of the reserved multi-page area.
    multi_first_page: usize,
    /// Pages in the multi-page area.
    multi_pages: usize,
    active_sb: AtomicU32,
    /// Claimed pages per small Super Block (fill level).
    sb_pages: Box<[AtomicU32]>,
    /// Full pages per region of the small area.
    region_full: Box<[AtomicU32]>,
    /// Serialises the consecutive-page search of the multi-page area; holds
    /// the next-fit cursor (relative page index into the multi area).
    multi_lock: Mutex<usize>,
    metrics: Metrics,
}

/// Locals live in `malloc` (register proxy): the hashed page walk keeps the
/// request, hash state, page/region cursors and the bit-search registers.
#[repr(C)]
struct MallocFrame {
    size: u64,
    chunk_size: u32,
    chunks: u32,
    table_bytes: u32,
    sb: u32,
    hash: u64,
    probe: u32,
    region: u32,
    page: u64,
    page_base: u64,
    count: u32,
    usage_word: u32,
    group: u32,
    bit: u32,
    fill: u32,
    attempts: u32,
    result_ptr: u64,
    sb_base: u64,
    meta_cs: u32,
    made_full: u32,
    lane_scratch: u64,
    region_probe: u64,
    hash2: u64,
    spill0: u64,
    spill1: u64,
}

/// Locals live in `free`.
#[repr(C)]
struct FreeFrame {
    ptr: u64,
    page: u64,
    page_base: u64,
    chunk_size: u32,
    chunks: u32,
    table_bytes: u32,
    chunk_idx: u32,
    count: u32,
    usage_word: u32,
    region: u32,
    outcome: u32,
    spill: u64,
}

impl ScatterAlloc {
    /// Creates ScatterAlloc over all of `heap`.
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        Self::with_config(heap, Config::default())
    }

    /// Creates ScatterAlloc with explicit tuning.
    pub fn with_config(heap: Arc<DeviceHeap>, cfg: Config) -> Self {
        let len = heap.len();
        assert_eq!(len % cfg.page_size as u64, 0, "heap must be page aligned");
        let sb_bytes = cfg.page_size as u64 * cfg.pages_per_superblock as u64;
        let total_sbs = (len / sb_bytes) as u32;
        assert!(total_sbs >= 1, "heap smaller than one Super Block");
        let multi_sbs =
            if total_sbs >= 2 { (total_sbs / cfg.multipage_share_div).max(1) } else { 0 };
        let small_cap = total_sbs - multi_sbs;
        assert!(small_cap >= 1, "no Super Blocks left for small allocations");
        let total_pages = (len / cfg.page_size as u64) as usize;
        let small_pages = (small_cap * cfg.pages_per_superblock) as usize;
        let regions = small_pages.div_ceil(cfg.region_pages as usize);

        ScatterAlloc {
            heap,
            cfg,
            meta: PageMeta::new(total_pages),
            small_sbs: AtomicU32::new(small_cap),
            small_sb_capacity: small_cap,
            multi_first_page: small_pages,
            multi_pages: (multi_sbs * cfg.pages_per_superblock) as usize,
            active_sb: AtomicU32::new(0),
            sb_pages: (0..small_cap).map(|_| AtomicU32::new(0)).collect(),
            region_full: (0..regions).map(|_| AtomicU32::new(0)).collect(),
            multi_lock: Mutex::new(0),
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a contention-observability handle (builder style).
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// Creates ScatterAlloc that initially manages only `initial_sbs` Super
    /// Blocks of the heap's small area; the rest becomes available through
    /// [`DeviceAllocator::grow`] (the paper's "one can also pass additional
    /// memory to ScatterAlloc, which will then be available at the next
    /// kernel launch").
    pub fn with_initial_superblocks(heap: Arc<DeviceHeap>, initial_sbs: u32) -> Self {
        let a = Self::new(heap);
        let initial = initial_sbs.clamp(1, a.small_sb_capacity);
        a.small_sbs.store(initial, Ordering::Release);
        a
    }

    /// Convenience constructor owning its heap.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    /// Largest request served from a single page.
    pub fn max_single_page(&self) -> u64 {
        self.cfg.page_size as u64
    }

    /// Number of Super Blocks currently serving small allocations.
    pub fn active_superblocks(&self) -> u32 {
        self.small_sbs.load(Ordering::Acquire)
    }

    fn page_base(&self, page: usize) -> u64 {
        page as u64 * self.cfg.page_size as u64
    }

    fn region_of(&self, page: usize) -> usize {
        page / self.cfg.region_pages as usize
    }

    /// The hashed small-allocation path.
    fn malloc_small(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        let chunk_size = align_up(size.max(16), 16) as u32;
        let layout = PageLayout::new(chunk_size, self.cfg.page_size);
        let pages_per_sb = self.cfg.pages_per_superblock as u64;
        let hash = size.wrapping_mul(K_SIZE).wrapping_add(ctx.sm as u64 * K_MP);
        let in_page_hash = ctx.scatter_hash();
        // Contention tally of this one operation: every page visited by the
        // probe walk is a probe step (so the counter is never zero for a
        // served request); page-level bit searches and lost CAS attempts
        // accumulate in `stats`.
        let mut stats = PageStats::default();

        let sbs = self.small_sbs.load(Ordering::Acquire);
        let mut sb = self.active_sb.load(Ordering::Acquire) % sbs;

        // Proactive advance when the active Super Block is nearly full.
        if sbs > 1 {
            let fill = self.sb_pages[sb as usize].load(Ordering::Relaxed);
            if fill * 100 > self.cfg.pages_per_superblock * self.cfg.sb_advance_fill_pct {
                let next = (sb + 1) % sbs;
                let _ =
                    self.active_sb.compare_exchange(sb, next, Ordering::AcqRel, Ordering::Relaxed);
                sb = next;
            }
        }

        for _attempt in 0..sbs {
            let sb_first_page = sb as u64 * pages_per_sb;
            let p0 = hash % pages_per_sb;
            let mut probe = 0u64;
            while probe < pages_per_sb {
                let page = (sb_first_page + (p0 + probe) % pages_per_sb) as usize;
                // Region rejection: skip a full region wholesale.
                let region = self.region_of(page);
                let region_start = region * self.cfg.region_pages as usize;
                if self.region_full[region].load(Ordering::Relaxed) >= self.cfg.region_pages {
                    // Jump to the end of this region (bounded by the SB).
                    let skip = (region_start + self.cfg.region_pages as usize) as u64 - page as u64;
                    probe += skip.max(1);
                    continue;
                }
                let claimed_before = self.meta.chunk_size[page].load(Ordering::Relaxed) == CS_FREE;
                stats.probe_steps += 1;
                match try_alloc_on_page_with(
                    &self.heap,
                    &self.meta,
                    page,
                    self.page_base(page),
                    layout,
                    in_page_hash,
                    &mut stats,
                ) {
                    PageAlloc::Success { chunk_idx, made_full } => {
                        if claimed_before {
                            self.sb_pages[sb as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        if made_full {
                            self.region_full[region].fetch_add(1, Ordering::AcqRel);
                        }
                        let off = self.page_base(page) + layout.chunk_offset(chunk_idx);
                        self.flush_stats(ctx.sm, stats);
                        return Ok(DevicePtr::new(off));
                    }
                    PageAlloc::Mismatch | PageAlloc::Full => probe += 1,
                }
            }
            // Super Block exhausted for this size: move to the next.
            let next = (sb + 1) % sbs;
            let _ = self.active_sb.compare_exchange(sb, next, Ordering::AcqRel, Ordering::Relaxed);
            sb = next;
        }
        self.flush_stats(ctx.sm, stats);
        Err(AllocError::OutOfMemory(size))
    }

    /// Publishes one operation's contention tally (probe walk + CAS losses
    /// + the retry histogram sample).
    fn flush_stats(&self, sm: u32, stats: PageStats) {
        self.metrics.add(sm, Counter::ProbeSteps, stats.probe_steps);
        self.metrics.add(sm, Counter::CasRetries, stats.cas_retries);
        self.metrics.record_retries(sm, stats.cas_retries);
    }

    /// The reserved-area multi-page path for requests larger than a page.
    fn malloc_multi(&self, sm: u32, size: u64) -> Result<DevicePtr, AllocError> {
        let pages_needed = size.div_ceil(self.cfg.page_size as u64) as usize;
        if pages_needed > self.multi_pages {
            return Err(AllocError::UnsupportedSize(size));
        }
        // memlint: allow(hot-path-panic) — the multi-page Mutex models ScatterAlloc's serialised >page_size path; it only poisons after a prior panic, which the harness treats as fatal
        let _cursor = self.multi_lock.lock().unwrap();
        // First-fit scan from the start of the reserved area. Deliberately
        // linear: the paper attributes ScatterAlloc's "steep drop in
        // performance at around 2048 B" to this search for contiguous free
        // pages, and the cost growing with the number of multi-page
        // allocations is part of the measured shape. Every page inspected
        // is one probe step.
        let mut run = 0usize;
        for i in 0..self.multi_pages {
            let page = self.multi_first_page + i;
            if self.meta.chunk_size[page].load(Ordering::Acquire) == CS_FREE {
                run += 1;
                if run == pages_needed {
                    let head = page + 1 - pages_needed;
                    self.meta.chunk_size[head].store(CS_MULTI_HEAD, Ordering::Release);
                    self.meta.count[head].store(pages_needed as u32, Ordering::Release);
                    for p in head + 1..=page {
                        self.meta.chunk_size[p].store(CS_MULTI_BODY, Ordering::Release);
                    }
                    self.metrics.add(sm, Counter::ProbeSteps, i as u64 + 1);
                    return Ok(DevicePtr::new(self.page_base(head)));
                }
            } else {
                run = 0;
            }
        }
        self.metrics.add(sm, Counter::ProbeSteps, self.multi_pages as u64);
        Err(AllocError::OutOfMemory(size))
    }

    fn free_multi(&self, head: usize) -> Result<(), AllocError> {
        // memlint: allow(hot-path-panic) — the multi-page Mutex models ScatterAlloc's serialised >page_size path; it only poisons after a prior panic, which the harness treats as fatal
        let _g = self.multi_lock.lock().unwrap();
        if self.meta.chunk_size[head].load(Ordering::Acquire) != CS_MULTI_HEAD {
            return Err(AllocError::InvalidPointer);
        }
        let n = self.meta.count[head].load(Ordering::Acquire) as usize;
        for p in (head..head + n).rev() {
            self.meta.chunk_size[p].store(CS_FREE, Ordering::Release);
        }
        self.meta.count[head].store(0, Ordering::Release);
        Ok(())
    }
}

impl DeviceAllocator for ScatterAlloc {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("ScatterAlloc").resizable(true).instrumented(true).build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        let r = if size == 0 {
            Err(AllocError::UnsupportedSize(0))
        } else if size <= self.max_single_page() {
            self.malloc_small(ctx, size)
        } else {
            self.malloc_multi(ctx.sm, size)
        };
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
        }
        r
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let r = self.free_inner(ptr);
        if r.is_err() {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
        }
        r
    }

    fn grow(&self, additional: u64) -> Result<(), AllocError> {
        let sb_bytes = self.cfg.page_size as u64 * self.cfg.pages_per_superblock as u64;
        let add_sbs = (additional.div_ceil(sb_bytes)) as u32;
        let mut cur = self.small_sbs.load(Ordering::Acquire);
        loop {
            if cur >= self.small_sb_capacity {
                return Err(AllocError::OutOfMemory(additional));
            }
            let new = (cur + add_sbs).min(self.small_sb_capacity);
            match self.small_sbs.compare_exchange(cur, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(
            std::mem::size_of::<MallocFrame>(),
            std::mem::size_of::<FreeFrame>(),
        )
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

impl ScatterAlloc {
    /// Pointer-validated deallocation (call accounting lives in the trait
    /// wrapper).
    fn free_inner(&self, ptr: DevicePtr) -> Result<(), AllocError> {
        if ptr.is_null() || ptr.offset() >= self.heap.len() {
            return Err(AllocError::InvalidPointer);
        }
        let page = (ptr.offset() / self.cfg.page_size as u64) as usize;
        let cs = self.meta.chunk_size[page].load(Ordering::Acquire);
        match cs {
            CS_FREE | CS_MULTI_BODY => Err(AllocError::InvalidPointer),
            CS_MULTI_HEAD => {
                if ptr.offset() != self.page_base(page) {
                    return Err(AllocError::InvalidPointer);
                }
                self.free_multi(page)
            }
            cs if cs & CS_SETUP != 0 => Err(AllocError::InvalidPointer),
            cs => {
                let layout = PageLayout::new(cs, self.cfg.page_size);
                let base = self.page_base(page) + layout.table_bytes as u64;
                if ptr.offset() < base {
                    return Err(AllocError::InvalidPointer);
                }
                let delta = ptr.offset() - base;
                if !delta.is_multiple_of(cs as u64) {
                    return Err(AllocError::InvalidPointer);
                }
                let chunk_idx = (delta / cs as u64) as u32;
                if chunk_idx >= layout.chunks {
                    return Err(AllocError::InvalidPointer);
                }
                let outcome = free_on_page(
                    &self.heap,
                    &self.meta,
                    page,
                    self.page_base(page),
                    layout,
                    chunk_idx,
                )
                .map_err(|()| AllocError::InvalidPointer)?;
                if outcome.was_full {
                    self.region_full[self.region_of(page)].fetch_sub(1, Ordering::AcqRel);
                }
                if outcome.now_empty && try_reset_page(&self.meta, page) {
                    let sb = page / self.cfg.pages_per_superblock as usize;
                    self.sb_pages[sb].fetch_sub(1, Ordering::Relaxed);
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::traits::DeviceAllocatorExt;

    const HEAP: u64 = 8 << 20; // 8 MiB → 4 SBs: 3 small + 1 multi

    fn ctx() -> ThreadCtx {
        ThreadCtx::host()
    }

    fn alloc() -> ScatterAlloc {
        ScatterAlloc::with_capacity(HEAP)
    }

    #[test]
    fn construction_partitions_superblocks() {
        let a = alloc();
        assert_eq!(a.small_sb_capacity, 3);
        assert_eq!(a.multi_pages, 512);
        assert_eq!(a.multi_first_page, 3 * 512);
    }

    #[test]
    fn small_alloc_is_16_aligned_and_in_bounds() {
        let a = alloc();
        for size in [1u64, 4, 15, 16, 17, 100, 512, 1000, 4096] {
            let p = a.checked_malloc(&ctx(), size).unwrap();
            assert!(p.is_aligned(16), "size {size}: {p:?}");
        }
    }

    #[test]
    fn same_size_requests_cluster_on_a_page() {
        let a = alloc();
        let p1 = a.malloc(&ctx(), 64).unwrap();
        let p2 = a.malloc(&ctx(), 64).unwrap();
        // Same page (hash is a function of size and SM).
        assert_eq!(
            p1.offset() / 4096,
            p2.offset() / 4096,
            "consecutive same-size allocations should share a page"
        );
    }

    #[test]
    fn different_sms_scatter_to_different_pages() {
        let a = alloc();
        let c0 = ThreadCtx { thread_id: 0, lane: 0, warp: 0, block: 0, sm: 0 };
        let c9 = ThreadCtx { thread_id: 9, lane: 9, warp: 0, block: 0, sm: 9 };
        let p1 = a.malloc(&c0, 64).unwrap();
        let p2 = a.malloc(&c9, 64).unwrap();
        assert_ne!(p1.offset() / 4096, p2.offset() / 4096);
    }

    #[test]
    fn free_and_reuse_roundtrip() {
        let a = alloc();
        let p = a.malloc(&ctx(), 128).unwrap();
        a.heap().fill(p, 128, 0x5a);
        a.free(&ctx(), p).unwrap();
        let q = a.malloc(&ctx(), 128).unwrap();
        assert_eq!(p, q, "freed chunk is the hash-preferred slot again");
    }

    #[test]
    fn double_free_detected() {
        let a = alloc();
        let p = a.malloc(&ctx(), 64).unwrap();
        a.free(&ctx(), p).unwrap();
        assert_eq!(a.free(&ctx(), p), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn bogus_pointers_rejected() {
        let a = alloc();
        assert_eq!(a.free(&ctx(), DevicePtr::NULL), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx(), DevicePtr::new(40)), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx(), DevicePtr::new(HEAP + 4096)), Err(AllocError::InvalidPointer));
        // In-bounds but mid-chunk pointer on a live page.
        let p = a.malloc(&ctx(), 64).unwrap();
        assert_eq!(a.free(&ctx(), DevicePtr::new(p.offset() + 8)), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn multipage_allocations_round_to_pages() {
        let a = alloc();
        let p = a.malloc(&ctx(), 5000).unwrap();
        assert!(p.is_aligned(4096));
        assert!(p.offset() >= a.multi_first_page as u64 * 4096, "reserved area");
        a.heap().fill(p, 5000, 0x77);
        a.free(&ctx(), p).unwrap();
        let q = a.malloc(&ctx(), 8192).unwrap();
        assert_eq!(p, q, "first fit reuses the freed run");
        a.free(&ctx(), q).unwrap();
    }

    #[test]
    fn multipage_body_pointer_rejected() {
        let a = alloc();
        let p = a.malloc(&ctx(), 3 * 4096).unwrap();
        assert_eq!(
            a.free(&ctx(), DevicePtr::new(p.offset() + 4096)),
            Err(AllocError::InvalidPointer)
        );
        a.free(&ctx(), p).unwrap();
    }

    #[test]
    fn page_reset_allows_new_chunk_size() {
        let a = alloc();
        let p = a.malloc(&ctx(), 64).unwrap();
        let page = p.offset() / 4096;
        a.free(&ctx(), p).unwrap();
        // Page became empty; free resets it so a new chunk size can claim it.
        assert_eq!(a.meta.chunk_size[page as usize].load(Ordering::Relaxed), CS_FREE);
    }

    #[test]
    fn fills_whole_heap_with_small_chunks() {
        let a = ScatterAlloc::with_capacity(4 << 20); // 2 SBs: 1 small + 1 multi
        let mut n = 0u64;
        loop {
            match a.malloc(&ctx(), 256) {
                Ok(_) => n += 1,
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("{e}"),
            }
        }
        // 1 small SB = 2 MiB; 256 B chunks with no table → 8192 chunks max.
        assert!(n >= 8000, "only {n} chunks of 256 B in 2 MiB");
    }

    #[test]
    fn oom_recovers_after_free() {
        let a = ScatterAlloc::with_capacity(4 << 20);
        let mut ptrs = Vec::new();
        while let Ok(p) = a.malloc(&ctx(), 1024) {
            ptrs.push(p);
        }
        for p in ptrs.drain(..) {
            a.free(&ctx(), p).unwrap();
        }
        assert!(a.malloc(&ctx(), 1024).is_ok());
    }

    #[test]
    fn grow_adds_superblocks() {
        let heap = Arc::new(DeviceHeap::new(HEAP));
        let a = ScatterAlloc::with_initial_superblocks(heap, 1);
        assert_eq!(a.active_superblocks(), 1);
        a.grow(2 << 20).unwrap();
        assert_eq!(a.active_superblocks(), 2);
        a.grow(2 << 20).unwrap();
        assert_eq!(a.active_superblocks(), 3);
        assert!(matches!(a.grow(2 << 20), Err(AllocError::OutOfMemory(_))));
        assert!(a.info().resizable);
    }

    #[test]
    fn mixed_sizes_do_not_overlap() {
        let a = alloc();
        let mut spans = Vec::new();
        for i in 0..500u64 {
            let size = 16 + (i % 255) * 16;
            let p = a.malloc(&ctx(), size).unwrap();
            spans.push((p.offset(), align_up(size, 16)));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn concurrent_stress_no_overlap() {
        let a = Arc::new(ScatterAlloc::with_capacity(16 << 20));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut live = Vec::new();
                let mut keep = Vec::new();
                for i in 0..3000u32 {
                    let c = ThreadCtx::from_linear(t * 3000 + i, 256, 80);
                    let size = 16 + ((i as u64 * 37 + t as u64) % 64) * 16;
                    let p = a.malloc(&c, size).expect("16 MiB is plenty");
                    a.heap().fill(p, size, t as u8 + 1);
                    live.push((p, size, c));
                    if i % 2 == 1 {
                        let (p, _, c) = live.swap_remove(0);
                        a.free(&c, p).unwrap();
                    }
                }
                keep.extend(live.into_iter().map(|(p, s, _)| (p.offset(), align_up(s, 16))));
                keep
            }));
        }
        let mut all: Vec<(u64, u64)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap {:?} vs {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn register_footprint_midfield() {
        let fp = alloc().register_footprint();
        assert!(
            (30..=50).contains(&fp.malloc),
            "ScatterAlloc malloc should be mid-field (~40): {fp}"
        );
        assert!((15..=30).contains(&fp.free), "{fp}");
    }
}

#[cfg(test)]
mod mp_timing {
    use super::*;

    #[test]
    #[ignore = "manual timing probe"]
    fn multipage_scan_cost_probe() {
        let a = ScatterAlloc::with_capacity(480 << 20);
        let ctx = ThreadCtx::host();
        let t = std::time::Instant::now();
        let mut ptrs = Vec::new();
        for _ in 0..10_000 {
            ptrs.push(a.malloc(&ctx, 8192).unwrap());
        }
        eprintln!("10k x 8192 sequential: {:?}", t.elapsed());
        eprintln!(
            "first={:?} last={:?} multi_first_byte={}",
            ptrs[0],
            ptrs[9999],
            a.multi_first_page as u64 * 4096
        );
    }
}
