//! ScatterAlloc under the shadow-heap sanitizer: hashed page placement must
//! never hand two threads bytes of the same page slot.

use alloc_scatter::ScatterAlloc;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, DevicePtr, WarpCtx};

#[test]
fn hashed_placement_churn_is_clean() {
    let san = Sanitized::new(ScatterAlloc::with_capacity(32 << 20));
    // Distinct SIMT coordinates drive ScatterAlloc's hash scattering.
    for warp in 0..4u32 {
        let w = WarpCtx { warp, block: warp / 2, sm: warp % 2 };
        let ptrs: Vec<_> = (0..32u32)
            .map(|lane| {
                let ctx = w.lane(lane);
                san.malloc(&ctx, 16 + ((warp + lane) as u64 % 16) * 64).unwrap()
            })
            .collect();
        for (lane, p) in ptrs.into_iter().enumerate() {
            san.free(&w.lane(lane as u32), p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn warp_collective_path_is_clean() {
    let san = Sanitized::new(ScatterAlloc::with_capacity(16 << 20));
    let w = WarpCtx { warp: 7, block: 1, sm: 3 };
    let mut out = [DevicePtr::NULL; 32];
    san.malloc_warp(&w, &[256; 32], &mut out).unwrap();
    san.free_warp(&w, &out).unwrap();
    assert!(san.report().is_clean(), "{}", san.report());
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(ScatterAlloc::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
