//! The CUDA-Allocator model under the shadow-heap sanitizer.

use alloc_cuda::CudaAllocModel;
use gpumem_core::sanitize::Sanitized;
use gpumem_core::{DeviceAllocator, DevicePtr, ThreadCtx, WarpCtx};

#[test]
fn churn_with_reverse_frees_is_clean() {
    let san = Sanitized::new(CudaAllocModel::with_capacity(16 << 20));
    let ctx = ThreadCtx::host();
    for cycle in 0..5u64 {
        let ptrs: Vec<_> =
            (0..100u64).map(|i| san.malloc(&ctx, 16 + ((cycle + i) % 20) * 60).unwrap()).collect();
        for p in ptrs.into_iter().rev() {
            san.free(&ctx, p).unwrap();
        }
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn warp_collective_path_is_clean() {
    let san = Sanitized::new(CudaAllocModel::with_capacity(8 << 20));
    let w = WarpCtx { warp: 1, block: 0, sm: 0 };
    let mut out = [DevicePtr::NULL; 32];
    san.malloc_warp(&w, &[128; 32], &mut out).unwrap();
    // Payload writes cover the full request: the redzone must sit outside.
    for (lane, p) in out.iter().enumerate() {
        san.heap().fill(*p, 128, lane as u8);
    }
    san.free_warp(&w, &out).unwrap();
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.live, 0);
}

#[test]
fn mmap_backed_heap_run_is_clean() {
    use gpumem_core::{DeviceHeap, HeapBackendKind, HeapSpec, ThreadCtx};
    use std::sync::Arc;
    if !HeapBackendKind::Mmap.available() {
        return;
    }
    // Same manager, lazily-committed MAP_NORESERVE substrate: pages must
    // appear zeroed on first touch exactly like the RAM backend's.
    let heap = Arc::new(DeviceHeap::try_new(HeapSpec::mmap(32 << 20)).unwrap());
    let san = Sanitized::new(CudaAllocModel::new(heap));
    let ctx = ThreadCtx::host();
    let ptrs: Vec<_> = (0..128u64)
        .map(|i| {
            let size = 16 + (i % 16) * 48;
            let p = san.malloc(&ctx, size).unwrap();
            san.heap().fill(p, size, (i % 251) as u8 | 1);
            assert_eq!(san.heap().read_u8(p, size - 1), (i % 251) as u8 | 1);
            p
        })
        .collect();
    for p in ptrs {
        san.free(&ctx, p).unwrap();
    }
    let report = san.take_report();
    assert!(report.is_clean(), "{report}");
}
