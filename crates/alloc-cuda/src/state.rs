//! Locked internal state of the CUDA-Allocator model.

use super::{HEADER, MIN_CLASS, SMALL_LIMIT, UNIT};

/// Power-of-two classes 16 B .. 2048 B.
pub const NUM_CLASSES: usize =
    (SMALL_LIMIT.trailing_zeros() - MIN_CLASS.trailing_zeros() + 1) as usize;

/// Everything behind the model's global lock.
pub struct State {
    /// Frontier of the small-unit area (grows up from the region base).
    pub small_bump: u64,
    /// Frontier of the large area (grows down from the region end).
    pub large_top: u64,
    /// LIFO free stacks of small block *header* offsets, one per class.
    class_free: [Vec<u64>; NUM_CLASSES],
    /// Sorted free list of large regions `(header_offset, total_len)`.
    large_free: Vec<(u64, u64)>,
    /// Registry of carved unit base offsets. Every small-path allocation
    /// performs a consistency walk over it — the model's knob for the two
    /// observed behaviours it stands in for: "performance continuously
    /// [degrades] with the amount of allocations" (§5) and the size
    /// staircase (larger classes carve more units per allocation, so the
    /// registry grows faster and each walk costs more).
    units: Vec<u64>,
}

/// Bound of the per-carve duplicate check (cheap; the per-allocation
/// consistency walk in [`State::validate_units`] is unbounded by design).
const UNIT_SCAN_WINDOW: usize = 4096;

impl State {
    pub fn new(base: u64, len: u64) -> Self {
        State {
            small_bump: base,
            large_top: base + len,
            class_free: std::array::from_fn(|_| Vec::new()),
            large_free: Vec::new(),
            units: Vec::new(),
        }
    }

    /// Pops a free block header for `class_idx`, if any.
    pub fn pop_class(&mut self, class_idx: usize) -> Option<u64> {
        self.class_free[class_idx].pop()
    }

    /// Pushes a block header back onto its class stack.
    pub fn push_class(&mut self, class_idx: usize, header: u64) {
        // memlint: allow(hot-path-host-alloc) — the class free stacks model the in-heap LIFO lists of the real allocator; host Vec growth is modeling substrate, the protocol cost is metered as list hops
        self.class_free[class_idx].push(header);
    }

    /// Scans up to `window` most-recent entries of a class stack for
    /// `header` (double-free validation; deliberately linear — see crate
    /// docs on modelled deallocation weight).
    pub fn class_contains(&self, class_idx: usize, header: u64, window: usize) -> bool {
        let stack = &self.class_free[class_idx];
        let start = stack.len().saturating_sub(window);
        stack[start..].contains(&header)
    }

    /// Carves a fresh 4 KiB unit into blocks of `class_bytes` and fills the
    /// class stack. Returns `None` when the two frontiers would collide.
    pub fn carve_unit(&mut self, class_idx: usize, class_bytes: u64) -> Option<()> {
        let unit = UNIT.max(class_bytes + HEADER);
        if self.small_bump + unit > self.large_top {
            return None;
        }
        // Units come from *both ends* of the region alternately — the
        // survey observes that the CUDA-Allocator "always reports back the
        // maximum possible range, which might suggest that it starts
        // allocating from both ends of its memory region" (§4.3.1).
        let base = if self.units.len().is_multiple_of(2) {
            let b = self.small_bump;
            self.small_bump += unit;
            b
        } else {
            self.large_top -= unit;
            self.large_top
        };
        let start = self.units.len().saturating_sub(UNIT_SCAN_WINDOW);
        debug_assert!(!self.units[start..].contains(&base), "carve produced a duplicate unit base");
        let _ = start;
        // memlint: allow(hot-path-host-alloc) — the unit registry models the allocator's in-heap bookkeeping whose walk cost is the paper's observed degradation; the Vec is substrate, the walk is metered
        self.units.push(base);
        let footprint = class_bytes + HEADER;
        let n = (unit / footprint).max(1);
        // Push in reverse so the unit is handed out low-to-high (LIFO pop).
        for i in (0..n).rev() {
            // memlint: allow(hot-path-host-alloc) — carving a unit fills the in-heap class stack; the Vec push is modeling substrate for blocks that live at in-heap offsets
            self.class_free[class_idx].push(base + i * footprint);
        }
        Some(())
    }

    /// Allocates `need` bytes (header included) from the large area:
    /// first-fit over the sorted free list, else bump the top frontier down.
    pub fn alloc_large(&mut self, need: u64) -> Option<u64> {
        // First-fit walk of the free list (linear on purpose: cost grows
        // with allocation history, one of the modelled behaviours).
        for i in 0..self.large_free.len() {
            let (off, len) = self.large_free[i];
            if len >= need {
                if len - need >= UNIT {
                    // Split, keeping the remainder in place.
                    // memlint: allow(unchecked-offset-arithmetic) — free-list invariant: need <= len (checked two lines up) and off + len never exceeds the region top, so off + need cannot wrap
                    self.large_free[i] = (off + need, len - need);
                } else {
                    self.large_free.remove(i);
                }
                return Some(off);
            }
        }
        let new_top = self.large_top.checked_sub(need)?;
        if new_top < self.small_bump {
            return None;
        }
        self.large_top = new_top;
        Some(new_top)
    }

    /// Returns a large region to the free list, coalescing neighbours and
    /// folding into the top frontier when adjacent.
    pub fn free_large(&mut self, header: u64, len: u64) {
        let idx = self.large_free.partition_point(|&(off, _)| off < header);
        // memlint: allow(hot-path-host-alloc) — the sorted large free list models in-heap boundary tags; the Vec insert is substrate, the first-fit walk it feeds is metered as list hops
        self.large_free.insert(idx, (header, len));
        // Coalesce with successor.
        if idx + 1 < self.large_free.len() {
            let (off, l) = self.large_free[idx];
            let (noff, nl) = self.large_free[idx + 1];
            // memlint: allow(unchecked-offset-arithmetic) — coalesce equality test on in-region list entries: off + l is the block end, bounded by the region top by construction
            if off + l == noff {
                self.large_free[idx] = (off, l + nl);
                self.large_free.remove(idx + 1);
            }
        }
        // Coalesce with predecessor.
        if idx > 0 {
            let (poff, pl) = self.large_free[idx - 1];
            let (off, l) = self.large_free[idx];
            if poff + pl == off {
                self.large_free[idx - 1] = (poff, pl + l);
                self.large_free.remove(idx);
            }
        }
        // Fold a block that reaches the frontier back into it.
        if let Some(&(off, l)) = self.large_free.last() {
            if off == self.large_top {
                // memlint: allow(unchecked-offset-arithmetic) — folding the sorted last block into the frontier: off == large_top and off + l <= region end by the free-list invariant
                self.large_top = off + l;
                self.large_free.pop();
                // The frontier moved up; nothing else can touch it (the list
                // is sorted and coalesced).
            }
        }
    }

    /// Per-allocation consistency walk over the unit registry (see the
    /// `units` field docs). Returns a checksum so the optimiser cannot
    /// remove the walk.
    #[inline(never)]
    pub fn validate_units(&self) -> u64 {
        let mut acc = 0u64;
        for &u in &self.units {
            acc = acc.wrapping_add(u ^ (acc >> 7));
        }
        acc
    }

    /// Number of distinct free large regions (test hook and the upper bound
    /// on the first-fit walk length — the model's `list_hops` source).
    pub fn large_free_len(&self) -> usize {
        self.large_free.len()
    }

    /// Number of carved units — the length of every [`State::validate_units`]
    /// walk (the model's `probe_steps` source).
    pub fn units_len(&self) -> usize {
        self.units.len()
    }

    /// Depth of one class free stack — bounds the double-free scan in
    /// [`State::class_contains`].
    pub fn class_depth(&self, class_idx: usize) -> usize {
        self.class_free[class_idx].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carve_fills_class_stack() {
        let mut st = State::new(0, 1 << 20);
        st.carve_unit(0, 16).unwrap();
        // 4096 / (16+16) = 128 blocks.
        let mut count = 0;
        while st.pop_class(0).is_some() {
            count += 1;
        }
        assert_eq!(count, 128);
        assert_eq!(st.small_bump, 4096);
    }

    #[test]
    fn carve_hands_out_low_to_high() {
        let mut st = State::new(0, 1 << 20);
        st.carve_unit(1, 32).unwrap();
        let a = st.pop_class(1).unwrap();
        let b = st.pop_class(1).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b, 48);
    }

    #[test]
    fn carve_fails_when_frontiers_collide() {
        let mut st = State::new(0, 8192);
        assert!(st.carve_unit(0, 16).is_some());
        assert!(st.carve_unit(0, 16).is_some());
        assert!(st.carve_unit(0, 16).is_none(), "8 KiB = exactly two units");
    }

    #[test]
    fn large_bump_comes_down_from_top() {
        let mut st = State::new(0, 1 << 20);
        let a = st.alloc_large(4096).unwrap();
        let b = st.alloc_large(4096).unwrap();
        assert_eq!(a, (1 << 20) - 4096);
        assert_eq!(b, (1 << 20) - 8192);
    }

    #[test]
    fn large_free_coalesces_neighbours() {
        let mut st = State::new(0, 1 << 20);
        let a = st.alloc_large(4096).unwrap();
        let b = st.alloc_large(4096).unwrap();
        let c = st.alloc_large(4096).unwrap();
        // Free middle, then its neighbours; blocks merge and fold back into
        // the frontier.
        st.free_large(b, 4096);
        assert_eq!(st.large_free_len(), 1);
        st.free_large(a, 4096);
        assert_eq!(st.large_free_len(), 1, "a+b coalesce");
        st.free_large(c, 4096);
        assert_eq!(st.large_free_len(), 0, "all folded into the frontier");
        assert_eq!(st.large_top, 1 << 20);
    }

    #[test]
    fn large_first_fit_splits_big_blocks() {
        let mut st = State::new(0, 1 << 20);
        let a = st.alloc_large(64 * 1024).unwrap();
        let _b = st.alloc_large(4096).unwrap(); // pin the frontier
        st.free_large(a, 64 * 1024);
        let c = st.alloc_large(8192).unwrap();
        assert_eq!(c, a, "first fit reuses the freed block's start");
        assert_eq!(st.large_free_len(), 1, "remainder stays on the list");
        let d = st.alloc_large(8192).unwrap();
        assert_eq!(d, a + 8192);
    }

    #[test]
    fn double_free_scan_window() {
        let mut st = State::new(0, 1 << 20);
        st.push_class(0, 64);
        assert!(st.class_contains(0, 64, 16));
        assert!(!st.class_contains(0, 128, 16));
        // Outside the window the scan cannot see it.
        for i in 0..100 {
            st.push_class(0, 1000 + i);
        }
        assert!(!st.class_contains(0, 64, 16));
        assert!(st.class_contains(0, 64, 2048));
    }
}
