//! # alloc-cuda — a behavioural model of the CUDA device allocator
//!
//! The paper (§2.1) notes that NVIDIA publishes essentially nothing about
//! the toolkit allocator's internals: "there is unfortunately very little
//! information available on the implementation, which only allows for
//! speculation as to its internal structure." The survey therefore
//! characterises it *behaviourally* — and this crate is a model of exactly
//! those observed characteristics:
//!
//! * **Reliability over performance** (§2.1): a single global lock
//!   serialises all requests. Every other manager in the survey beats it on
//!   small allocations; nothing corrupts it.
//! * **A divisible unit with a split right before 2048 B** (§4.2.1): sizes
//!   ≤ 2048 B are served from per-power-of-two size classes carved out of
//!   4 KiB units (the staircase in Fig. 9); larger sizes switch to a
//!   next-fit region allocator — a visible regime change at 2048 B.
//! * **Allocates from both ends of its region** (§4.3.1): small units grow
//!   from the bottom, large regions from the top, so the address range
//!   reported by the fragmentation test case spans the whole heap.
//! * **Deallocation is its weak point** (§4.2.1: "the only approach with
//!   deallocation performance consistently above 1 ms") and **performance
//!   degrades with the number of allocations** (§5): `free` performs a
//!   bounded validation scan of the size-class free stack (the model's knob
//!   for the observed cost; a real double-free check), and the large-region
//!   path walks a sorted free list.
//! * **Fixed capacity** (§2.1/§5): the manageable size is set once;
//!   `grow` is rejected ("increasing this memory requires destroying the
//!   current context").
//!
//! Several other managers in the survey forward requests here (Halloc for
//! > 3 KiB, FDGMalloc for warp headers and oversize requests, Ouroboros for
//! > oversize requests), so the model supports operating on a *sub-region* of
//! > a shared heap via [`CudaAllocModel::with_region`].

// Also enforced workspace-wide; restated here so the audit
// guarantee survives if this crate is ever built out of tree.
#![deny(unsafe_op_in_unsafe_fn)]

use std::sync::Arc;
use std::sync::Mutex;

use gpumem_core::util::{align_up, next_pow2};
use gpumem_core::{
    AllocError, Counter, DeviceAllocator, DeviceHeap, DevicePtr, ManagerInfo, Metrics,
    RegisterFootprint, ThreadCtx,
};

mod state;
use state::State;

/// Block header size preceding every payload (holds magic + class / size).
pub const HEADER: u64 = 16;
/// Unit carved for small size classes.
pub const UNIT: u64 = 4096;
/// Largest size served by the size-class path; beyond this the next-fit
/// region path takes over (the paper's observed "unit split").
pub const SMALL_LIMIT: u64 = 2048;
/// Smallest size class.
pub const MIN_CLASS: u64 = 16;
/// Bounded window of the free-stack validation scan in `free` — the model's
/// stand-in for the toolkit allocator's heavyweight deallocation.
pub const VALIDATION_WINDOW: usize = 2048;

/// Magic tags distinguishing live/freed small/large headers.
const MAGIC_SMALL: u32 = 0xC0DA_0001;
const MAGIC_LARGE: u32 = 0xC0DA_0002;
const MAGIC_FREE: u32 = 0xC0DA_00FF;

/// The CUDA-Allocator model. See crate docs for the behavioural contract.
pub struct CudaAllocModel {
    heap: Arc<DeviceHeap>,
    base: u64,
    len: u64,
    state: Mutex<State>,
    metrics: Metrics,
}

/// Locals live in `malloc` (register proxy).
#[repr(C)]
struct MallocFrame {
    size: u64,
    class_idx: u32,
    _pad: u32,
    header: u64,
    payload: u64,
    unit_base: u64,
    carve_i: u32,
    carve_n: u32,
    lock_word: u64,
    region_len: u64,
}

/// Locals live in `free` (register proxy).
#[repr(C)]
struct FreeFrame {
    header: u64,
    magic: u32,
    class_idx: u32,
    scan_i: u32,
    _pad: u32,
    lock_word: u64,
    region: u64,
}

impl CudaAllocModel {
    /// Model over the whole `heap`.
    pub fn new(heap: Arc<DeviceHeap>) -> Self {
        let len = heap.len();
        Self::with_region(heap, 0, len)
    }

    /// Model over `[base, base + len)` of a shared heap — used when another
    /// manager embeds the CUDA allocator for oversize requests.
    ///
    /// # Panics
    /// Panics if the region is not 16-byte aligned or out of bounds.
    pub fn with_region(heap: Arc<DeviceHeap>, base: u64, len: u64) -> Self {
        assert!(
            base.is_multiple_of(16) && len.is_multiple_of(16),
            "region must be 16-byte aligned"
        );
        assert!(base + len <= heap.len(), "region exceeds heap");
        assert!(len >= UNIT, "region too small for the CUDA model");
        CudaAllocModel {
            heap,
            base,
            len,
            state: Mutex::new(State::new(base, len)),
            metrics: Metrics::disabled(),
        }
    }

    /// Convenience constructor: creates its own heap of `len` bytes.
    pub fn with_capacity(len: u64) -> Self {
        Self::new(Arc::new(DeviceHeap::new(len)))
    }

    /// Attaches a contention-observability handle (builder style). Managers
    /// that embed this model pass a [`Metrics::relay`] clone so the outer
    /// call is accounted once while inner walk costs still accumulate.
    pub fn with_metrics(mut self, metrics: Metrics) -> Self {
        self.metrics = metrics;
        self
    }

    /// In-place variant of [`CudaAllocModel::with_metrics`] for managers
    /// that embed this model as a field (Halloc, FDGMalloc) and wire it up
    /// after construction.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    fn class_index(size: u64) -> usize {
        let class = next_pow2(size.max(MIN_CLASS));
        (class.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize
    }

    fn class_bytes(idx: usize) -> u64 {
        MIN_CLASS << idx
    }

    /// Bytes still unclaimed between the two bump frontiers (diagnostics).
    pub fn remaining(&self) -> u64 {
        let st = self.state.lock().unwrap();
        st.large_top.saturating_sub(st.small_bump)
    }
}

impl DeviceAllocator for CudaAllocModel {
    fn info(&self) -> ManagerInfo {
        ManagerInfo::builder("CUDA-Allocator").instrumented(true).build()
    }

    fn heap(&self) -> &DeviceHeap {
        &self.heap
    }

    fn malloc(&self, ctx: &ThreadCtx, size: u64) -> Result<DevicePtr, AllocError> {
        self.metrics.tick(ctx.sm, Counter::MallocCalls);
        if size == 0 {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(0));
        }
        // `checked_add`: a request near `u64::MAX` must fail here, not wrap
        // and sail through as a tiny large-path allocation.
        if size.checked_add(HEADER).is_none_or(|need| need > self.len) {
            self.metrics.tick(ctx.sm, Counter::MallocFailures);
            return Err(AllocError::UnsupportedSize(size));
        }
        // memlint: allow(hot-path-panic) — the host Mutex stands in for the device-wide lock of the real CUDA allocator; it only poisons after a prior panic, which the harness treats as fatal anyway
        let mut st = self.state.lock().unwrap();
        if size <= SMALL_LIMIT {
            // Consistency walk (see `State::units`): the modelled
            // serialized bookkeeping that makes this allocator's cost grow
            // with its allocation history. Every registry entry visited is
            // one probe step.
            self.metrics.add(ctx.sm, Counter::ProbeSteps, st.units_len() as u64 + 1);
            std::hint::black_box(st.validate_units());
            let idx = Self::class_index(size);
            let header = match st.pop_class(idx) {
                Some(h) => h,
                None => {
                    match st.carve_unit(idx, Self::class_bytes(idx)) {
                        Some(()) => {}
                        None => {
                            self.metrics.tick(ctx.sm, Counter::MallocFailures);
                            return Err(AllocError::OutOfMemory(size));
                        }
                    }
                    // memlint: allow(hot-path-panic) — carve_unit returned Some on the line above, and its postcondition is a non-empty class stack
                    st.pop_class(idx).expect("carve_unit populates the class")
                }
            };
            self.heap.store_u32(header, MAGIC_SMALL);
            self.heap.store_u32(header + 4, idx as u32);
            Ok(DevicePtr::new(header + HEADER))
        } else {
            let need = align_up(size, 16) + HEADER;
            // The first-fit walk visits at most every free region.
            self.metrics.add(ctx.sm, Counter::ListHops, st.large_free_len() as u64);
            let header = match st.alloc_large(need) {
                Some(h) => h,
                None => {
                    self.metrics.tick(ctx.sm, Counter::MallocFailures);
                    return Err(AllocError::OutOfMemory(size));
                }
            };
            self.heap.store_u32(header, MAGIC_LARGE);
            self.heap.store_u64(header + 8, need);
            Ok(DevicePtr::new(header + HEADER))
        }
    }

    fn free(&self, ctx: &ThreadCtx, ptr: DevicePtr) -> Result<(), AllocError> {
        self.metrics.tick(ctx.sm, Counter::FreeCalls);
        let fail = |e: AllocError| {
            self.metrics.tick(ctx.sm, Counter::FreeFailures);
            Err(e)
        };
        if ptr.is_null() || ptr.offset() < self.base + HEADER {
            return fail(AllocError::InvalidPointer);
        }
        let header = ptr.offset() - HEADER;
        if header >= self.base + self.len {
            return fail(AllocError::InvalidPointer);
        }
        let magic = self.heap.load_u32(header);
        // memlint: allow(hot-path-panic) — the host Mutex stands in for the device-wide lock of the real CUDA allocator; it only poisons after a prior panic, which the harness treats as fatal anyway
        let mut st = self.state.lock().unwrap();
        match magic {
            MAGIC_SMALL => {
                let idx = self.heap.load_u32(header + 4) as usize;
                if idx >= state::NUM_CLASSES {
                    return fail(AllocError::InvalidPointer);
                }
                // The model's heavyweight-deallocation component: a bounded
                // double-free validation scan of the class free stack. Every
                // stack entry inside the window is one hop.
                let scan = st.class_depth(idx).min(VALIDATION_WINDOW) as u64;
                self.metrics.add(ctx.sm, Counter::ListHops, scan);
                if st.class_contains(idx, header, VALIDATION_WINDOW) {
                    return fail(AllocError::InvalidPointer);
                }
                self.heap.store_u32(header, MAGIC_FREE);
                st.push_class(idx, header);
                Ok(())
            }
            MAGIC_LARGE => {
                let need = self.heap.load_u64(header + 8);
                self.heap.store_u32(header, MAGIC_FREE);
                self.metrics.add(ctx.sm, Counter::ListHops, st.large_free_len() as u64);
                st.free_large(header, need);
                Ok(())
            }
            _ => fail(AllocError::InvalidPointer),
        }
    }

    fn register_footprint(&self) -> RegisterFootprint {
        RegisterFootprint::from_frames(
            std::mem::size_of::<MallocFrame>(),
            std::mem::size_of::<FreeFrame>(),
        )
    }

    fn metrics(&self) -> Metrics {
        self.metrics.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CudaAllocModel {
        CudaAllocModel::with_capacity(1 << 22) // 4 MiB
    }

    #[test]
    fn small_allocations_have_headers_and_alignment() {
        let a = model();
        let ctx = ThreadCtx::host();
        let p = a.malloc(&ctx, 100).unwrap();
        assert!(p.is_aligned(16));
        // Header magic lives 16 bytes before the payload.
        assert_eq!(a.heap().load_u32(p.offset() - HEADER), MAGIC_SMALL);
    }

    #[test]
    fn size_class_rounding() {
        assert_eq!(CudaAllocModel::class_index(1), 0);
        assert_eq!(CudaAllocModel::class_index(16), 0);
        assert_eq!(CudaAllocModel::class_index(17), 1);
        assert_eq!(CudaAllocModel::class_index(2048), 7);
        assert_eq!(CudaAllocModel::class_bytes(0), 16);
        assert_eq!(CudaAllocModel::class_bytes(7), 2048);
    }

    #[test]
    fn free_then_reuse_same_class() {
        let a = model();
        let ctx = ThreadCtx::host();
        let p = a.malloc(&ctx, 64).unwrap();
        a.free(&ctx, p).unwrap();
        let q = a.malloc(&ctx, 64).unwrap();
        assert_eq!(p, q, "freed block should be reused LIFO");
    }

    #[test]
    fn double_free_detected_within_window() {
        let a = model();
        let ctx = ThreadCtx::host();
        let p = a.malloc(&ctx, 64).unwrap();
        a.free(&ctx, p).unwrap();
        assert_eq!(a.free(&ctx, p), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn invalid_pointer_rejected() {
        let a = model();
        let ctx = ThreadCtx::host();
        assert_eq!(a.free(&ctx, DevicePtr::new(4096)), Err(AllocError::InvalidPointer));
        assert_eq!(a.free(&ctx, DevicePtr::NULL), Err(AllocError::InvalidPointer));
    }

    #[test]
    fn large_allocations_come_from_the_top() {
        let a = model();
        let ctx = ThreadCtx::host();
        let small = a.malloc(&ctx, 64).unwrap();
        let large = a.malloc(&ctx, 64 * 1024).unwrap();
        assert!(
            large.offset() > a.heap().len() / 2,
            "large block expected near the top, got {large:?}"
        );
        assert!(small.offset() < a.heap().len() / 2);
    }

    #[test]
    fn large_free_and_reuse() {
        let a = model();
        let ctx = ThreadCtx::host();
        let p = a.malloc(&ctx, 100_000).unwrap();
        a.free(&ctx, p).unwrap();
        let q = a.malloc(&ctx, 100_000).unwrap();
        assert_eq!(p, q, "coalesced large region should satisfy same demand");
    }

    #[test]
    fn both_ends_signature() {
        // Fragmentation signature: one small + one large allocation spans
        // nearly the whole region (paper: "always reports back the maximum
        // possible range").
        let a = model();
        let ctx = ThreadCtx::host();
        let lo = a.malloc(&ctx, 16).unwrap().offset();
        let hi_ptr = a.malloc(&ctx, 4096).unwrap();
        let hi = hi_ptr.offset() + 4096;
        assert!(hi - lo > a.heap().len() * 9 / 10);
    }

    #[test]
    fn exhaustion_is_reported_not_corrupted() {
        let a = CudaAllocModel::with_capacity(64 * 1024);
        let ctx = ThreadCtx::host();
        let mut ptrs = Vec::new();
        loop {
            match a.malloc(&ctx, 1024) {
                Ok(p) => ptrs.push(p),
                Err(AllocError::OutOfMemory(_)) => break,
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(!ptrs.is_empty());
        // Everything frees cleanly afterwards.
        for p in ptrs {
            a.free(&ctx, p).unwrap();
        }
        // And allocation works again.
        assert!(a.malloc(&ctx, 1024).is_ok());
    }

    #[test]
    fn grow_unsupported_like_the_real_allocator() {
        let a = model();
        assert!(matches!(a.grow(1 << 20), Err(AllocError::Unsupported(_))));
    }

    #[test]
    fn subregion_model_stays_in_bounds() {
        let heap = Arc::new(DeviceHeap::new(1 << 20));
        let a = CudaAllocModel::with_region(Arc::clone(&heap), 1 << 19, 1 << 19);
        let ctx = ThreadCtx::host();
        for _ in 0..100 {
            let p = a.malloc(&ctx, 256).unwrap();
            assert!(p.offset() >= 1 << 19);
            assert!(p.offset() + 256 <= 1 << 20);
        }
    }

    #[test]
    fn mixed_small_sizes_never_overlap() {
        let a = model();
        let ctx = ThreadCtx::host();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for i in 0..500u64 {
            let size = 16 + (i % 128) * 16;
            let p = a.malloc(&ctx, size).unwrap();
            spans.push((p.offset(), size));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            assert!(w[0].0 + w[0].1 <= w[1].0, "overlap between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn near_max_request_fails_instead_of_wrapping() {
        // Regression (memlint unchecked-offset-arithmetic): `size + HEADER`
        // used to wrap for near-u64::MAX requests, slipping past the length
        // guard and carving a tiny large-path block for an absurd request.
        let a = model();
        let ctx = ThreadCtx::host();
        for size in [u64::MAX, u64::MAX - HEADER + 1, u64::MAX - HEADER] {
            assert!(
                matches!(a.malloc(&ctx, size), Err(AllocError::UnsupportedSize(_))),
                "size {size:#x} must be rejected, not wrapped"
            );
        }
    }
}
