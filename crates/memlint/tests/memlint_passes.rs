//! Fixture batteries and workspace-clean gates for the analysis passes
//! layered on top of the original atomics scanner: offset arithmetic,
//! hot-path panics/allocation, lock ordering and decorator forwarding.
//!
//! Each pass has a known-bad fixture (every rule must fire, on the exact
//! expected line) and a known-good fixture (the checked/waived/unreachable
//! shapes must stay silent). The final gate re-scans the live workspace
//! and requires zero *standing* findings per pass — the same bar
//! `memlint --deny` and CI enforce.

use std::path::Path;

use memlint::{scan_source, scan_workspace, Diagnostic, Pass, Rule};

const OFFSETS_BAD: &str = include_str!("fixtures/offsets_bad.rs");
const OFFSETS_GOOD: &str = include_str!("fixtures/offsets_good.rs");
const HOTPATH_BAD: &str = include_str!("fixtures/hotpath_bad.rs");
const HOTPATH_GOOD: &str = include_str!("fixtures/hotpath_good.rs");
const LOCKS_BAD: &str = include_str!("fixtures/locks_bad.rs");
const LOCKS_GOOD: &str = include_str!("fixtures/locks_good.rs");
const DECORATORS_BAD: &str = include_str!("fixtures/decorators_bad.rs");
const DECORATORS_GOOD: &str = include_str!("fixtures/decorators_good.rs");

fn scan(name: &str, src: &str) -> Vec<Diagnostic> {
    scan_source(Path::new(name), src)
}

/// Standing (non-waived) findings of one pass as `(rule, line)` pairs.
fn standing(hits: &[Diagnostic], pass: Pass) -> Vec<(Rule, usize)> {
    hits.iter()
        .filter(|d| d.allowed.is_none() && d.pass() == pass)
        .map(|d| (d.rule, d.line))
        .collect()
}

#[test]
fn offsets_bad_fires_on_every_taint_shape() {
    let hits = scan("offsets_bad.rs", OFFSETS_BAD);
    let got = standing(&hits, Pass::OffsetArithmetic);
    for line in [6, 10, 14, 18] {
        assert!(
            got.contains(&(Rule::UncheckedOffsetArithmetic, line)),
            "expected unchecked-offset-arithmetic at offsets_bad.rs:{line}; got {got:?}"
        );
    }
}

#[test]
fn offsets_good_stays_silent() {
    let hits = scan("offsets_good.rs", OFFSETS_GOOD);
    assert!(
        standing(&hits, Pass::OffsetArithmetic).is_empty(),
        "false positives on offsets_good.rs: {hits:?}"
    );
    // The deliberately-waived raw `+` is recorded with its reason intact.
    assert!(hits.iter().any(|d| d.rule == Rule::UncheckedOffsetArithmetic && d.allowed.is_some()));
}

#[test]
fn hotpath_bad_fires_both_rules_through_the_call_graph() {
    let hits = scan("hotpath_bad.rs", HOTPATH_BAD);
    let got = standing(&hits, Pass::HotPath);
    // In `malloc` directly: host allocation and an assert.
    assert!(got.contains(&(Rule::HotPathHostAlloc, 10)), "to_string: {got:?}");
    assert!(got.contains(&(Rule::HotPathPanic, 11)), "assert!: {got:?}");
    // In `reserve`, reached only through the in-crate call graph.
    assert!(got.contains(&(Rule::HotPathHostAlloc, 16)), "Vec::push: {got:?}");
    assert!(got.contains(&(Rule::HotPathPanic, 17)), "unwrap: {got:?}");
}

#[test]
fn hotpath_good_stays_silent() {
    let hits = scan("hotpath_good.rs", HOTPATH_GOOD);
    // debug_assert! compiles out, `.push(` resolves to the in-crate `fn
    // push`, and `build_harness` is unreachable from the hot roots.
    assert!(
        standing(&hits, Pass::HotPath).is_empty(),
        "false positives on hotpath_good.rs: {hits:?}"
    );
}

#[test]
fn locks_bad_reports_cycle_and_gate_nesting() {
    let hits = scan("locks_bad.rs", LOCKS_BAD);
    let got = standing(&hits, Pass::LockOrder);
    assert!(
        got.iter().any(|&(r, _)| r == Rule::LockOrderCycle),
        "opposite-order alpha/beta must form a cycle: {got:?}"
    );
    assert!(
        got.iter().any(|&(r, line)| r == Rule::LockAcrossLaunchGate && line == 34),
        "state acquired under launch_gate must fire at line 34: {got:?}"
    );
}

#[test]
fn locks_good_stays_silent() {
    let hits = scan("locks_good.rs", LOCKS_GOOD);
    // Consistent order is not a cycle; the block-scoped guard is released
    // before the next acquisition.
    assert!(
        standing(&hits, Pass::LockOrder).is_empty(),
        "false positives on locks_good.rs: {hits:?}"
    );
}

#[test]
fn decorators_bad_reports_the_missing_forward() {
    let hits = scan("decorators_bad.rs", DECORATORS_BAD);
    let got = standing(&hits, Pass::DecoratorForwarding);
    assert_eq!(
        got,
        vec![(Rule::DecoratorMissingForward, 21)],
        "Wrap overrides malloc_warp but not metrics"
    );
    let msg = &hits.iter().find(|d| d.rule == Rule::DecoratorMissingForward).unwrap().message;
    assert!(msg.contains("metrics"), "message must name the missing method: {msg}");
}

#[test]
fn decorators_good_stays_silent() {
    let hits = scan("decorators_good.rs", DECORATORS_GOOD);
    assert!(
        standing(&hits, Pass::DecoratorForwarding).is_empty(),
        "false positives on decorators_good.rs: {hits:?}"
    );
    // Opaque's suppressed defaults are waived by the one directive, and
    // the single per-impl diagnostic names both of them.
    let waived: Vec<_> = hits
        .iter()
        .filter(|d| d.rule == Rule::DecoratorMissingForward && d.allowed.is_some())
        .collect();
    assert_eq!(waived.len(), 1, "one diagnostic per decorator impl");
    assert!(waived[0].message.contains("malloc_warp") && waived[0].message.contains("metrics"));
}

/// Union of the bad fixtures exercises every analysis rule outside the
/// atomics pass (which has its own battery in `rules.rs`).
#[test]
fn bad_fixtures_cover_every_new_rule() {
    let mut fired: Vec<Rule> = [
        scan("offsets_bad.rs", OFFSETS_BAD),
        scan("hotpath_bad.rs", HOTPATH_BAD),
        scan("locks_bad.rs", LOCKS_BAD),
        scan("decorators_bad.rs", DECORATORS_BAD),
    ]
    .iter()
    .flatten()
    .map(|d| d.rule)
    .collect();
    fired.sort_by_key(|r| r.name());
    fired.dedup();
    for pass in [Pass::OffsetArithmetic, Pass::HotPath, Pass::LockOrder, Pass::DecoratorForwarding]
    {
        for rule in pass.rules() {
            assert!(fired.contains(&rule), "no bad fixture fires {rule}");
        }
    }
}

/// The acceptance gate: every analysis pass runs clean over the live
/// workspace — findings are either fixed or carry a reasoned waiver.
#[test]
fn workspace_is_clean_per_pass() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    for pass in Pass::ANALYSIS {
        let (standing, _allowed) = report.pass_counts(pass);
        let details: Vec<String> =
            report.denied().filter(|d| d.pass() == pass).map(|d| d.to_string()).collect();
        assert_eq!(standing, 0, "pass {pass} has standing findings:\n{}", details.join("\n"));
    }
    // The audit must have real breadth: waivers exist in multiple passes.
    for pass in [Pass::OffsetArithmetic, Pass::HotPath, Pass::LockOrder] {
        let (_s, allowed) = report.pass_counts(pass);
        assert!(allowed > 0, "pass {pass} recorded no waivers — scope regressed?");
    }
}
