//! Atomics-pass rule battery over the known-bad / known-good fixtures,
//! plus the workspace-clean gate. The other analysis passes have their own
//! fixture batteries in `memlint_passes.rs`.

use std::path::Path;

use memlint::{scan_source, scan_workspace, Pass, Rule};

const KNOWN_BAD: &str = include_str!("fixtures/known_bad.rs");
const KNOWN_GOOD: &str = include_str!("fixtures/known_good.rs");

fn bad() -> Vec<memlint::Diagnostic> {
    scan_source(Path::new("known_bad.rs"), KNOWN_BAD)
}

#[test]
fn known_bad_fires_every_atomics_rule() {
    let hits = bad();
    for rule in Pass::Atomics.rules().into_iter().chain([Rule::AllowMissingReason]) {
        assert!(
            hits.iter().any(|d| d.rule == rule),
            "rule {rule} did not fire on the known-bad fixture"
        );
    }
}

#[test]
fn known_bad_lines_are_exact() {
    let hits = bad();
    let expect = [
        (Rule::RawAtomicImport, 5),
        (Rule::SharedUnsafeCell, 9),
        (Rule::RelaxedCasSuccess, 14),
        (Rule::RelaxedStoreAfterClaim, 23),
        (Rule::RelaxedCasSuccess, 29),
        (Rule::AtomicTransmute, 40),
        (Rule::AllowMissingReason, 44),
        (Rule::RelaxedCasSuccess, 46),
    ];
    for (rule, line) in expect {
        assert!(
            hits.iter().any(|d| d.rule == rule && d.line == line),
            "expected {rule} at known_bad.rs:{line}; got {:?}",
            hits.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>()
        );
    }
}

#[test]
fn known_bad_has_nothing_waived() {
    // The only allow directive in the bad fixture is reasonless: it waives
    // nothing (its CAS still stands) and is itself a finding.
    assert!(bad().iter().all(|d| d.allowed.is_none()));
}

#[test]
fn known_good_is_clean() {
    let hits = scan_source(Path::new("known_good.rs"), KNOWN_GOOD);
    let standing: Vec<_> = hits.iter().filter(|d| d.allowed.is_none()).collect();
    assert!(standing.is_empty(), "standing diagnostics on known-good fixture: {standing:?}");
    // ...and the deliberate showcase entry is waived with its reason intact.
    assert!(hits
        .iter()
        .any(|d| d.rule == Rule::RelaxedCasSuccess && d.allowed.as_deref().is_some()));
}

/// The acceptance gate: the workspace scan stands clean, every waiver has a
/// written reason, and the audit actually covered the allocator crates.
#[test]
fn workspace_is_clean_under_reasoned_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    let standing: Vec<String> = report.denied().map(|d| d.to_string()).collect();
    assert!(standing.is_empty(), "standing diagnostics:\n{}", standing.join("\n"));
    assert!(report.files > 30, "suspiciously few files scanned: {}", report.files);
    for d in report.allowlisted() {
        let reason = d.allowed.as_deref().unwrap();
        assert!(
            reason.len() >= 10,
            "threadbare allowlist reason at {}:{}",
            d.file.display(),
            d.line
        );
    }
    // The known showcase sites are present as *allowlisted* findings.
    let waived_in =
        |suffix: &str| report.allowlisted().any(|d| d.file.to_string_lossy().ends_with(suffix));
    assert!(waived_in("alloc-ouroboros/src/queues.rs"));
    assert!(waived_in("alloc-xmalloc/src/fifo.rs"));
}
