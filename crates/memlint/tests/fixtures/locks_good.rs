//! Known-good fixture for the lock-order pass: a consistent acquisition
//! order is not a cycle, and a guard confined to an inner block is
//! released before the next lock is taken.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn first(&self) -> u64 {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        *ga + *gb
    }

    pub fn second(&self) -> u64 {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        *ga + *gb
    }

    pub fn scoped(&self) -> u64 {
        let snapshot = {
            let gb = self.beta.lock().unwrap();
            *gb
        };
        let ga = self.alpha.lock().unwrap();
        *ga + snapshot
    }
}
