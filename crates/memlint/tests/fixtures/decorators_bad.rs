//! Known-bad fixture for the decorator-forwarding pass: a decorator that
//! overrides `malloc_warp` but silently inherits the defaulted `metrics`,
//! hiding the inner manager's instrumentation.

pub trait DeviceAllocator {
    fn malloc(&self) -> u64;

    fn malloc_warp(&self) -> u64 {
        self.malloc()
    }

    fn metrics(&self) -> u64 {
        0
    }
}

pub struct Wrap<A> {
    inner: A,
}

impl<A: DeviceAllocator> DeviceAllocator for Wrap<A> {
    fn malloc(&self) -> u64 {
        self.inner.malloc()
    }

    fn malloc_warp(&self) -> u64 {
        self.inner.malloc_warp()
    }
}
