//! Known-good fixture for the hot-path pass: `debug_assert!` compiles out
//! of release builds, `.push(` resolving to an in-crate `fn push` is the
//! simulated device structure (not a host Vec), and code unreachable from
//! the hot roots may allocate freely.

pub struct Ring {
    head: u64,
}

impl Ring {
    pub fn malloc(&mut self, size: u64) -> u64 {
        debug_assert!(size > 0, "zero-size requests are rejected upstream");
        self.push(size)
    }

    fn push(&mut self, size: u64) -> u64 {
        self.head = self.head.wrapping_add(size);
        self.head
    }
}

pub fn build_harness() -> Vec<u64> {
    let mut v = Vec::with_capacity(4);
    v.push(0);
    v
}
