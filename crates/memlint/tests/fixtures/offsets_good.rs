//! Known-good fixture for the offset-arithmetic pass: the checked,
//! untainted, float-cast and reason-waived shapes must all stay silent.

pub fn carve(offset: u64, size: u64) -> Option<u64> {
    offset.checked_add(size)
}

pub fn scale(nbytes: u64) -> u64 {
    nbytes.saturating_mul(2)
}

pub fn page_base(page_idx: u64) -> Option<u64> {
    page_idx.checked_shl(12).map(|b| b)
}

pub fn untainted(a: u64, b: u64) -> u64 {
    a + b
}

pub fn fraction(size: u64) -> f64 {
    size as f64 / 2.0
}

pub fn bounded(off: u64, len: u64) -> u64 {
    // memlint: allow(unchecked-offset-arithmetic) — list invariant keeps off + len at or below the region top
    off + len
}
