//! Known-bad fixture for the hot-path pass: panics and host allocation
//! inside a `malloc` implementation and a helper it calls.

pub struct Fixture {
    items: Vec<u64>,
}

impl Fixture {
    pub fn malloc(&mut self, size: u64) -> u64 {
        let label = size.to_string();
        assert!(!label.is_empty(), "fixture");
        self.reserve(size)
    }

    fn reserve(&mut self, size: u64) -> u64 {
        self.items.push(size);
        self.items.last().copied().unwrap()
    }
}
