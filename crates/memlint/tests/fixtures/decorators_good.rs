//! Known-good fixture for the decorator-forwarding pass: one decorator
//! overrides every defaulted method, the other deliberately suppresses the
//! defaults and says so in a waiver.

pub trait DeviceAllocator {
    fn malloc(&self) -> u64;

    fn malloc_warp(&self) -> u64 {
        self.malloc()
    }

    fn metrics(&self) -> u64 {
        0
    }
}

pub struct Full<A> {
    inner: A,
}

impl<A: DeviceAllocator> DeviceAllocator for Full<A> {
    fn malloc(&self) -> u64 {
        self.inner.malloc()
    }

    fn malloc_warp(&self) -> u64 {
        self.inner.malloc_warp()
    }

    fn metrics(&self) -> u64 {
        self.inner.metrics()
    }
}

pub struct Opaque<A> {
    inner: A,
}

// memlint: allow(decorator-missing-forward) — Opaque deliberately hides warp batching and metrics; the per-lane defaults are its contract
impl<A: DeviceAllocator> DeviceAllocator for Opaque<A> {
    fn malloc(&self) -> u64 {
        self.inner.malloc()
    }
}
