//! Known-bad fixture for the lock-order pass: two functions acquiring the
//! same pair of locks in opposite orders (a deadlock cycle), and a lock
//! taken while a `launch_gate` guard is held.

use std::sync::Mutex;

pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.alpha.lock().unwrap();
        let gb = self.beta.lock().unwrap();
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.beta.lock().unwrap();
        let ga = self.alpha.lock().unwrap();
        *gb + *ga
    }
}

pub struct Gate {
    launch_gate: Mutex<u64>,
    state: Mutex<u64>,
}

impl Gate {
    pub fn launch(&self) -> u64 {
        let gate = self.launch_gate.lock().unwrap();
        let st = self.state.lock().unwrap();
        *gate + *st
    }
}
