//! Known-bad fixture for the offset-arithmetic pass: raw `+`/`*`/`<<` on
//! offset-tainted identifiers, exactly the shapes that wrap silently in
//! release builds.

pub fn carve(offset: u64, size: u64) -> u64 {
    offset + size
}

pub fn scale(nbytes: u64) -> u64 {
    nbytes * 2
}

pub fn page_base(page_idx: u64) -> u64 {
    page_idx << 12
}

pub fn guard(size: u64, len: u64) -> bool {
    size + 16 > len
}
