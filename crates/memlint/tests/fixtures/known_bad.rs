//! Known-bad fixture: every rule must fire at the annotated lines.
//! This file is test data, never compiled — line numbers are load-bearing,
//! keep them in sync with `tests/rules.rs`.

use std::sync::atomic::{AtomicU32, Ordering}; // line 5: raw-atomic-import

pub struct SharedState {
    lock: AtomicU32,
    cell: std::cell::UnsafeCell<u64>, // line 9: shared-unsafe-cell
}

pub fn publish_without_edge(flag: &AtomicU32) {
    // line 14: relaxed-cas-success (Relaxed success on the winning CAS)
    let _ = flag.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}

pub fn claim_then_unpublished_store(state: &AtomicU32, data: &AtomicU32) {
    if state
        .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
    {
        // line 23: relaxed-store-after-claim (no release op follows)
        data.store(42, Ordering::Relaxed);
    }
}

pub fn multiline_relaxed_cas(flag: &AtomicU32) {
    // success ordering split across lines still parses: fires on line 29
    let _ = flag.compare_exchange_weak(
        0,
        1,
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
}

pub fn table() -> Box<[AtomicU32]> {
    let v = vec![0u32; 8];
    // line 40: atomic-transmute
    unsafe { std::mem::transmute::<Box<[u32]>, Box<[AtomicU32]>>(v.into_boxed_slice()) }
}

// line 44: allow-missing-reason (directive without a reason)
// memlint: allow(relaxed-cas-success)
pub fn reasonless(flag: &AtomicU32) {
    let _ = flag.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}
