//! Known-good fixture: correct ordering discipline plus properly reasoned
//! allowlist entries — the scan must report nothing standing.
//! Test data only, never compiled.

use gpumem_core::sync::{fence, AtomicU32, Ordering};

pub struct Counter {
    n: AtomicU32,
}

pub fn claim_and_publish(state: &AtomicU32, data: &AtomicU32) {
    if state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
        // Relaxed intermediate write is fine: the Release store below
        // publishes it together with the claim.
        data.store(42, Ordering::Relaxed);
        state.store(2, Ordering::Release);
    }
}

pub fn claim_and_fence(state: &AtomicU32, data: &AtomicU32) {
    if state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed).is_ok() {
        data.store(7, Ordering::Relaxed);
        fence(Ordering::Release);
    }
}

pub fn ticket_ring_claim(tail: &AtomicU32) {
    // memlint: allow(relaxed-cas-success) — ticket claim; the slot seq word carries the Release/Acquire edge.
    let _ = tail.compare_exchange_weak(0, 1, Ordering::Relaxed, Ordering::Relaxed);
}

pub fn strings_and_comments_are_not_code() {
    // a comment mentioning std::sync::atomic must not fire
    let _ = "std::sync::atomic::AtomicU32 in a string must not fire";
    let _ = "x.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smelly_test_code_is_exempt() {
        let a = AtomicU32::new(0);
        let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    }
}
