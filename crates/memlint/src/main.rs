//! Command-line front end: `cargo run -p memlint -- [--deny] [--csv] [ROOT]`.
//!
//! Prints every *standing* (non-allowlisted) diagnostic as `file:line:
//! rule: message`, then a summary. `--deny` turns any standing diagnostic
//! into exit code 2 — the CI gate. `--csv` emits one row per diagnostic
//! (allowlisted ones included) for downstream tooling; `repro audit` builds
//! its per-crate table on the same library API.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut csv = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" => deny = true,
            "--csv" => csv = true,
            "--help" | "-h" => {
                eprintln!("usage: memlint [--deny] [--csv] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("memlint: unknown flag `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match memlint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("memlint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    if csv {
        println!("file,line,rule,allowed,detail");
        for d in &report.diagnostics {
            let (allowed, detail) = match &d.allowed {
                Some(reason) => ("yes", reason.as_str()),
                None => ("no", d.message.as_str()),
            };
            println!(
                "{},{},{},{},{}",
                d.file.display(),
                d.line,
                d.rule,
                allowed,
                csv_quote(detail)
            );
        }
    } else {
        for d in report.denied() {
            println!("{d}");
        }
    }

    let standing = report.denied().count();
    let waived = report.allowlisted().count();
    eprintln!(
        "memlint: {} files, {} diagnostic(s) standing, {} allowlisted",
        report.files, standing, waived
    );

    if deny && standing > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Minimal CSV field quoting (commas/quotes in reasons).
fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::csv_quote;

    #[test]
    fn quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
