//! Command-line front end:
//! `cargo run -p memlint -- [--deny] [--csv] [--json] [--pass NAME] [ROOT]`.
//!
//! Prints every *standing* (non-allowlisted) diagnostic as `file:line:
//! rule: message`, then a per-pass summary. `--deny` turns any standing
//! diagnostic into exit code 2 — the CI gate. `--csv` emits one row per
//! diagnostic (allowlisted ones included) for downstream tooling; `--json`
//! emits the full report as JSON (the GitHub Actions problem matcher and
//! `repro audit` consume the same library API). `--pass NAME` restricts
//! reporting (and the deny gate) to one pass.

use std::path::PathBuf;
use std::process::ExitCode;

use memlint::Pass;

fn main() -> ExitCode {
    let mut deny = false;
    let mut csv = false;
    let mut json = false;
    let mut only_pass: Option<Pass> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--csv" => csv = true,
            "--json" => json = true,
            "--pass" => {
                let Some(name) = args.next() else {
                    eprintln!("memlint: --pass needs a name (one of: {})", pass_names());
                    return ExitCode::FAILURE;
                };
                match Pass::ALL.into_iter().find(|p| p.name() == name) {
                    Some(p) => only_pass = Some(p),
                    None => {
                        eprintln!("memlint: unknown pass `{name}` (one of: {})", pass_names());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: memlint [--deny] [--csv] [--json] [--pass NAME] [ROOT]");
                eprintln!("passes: {}", pass_names());
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') => root = Some(PathBuf::from(other)),
            other => {
                eprintln!("memlint: unknown flag `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let mut report = match memlint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("memlint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if let Some(p) = only_pass {
        report.diagnostics.retain(|d| d.pass() == p);
    }

    if json {
        print!("{}", memlint::render_json(&report));
    } else if csv {
        println!("file,line,pass,rule,allowed,detail");
        for d in &report.diagnostics {
            let (allowed, detail) = match &d.allowed {
                Some(reason) => ("yes", reason.as_str()),
                None => ("no", d.message.as_str()),
            };
            println!(
                "{},{},{},{},{},{}",
                d.file.display(),
                d.line,
                d.pass(),
                d.rule,
                allowed,
                csv_quote(detail)
            );
        }
    } else {
        for d in report.denied() {
            println!("{d}");
        }
    }

    let standing = report.denied().count();
    let waived = report.allowlisted().count();
    let per_pass: Vec<String> = Pass::ALL
        .into_iter()
        .filter(|p| only_pass.is_none_or(|o| o == *p))
        .map(|p| {
            let (s, a) = report.pass_counts(p);
            format!("{}={}+{}", p.name(), s, a)
        })
        .collect();
    eprintln!(
        "memlint: {} files, {} diagnostic(s) standing, {} allowlisted [{}]",
        report.files,
        standing,
        waived,
        per_pass.join(" ")
    );

    if deny && standing > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn pass_names() -> String {
    Pass::ALL.map(|p| p.name()).join(", ")
}

/// Minimal CSV field quoting (commas/quotes in reasons).
fn csv_quote(s: &str) -> String {
    if s.contains(',') || s.contains('"') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::csv_quote;

    #[test]
    fn quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
