//! Shared lexical substrate for every analysis pass.
//!
//! One masking + extent-extraction layer feeds all passes: source text is
//! blanked of comments, strings and `#[cfg(test)]` regions (same length,
//! newlines preserved, so byte offsets translate to line numbers), then
//! function, struct and impl extents are carved out once per file. Passes
//! never re-parse — they pattern-match over [`SourceFile::masked`] and
//! anchor diagnostics through [`SourceFile::line_of`].
//!
//! The scanner is deliberately a hand-rolled lexical pass (the container
//! has no `syn`): it reads the code the way a reviewer skims it, and errs
//! on the side of flagging — anything it cannot prove boring needs either
//! a fix or a written waiver reason.

use std::path::PathBuf;

/// Returns `src` with comments, string literals and char literals blanked
/// to spaces — same length, newlines preserved, so byte offsets and line
/// numbers stay valid.
pub fn mask_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"..." or r#"..."# (any hash count).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    for &byte in &b[start..j] {
                        out.push(if byte == b'\n' { b'\n' } else { b' ' });
                    }
                    i = j;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: 'x' / '\n' are literals,
                // 'a> / 'static are lifetimes (lone quote passes through).
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                        j += 1;
                    }
                    let end = j.min(b.len() - 1);
                    out.extend(std::iter::repeat_n(b' ', end - i + 1));
                    i = j + 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Byte-preserving for ASCII structure; non-ASCII bytes outside the
    // masked literals pass through untouched.
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte offset of each line start (for offset → line translation).
pub fn line_starts(src: &str) -> Vec<usize> {
    let mut v = vec![0];
    for (i, c) in src.bytes().enumerate() {
        if c == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

/// 1-based line containing `offset`.
pub fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// Offset of the matching close delimiter for the open one at `open`.
pub fn match_delim(masked: &[u8], open: usize) -> Option<usize> {
    let (o, c) = match masked[open] {
        b'(' => (b'(', b')'),
        b'{' => (b'{', b'}'),
        b'[' => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, &ch) in masked.iter().enumerate().skip(open) {
        if ch == o {
            depth += 1;
        } else if ch == c {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Offset of the matching open delimiter for the close one at `close`.
pub fn match_delim_back(masked: &[u8], close: usize) -> Option<usize> {
    let (o, c) = match masked[close] {
        b')' => (b'(', b')'),
        b'}' => (b'{', b'}'),
        b']' => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for i in (0..=close).rev() {
        if masked[i] == c {
            depth += 1;
        } else if masked[i] == o {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// All byte offsets of `needle` in `hay`.
pub fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut v = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        v.push(from + p);
        from += p + needle.len();
    }
    v
}

pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Occurrences of `word` in `hay` with identifier boundaries on both sides.
pub fn find_tokens(hay: &str, word: &str) -> Vec<usize> {
    let b = hay.as_bytes();
    find_all(hay, word)
        .into_iter()
        .filter(|&at| {
            let before_ok = at == 0 || !is_ident_byte(b[at - 1]);
            let end = at + word.len();
            let after_ok = end >= b.len() || !is_ident_byte(b[end]);
            before_ok && after_ok
        })
        .collect()
}

/// Offset of the first non-whitespace byte at or after `from`.
pub fn skip_ws(b: &[u8], mut from: usize) -> usize {
    while from < b.len() && b[from].is_ascii_whitespace() {
        from += 1;
    }
    from
}

/// Offset of the last non-whitespace byte strictly before `before`, if any.
pub fn prev_non_ws(b: &[u8], before: usize) -> Option<usize> {
    (0..before).rev().find(|&i| !b[i].is_ascii_whitespace())
}

/// Start offset of the statement containing `offset`: the first
/// non-whitespace byte after the previous `;`, `{` or `}`.
pub fn stmt_start(masked: &str, offset: usize) -> usize {
    let b = masked.as_bytes();
    let mut i = offset;
    while i > 0 {
        match b[i - 1] {
            b';' | b'{' | b'}' => break,
            _ => i -= 1,
        }
    }
    skip_ws(b, i)
}

/// End offset (exclusive) of the statement containing `offset`: just past
/// the next `;`, or the end of the text.
pub fn stmt_end(masked: &str, offset: usize) -> usize {
    let b = masked.as_bytes();
    match b[offset..].iter().position(|&c| c == b';') {
        Some(p) => offset + p + 1,
        None => b.len(),
    }
}

/// Blanks `#[cfg(test)]`-gated items (incl. `#[cfg(all(test, ...))]`) so
/// test-only code — model suites, fixtures inlined in tests — is not
/// audited: tests may intentionally write smelly patterns.
pub fn mask_test_regions(masked: &mut String) {
    let snapshot = masked.clone();
    let bytes = snapshot.as_bytes();
    let mut cuts: Vec<(usize, usize)> = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test"] {
        for at in find_all(&snapshot, pat) {
            // The gated item's body is the next brace group.
            if let Some(open) = snapshot[at..].find('{').map(|p| at + p) {
                if let Some(close) = match_delim(bytes, open) {
                    cuts.push((at, close));
                }
            }
        }
    }
    if cuts.is_empty() {
        return;
    }
    let mut out = snapshot.into_bytes();
    for (a, b) in cuts {
        for p in a..=b.min(out.len() - 1) {
            if out[p] != b'\n' {
                out[p] = b' ';
            }
        }
    }
    *masked = String::from_utf8_lossy(&out).into_owned();
}

/// `(start, end)` byte extents of every brace-bodied item introduced by
/// `kw` ("struct" / "trait") in the masked source.
pub fn item_extents(masked: &str, kw: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut v = Vec::new();
    for at in find_all(masked, &format!("{kw} ")) {
        // Require a token boundary before the keyword (skip identifiers
        // that merely end in it).
        if at > 0 && is_ident_byte(bytes[at - 1]) {
            continue;
        }
        // Body = first brace group after the keyword, unless a `;` ends the
        // item first (trait fn declarations, tuple/unit structs).
        let mut j = at + kw.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                // Skip parenthesised stretches (fn args, tuple fields) so a
                // `;`/`{` inside them does not confuse the item boundary.
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(close) => j = close + 1,
                    None => break,
                },
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            if let Some(close) = match_delim(bytes, open) {
                v.push((at, close));
            }
        }
    }
    v
}

/// One `fn` item: free function, inherent/trait-impl method, or trait
/// method declaration (`body` is `None` when the item ends in `;`).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Identifier after the `fn` keyword.
    pub name: String,
    /// Byte offset of the `fn` keyword.
    pub at: usize,
    /// Parameter pattern identifiers (`self` included), for lock-wrapper
    /// classification.
    pub params: Vec<String>,
    /// Signature text between the `fn` keyword and the body/`;`.
    pub sig: String,
    /// Brace body extent (inclusive braces), when the item has one.
    pub body: Option<(usize, usize)>,
}

/// One `impl` block with its raw header text.
#[derive(Clone, Debug)]
pub struct ImplItem {
    /// Byte offset of the `impl` keyword.
    pub at: usize,
    /// Masked text between `impl` and the body `{` (generics, trait path,
    /// self type, where clause).
    pub header: String,
    /// Brace body extent (inclusive braces).
    pub body: (usize, usize),
}

/// Extracts every `fn` item from the masked source.
fn fn_items(masked: &str) -> Vec<FnItem> {
    let bytes = masked.as_bytes();
    let mut v = Vec::new();
    for at in find_tokens(masked, "fn") {
        // Name (absent for `fn(...)` pointer types — skip those).
        let mut j = skip_ws(bytes, at + 2);
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = masked[name_start..j].to_string();
        // Parameter list: first paren group after the name (generics in
        // between contain no parens).
        let mut params = Vec::new();
        let mut k = j;
        let mut paren: Option<(usize, usize)> = None;
        while k < bytes.len() {
            match bytes[k] {
                b'(' => {
                    if let Some(close) = match_delim(bytes, k) {
                        paren = Some((k, close));
                    }
                    break;
                }
                b'{' | b';' => break,
                _ => k += 1,
            }
        }
        if let Some((po, pc)) = paren {
            for seg in split_top_level(&masked[po + 1..pc]) {
                let pat = seg.split(':').next().unwrap_or("");
                if let Some(id) = pat
                    .rsplit(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                    .find(|s| !s.is_empty())
                {
                    params.push(id.to_string());
                }
            }
        }
        // Body = first top-level brace group, unless `;` ends the item.
        let mut j2 = paren.map(|(_, pc)| pc + 1).unwrap_or(j);
        let mut body = None;
        let mut sig_end = j2;
        while j2 < bytes.len() {
            match bytes[j2] {
                b'{' => {
                    if let Some(close) = match_delim(bytes, j2) {
                        body = Some((j2, close));
                    }
                    sig_end = j2;
                    break;
                }
                b';' => {
                    sig_end = j2;
                    break;
                }
                b'(' | b'[' => match match_delim(bytes, j2) {
                    Some(close) => j2 = close + 1,
                    None => break,
                },
                _ => j2 += 1,
            }
        }
        let sig = masked[at..sig_end.min(masked.len())].to_string();
        v.push(FnItem { name, at, params, sig, body });
    }
    v
}

/// Splits `s` on commas at paren/bracket/brace depth zero.
fn split_top_level(s: &str) -> Vec<&str> {
    let b = s.as_bytes();
    let mut v = Vec::new();
    let (mut depth, mut start) = (0i32, 0usize);
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                v.push(s[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        v.push(s[start..].trim());
    }
    v
}

/// Extracts every `impl` block.
fn impl_items(masked: &str) -> Vec<ImplItem> {
    let bytes = masked.as_bytes();
    let mut v = Vec::new();
    for at in find_tokens(masked, "impl") {
        let mut j = at + "impl".len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(close) => j = close + 1,
                    None => break,
                },
                _ => j += 1,
            }
        }
        let Some(open) = open else { continue };
        let Some(close) = match_delim(bytes, open) else { continue };
        v.push(ImplItem {
            at,
            header: masked[at + "impl".len()..open].to_string(),
            body: (open, close),
        });
    }
    v
}

/// One audited file with its masked text and item extents, computed once
/// and shared by every pass.
pub struct SourceFile {
    /// Workspace-relative path (or the bare label for single-file scans).
    pub rel: PathBuf,
    /// Raw source (waiver directives live in comments, so they are read
    /// from here).
    pub src: String,
    /// Masked source: comments/strings/chars/test regions blanked.
    pub masked: String,
    /// Line-start offsets for `line_of`.
    pub starts: Vec<usize>,
    /// Every `fn` item (functions, methods, trait declarations).
    pub fns: Vec<FnItem>,
    /// Struct body extents.
    pub structs: Vec<(usize, usize)>,
    /// Impl blocks with headers.
    pub impls: Vec<ImplItem>,
}

impl SourceFile {
    pub fn new(rel: PathBuf, src: String) -> SourceFile {
        let mut masked = mask_code(&src);
        mask_test_regions(&mut masked);
        let starts = line_starts(&src);
        let fns = fn_items(&masked);
        let structs = item_extents(&masked, "struct");
        let impls = impl_items(&masked);
        SourceFile { rel, src, masked, starts, fns, structs, impls }
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        line_of(&self.starts, offset)
    }

    /// The crate this file belongs to (`crates/<name>/...`), or
    /// `"workspace-root"` for root `src/` files and out-of-tree scans.
    pub fn crate_name(&self) -> String {
        let s = self.rel.to_string_lossy().replace('\\', "/");
        match s.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
            Some(name) => name.to_string(),
            None => "workspace-root".to_string(),
        }
    }

    /// Whether this file lives under `crates/` (fixtures and single-file
    /// scans do not, and stay in scope for every pass).
    pub fn in_tree(&self) -> bool {
        self.rel.to_string_lossy().replace('\\', "/").starts_with("crates/")
    }
}

/// The whole audited file set — what workspace-level passes walk.
pub struct Workspace {
    pub files: Vec<SourceFile>,
}

impl Workspace {
    pub fn from_sources(sources: Vec<(PathBuf, String)>) -> Workspace {
        Workspace { files: sources.into_iter().map(|(p, s)| SourceFile::new(p, s)).collect() }
    }
}

/// Walks a receiver chain backward from `end` (exclusive): skips one
/// trailing paren group if present, then reads the identifier. Returns the
/// identifier closest to `end` — e.g. `self.pool.launch_gate` → about
/// `launch_gate`, `self.shard(warp)` → `shard`.
pub fn chain_tail_ident(masked: &str, end: usize) -> Option<(usize, String)> {
    let b = masked.as_bytes();
    let mut i = prev_non_ws(b, end)? + 1;
    if i > 0 && b[i - 1] == b')' {
        i = match_delim_back(b, i - 1)?;
    }
    let word_end = i;
    while i > 0 && is_ident_byte(b[i - 1]) {
        i -= 1;
    }
    if i == word_end {
        return None;
    }
    Some((i, masked[i..word_end].to_string()))
}

/// The final identifier token in `s` (for wrapper-call lock arguments:
/// `&self.pool.launch_gate` → `launch_gate`).
pub fn last_ident(s: &str) -> Option<String> {
    let b = s.as_bytes();
    let mut end = b.len();
    loop {
        let e = prev_non_ws(b, end)?;
        if is_ident_byte(b[e]) {
            let mut st = e;
            while st > 0 && is_ident_byte(b[st - 1]) {
                st -= 1;
            }
            return Some(s[st..e + 1].to_string());
        }
        end = e;
    }
}

/// Extends a span rightward over an `as <type>` cast, reporting the cast
/// target. Used by the offset pass to skip float casts (no wrap hazard).
pub fn cast_after(masked: &str, end: usize) -> Option<(usize, String)> {
    let b = masked.as_bytes();
    let j = skip_ws(b, end);
    if !masked[j..].starts_with("as") {
        return None;
    }
    let j2 = j + 2;
    if j2 < b.len() && is_ident_byte(b[j2]) {
        return None;
    }
    let t = skip_ws(b, j2);
    let mut te = t;
    while te < b.len() && is_ident_byte(b[te]) {
        te += 1;
    }
    (te > t).then(|| (te, masked[t..te].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_preserves_length_and_lines() {
        let src = "let a = \"str // not comment\"; // real\nlet b = '\\n'; /* c\n*/ x";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(!m.contains("not comment"));
        assert!(!m.contains("real"));
        assert!(m.contains("let b"));
        assert!(m.contains(" x"));
    }

    #[test]
    fn lifetimes_survive_masking() {
        let m = mask_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(m.contains("fn f<'a>"));
    }

    #[test]
    fn fn_items_extract_names_params_and_bodies() {
        let f = SourceFile::new(
            "x.rs".into(),
            "fn alpha(a: u64, mut b: &str) -> u64 { a }\n\
             trait T { fn decl(&self, n: usize); fn defaulted(&self) -> bool { true } }\n"
                .into(),
        );
        let names: Vec<&str> = f.fns.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["alpha", "decl", "defaulted"]);
        assert_eq!(f.fns[0].params, ["a", "b"]);
        assert!(f.fns[0].body.is_some());
        assert_eq!(f.fns[1].params, ["self", "n"]);
        assert!(f.fns[1].body.is_none(), "trait declaration has no body");
        assert!(f.fns[2].body.is_some(), "trait default has a body");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let f = SourceFile::new("x.rs".into(), "struct S { run: fn(u32) -> u32 }".into());
        assert!(f.fns.is_empty());
    }

    #[test]
    fn impl_headers_cover_generics_and_where_clauses() {
        let f = SourceFile::new(
            "x.rs".into(),
            "impl<A: Tr + ?Sized> Tr for Wrap<A> where A: Send { fn go(&self) {} }".into(),
        );
        assert_eq!(f.impls.len(), 1);
        assert!(f.impls[0].header.contains("Tr for Wrap<A>"));
        assert!(f.impls[0].header.contains("where A: Send"));
    }

    #[test]
    fn chain_tail_skips_call_groups() {
        let m = "self.shard(warp).lock()";
        let at = m.find(".lock").unwrap();
        assert_eq!(chain_tail_ident(m, at).unwrap().1, "shard");
        let m2 = "self.pool.launch_gate.lock()";
        let at2 = m2.find(".lock").unwrap();
        assert_eq!(chain_tail_ident(m2, at2).unwrap().1, "launch_gate");
    }

    #[test]
    fn last_ident_reads_wrapper_args() {
        assert_eq!(last_ident("&self.pool.launch_gate").as_deref(), Some("launch_gate"));
        assert_eq!(last_ident("&shared.state").as_deref(), Some("state"));
        assert_eq!(last_ident("  ").as_deref(), None);
    }

    #[test]
    fn statement_bounds() {
        let m = "fn f() { let a = 1;\n    let b = a + 2; }";
        let at = m.find("a + 2").unwrap();
        assert_eq!(&m[stmt_start(m, at)..stmt_end(m, at)], "let b = a + 2;");
    }

    #[test]
    fn cast_detection() {
        let m = "size as f64 * n";
        assert_eq!(cast_after(m, 4).unwrap().1, "f64");
        assert!(cast_after("size + 1", 4).is_none());
    }
}
