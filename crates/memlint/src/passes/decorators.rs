//! `decorator-forwarding` pass — DeviceAllocator decorators must forward
//! every defaulted trait method.
//!
//! A decorator (`impl<A: DeviceAllocator> DeviceAllocator for Wrap<A>`)
//! that fails to override a *defaulted* trait method gets the trait's
//! generic fallback instead of the inner manager's specialised behaviour:
//! `Cached<XMalloc>::malloc_warp` silently degrades to a per-lane malloc
//! loop, dropping the coalesced protocol the benchmark measures. PR 8
//! audited this dynamically (the Probe decorator counts forwarded calls);
//! this pass proves it statically for every decorator, present and future.
//!
//! Mechanics: find the `trait DeviceAllocator` definition, split its
//! methods into required (no body — the compiler already forces overrides)
//! and defaulted (body present). For every impl whose header both
//! implements `DeviceAllocator for …` *and* bounds a type parameter by
//! `DeviceAllocator` (that bound is what makes it a decorator rather than
//! a leaf allocator), report each defaulted method the impl body does not
//! define. A deliberate non-forward is waived at the impl header with a
//! reason naming why the default is correct for that wrapper.

use std::collections::BTreeSet;

use super::push;
use crate::substrate::{find_tokens, is_ident_byte, prev_non_ws, SourceFile, Workspace};
use crate::{Diagnostic, Rule};

const TRAIT: &str = "DeviceAllocator";

/// Defaulted method names of the `DeviceAllocator` trait defined in
/// `file`, if the file defines it. Token-boundary matching keeps
/// `DeviceAllocatorExt` (the blanket convenience trait) out.
fn defaulted_methods(file: &SourceFile) -> Option<Vec<String>> {
    let masked = &file.masked;
    let def_at = find_tokens(masked, TRAIT)
        .into_iter()
        .find(|&at| masked[..at].trim_end().ends_with("trait"))?;
    // The trait body is the item extent that contains the name.
    let (_, end) = *crate::substrate::item_extents(masked, "trait")
        .iter()
        .find(|&&(s, e)| def_at > s && def_at < e)?;
    let defaulted = file
        .fns
        .iter()
        .filter(|f| f.at > def_at && f.at < end && f.body.is_some())
        .map(|f| f.name.clone())
        .collect();
    Some(defaulted)
}

/// Whether an impl header is a decorator impl: implements the trait for a
/// type *and* bounds some parameter by the trait (`: DeviceAllocator` or
/// `+ DeviceAllocator`), i.e. it wraps an inner allocator.
fn is_decorator_impl(header: &str) -> bool {
    let hits = find_tokens(header, TRAIT);
    let b = header.as_bytes();
    let mut implements = false;
    let mut bounds = false;
    for at in hits {
        let after = header[at + TRAIT.len()..].trim_start();
        if after.starts_with("for") && !after[3..].starts_with(|c: char| is_ident_byte(c as u8)) {
            implements = true;
        }
        if let Some(p) = prev_non_ws(b, at) {
            if b[p] == b':' || b[p] == b'+' {
                bounds = true;
            }
        }
    }
    implements && bounds
}

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Trait definitions: prefer the one in the impl's own file (fixtures
    // carry a local mini-trait), falling back to the workspace-global one.
    let defs: Vec<(usize, Vec<String>)> = ws
        .files
        .iter()
        .enumerate()
        .filter_map(|(i, f)| defaulted_methods(f).map(|m| (i, m)))
        .collect();
    if defs.is_empty() {
        return;
    }

    for (fi, file) in ws.files.iter().enumerate() {
        for imp in &file.impls {
            if !is_decorator_impl(&imp.header) {
                continue;
            }
            let defaulted = defs
                .iter()
                .find(|&&(di, _)| di == fi)
                .or_else(|| defs.first())
                .map(|(_, m)| m.as_slice())
                .unwrap_or(&[]);
            let defined: BTreeSet<&str> = file
                .fns
                .iter()
                .filter(|f| f.at > imp.body.0 && f.at < imp.body.1)
                .map(|f| f.name.as_str())
                .collect();
            let self_ty = imp
                .header
                .split(" for ")
                .nth(1)
                .unwrap_or("?")
                .split(" where ")
                .next()
                .unwrap_or("?")
                .trim();
            // One diagnostic per impl naming every missing method: all are
            // anchored at the impl header, so separate diagnostics would
            // collapse in the (file, line, rule) dedup anyway — and a
            // single waiver line is meant to cover the whole decision.
            let missing: Vec<&str> =
                defaulted.iter().map(String::as_str).filter(|m| !defined.contains(m)).collect();
            if !missing.is_empty() {
                push(
                    out,
                    file,
                    imp.at,
                    Rule::DecoratorMissingForward,
                    format!(
                        "decorator impl for `{self_ty}` does not override defaulted \
                         trait method(s) `{}` — the generic fallback replaces the \
                         inner allocator's specialised path; forward them or waive with \
                         why the default is correct here",
                        missing.join("`, `"),
                    ),
                );
            }
        }
    }
}
