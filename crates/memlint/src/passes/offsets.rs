//! `offset-arithmetic` pass — raw arithmetic on heap-offset quantities.
//!
//! The bug class PRs 2 and 7 fixed by hand: `size + HEADER > self.len`
//! wraps in release builds when `size` is near `u64::MAX`, so the bounds
//! check *passes* and the allocator hands out memory it does not own. The
//! pass taints a small vocabulary of offset/byte/page identifiers and
//! flags raw binary `+`/`*`/`<<` where either operand is tainted, unless
//! the enclosing statement already goes through a checked helper
//! (`checked_add`, `checked_mul`, `saturating_*`, `checked_next_pow2`,
//! explicitly-documented `wrapping_*`).
//!
//! The taint set is deliberately tight — `size`, `sz`, `off`, `offset`,
//! `demand`, `page_idx`, `nbytes`, `byte_len` — so every finding is worth
//! a human decision: a `checked_*` rewrite or a waiver stating the bound
//! that makes the raw op safe.

use super::push;
use crate::substrate::{
    cast_after, chain_tail_ident, is_ident_byte, prev_non_ws, skip_ws, stmt_end, stmt_start,
    SourceFile, Workspace,
};
use crate::{Diagnostic, Rule};

/// Identifiers treated as heap-offset / byte-count / page-index values.
const TAINT: [&str; 8] =
    ["size", "sz", "off", "offset", "demand", "page_idx", "nbytes", "byte_len"];

fn tainted(ident: &str) -> bool {
    TAINT.contains(&ident)
}

/// The statement already routes through a checked/saturating helper — the
/// raw-looking operator is feeding (or guarded by) the safe path.
fn stmt_is_checked(stmt: &str) -> bool {
    ["checked_", "saturating_", "wrapping_", "overflowing_"].iter().any(|p| stmt.contains(p))
}

/// Reads the identifier token starting at or just after `from` (skipping
/// whitespace and one leading `&` / `(`).
fn right_ident(masked: &str, from: usize) -> Option<(usize, String)> {
    let b = masked.as_bytes();
    let mut i = skip_ws(b, from);
    while i < b.len() && (b[i] == b'&' || b[i] == b'(') {
        i = skip_ws(b, i + 1);
    }
    let st = i;
    while i < b.len() && is_ident_byte(b[i]) {
        i += 1;
    }
    (i > st).then(|| (i, masked[st..i].to_string()))
}

/// Binary-operator sites for `+`, `*`, `<<` (excluding compound
/// assignments and unary uses) inside `range` of the masked text.
fn operator_sites(masked: &str, range: (usize, usize)) -> Vec<(usize, &'static str, usize)> {
    let b = masked.as_bytes();
    let mut v = Vec::new();
    let (lo, hi) = range;
    let mut i = lo;
    while i < hi {
        let (op, width): (&'static str, usize) = match b[i] {
            b'+' => ("+", 1),
            b'*' => ("*", 1),
            b'<' if i + 1 < hi && b[i + 1] == b'<' => ("<<", 2),
            _ => {
                i += 1;
                continue;
            }
        };
        let after = i + width;
        // Compound assignment (`+=`, `*=`, `<<=`) mutates in place — the
        // wrap hazard is real but a different shape; out of scope here.
        if after < b.len() && b[after] == b'=' {
            i = after + 1;
            continue;
        }
        // Binary position: a value must end immediately to the left.
        let left_ok = prev_non_ws(b, i)
            .map(|p| is_ident_byte(b[p]) || b[p] == b')' || b[p] == b']')
            .unwrap_or(false);
        if left_ok {
            v.push((i, op, after));
        }
        i = after;
    }
    v
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let masked = &file.masked;
    for item in &file.fns {
        let Some((body_start, body_end)) = item.body else { continue };
        for (at, op, after) in operator_sites(masked, (body_start, body_end)) {
            // Operand taint: the identifier chain ending at the operator
            // (`list.offset() + 16` → `offset`) or the one starting after it.
            let left = chain_tail_ident(masked, at);
            let right = right_ident(masked, after);
            let hit =
                [left.as_ref(), right.as_ref()].into_iter().flatten().find(|(_, id)| tainted(id));
            let Some((_, id)) = hit else { continue };
            // Float casts carry no wrap hazard (`size as f64 * 1e-9`).
            if let Some((_, ty)) = right.as_ref().and_then(|&(end, _)| cast_after(masked, end)) {
                if ty == "f64" || ty == "f32" {
                    continue;
                }
            }
            let stmt = &masked[stmt_start(masked, at)..stmt_end(masked, at)];
            if stmt_is_checked(stmt) {
                continue;
            }
            push(
                out,
                file,
                at,
                Rule::UncheckedOffsetArithmetic,
                format!(
                    "raw `{op}` on offset-tainted `{id}` — wraps silently in release \
                     (a wrapped bounds check passes); use checked_add/checked_mul/\
                     checked_shl or waive with the bound that makes this safe",
                    op = op,
                    id = id,
                ),
            );
        }
    }
}

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        scan_file(file, out);
    }
}
