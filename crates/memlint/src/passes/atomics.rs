//! `atomics` pass — ordering smells (the original memlint).
//!
//! The loom model checker explores sequentially consistent interleavings;
//! it cannot see weak-memory reordering. This pass flags patterns that are
//! correct under SC but broken (or unreviewable) under the real memory
//! model: Relaxed CAS success orderings, claimed-but-never-published
//! stores, raw `std::sync::atomic` escapes from the facade, atomic
//! transmutes, and `UnsafeCell` struct fields.

use super::push;
use crate::substrate::{find_all, match_delim, SourceFile, Workspace};
use crate::{Diagnostic, Rule};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrder {
    fn parse(tok: &str) -> Option<MemOrder> {
        Some(match tok {
            "Relaxed" => MemOrder::Relaxed,
            "Acquire" => MemOrder::Acquire,
            "Release" => MemOrder::Release,
            "AcqRel" => MemOrder::AcqRel,
            "SeqCst" => MemOrder::SeqCst,
            _ => return None,
        })
    }

    fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }
}

#[derive(Clone, Copy, Debug)]
enum OpKind {
    /// `compare_exchange` / `compare_exchange_weak`; the recorded ordering
    /// is the *success* ordering.
    Cas,
    Store,
    Fence,
    /// `fetch_*` / `swap` read-modify-write.
    Rmw,
}

#[derive(Clone, Copy, Debug)]
struct AtomicOp {
    offset: usize,
    kind: OpKind,
    order: MemOrder,
}

/// `Ordering::X` tokens inside `args`, in order.
fn orderings_in(args: &str) -> Vec<MemOrder> {
    find_all(args, "Ordering::")
        .into_iter()
        .filter_map(|p| {
            let rest = &args[p + "Ordering::".len()..];
            let end = rest.find(|c: char| !c.is_ascii_alphanumeric()).unwrap_or(rest.len());
            MemOrder::parse(&rest[..end])
        })
        .collect()
}

/// Extracts every atomic call site from the masked source.
fn atomic_ops(masked: &str) -> Vec<AtomicOp> {
    let bytes = masked.as_bytes();
    let mut ops = Vec::new();
    let mut push_calls = |pat: &str, kind: OpKind| {
        for at in find_all(masked, pat) {
            let open = at + pat.len() - 1; // pat ends with '('
            let Some(close) = match_delim(bytes, open) else {
                continue;
            };
            let args = &masked[open + 1..close];
            let ords = orderings_in(args);
            let order = match kind {
                // compare_exchange(cur, new, success, failure): the success
                // ordering is the second-to-last `Ordering::` token.
                OpKind::Cas if ords.len() >= 2 => ords[ords.len() - 2],
                OpKind::Cas => continue,
                // store/fence/fetch_*: one ordering argument; calls without
                // one are not atomics (same-named inherent methods).
                _ => match ords.last() {
                    Some(&o) => o,
                    None => continue,
                },
            };
            ops.push(AtomicOp { offset: at, kind, order });
        }
    };
    push_calls(".compare_exchange(", OpKind::Cas);
    push_calls(".compare_exchange_weak(", OpKind::Cas);
    push_calls(".store(", OpKind::Store);
    push_calls("fence(", OpKind::Fence);
    for pat in [
        ".fetch_add(",
        ".fetch_sub(",
        ".fetch_and(",
        ".fetch_or(",
        ".fetch_xor(",
        ".fetch_max(",
        ".fetch_min(",
        ".swap(",
    ] {
        push_calls(pat, OpKind::Rmw);
    }
    ops.sort_by_key(|o| o.offset);
    ops
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let masked = &file.masked;

    // relaxed-cas-success + relaxed-store-after-claim share the op table.
    let ops = atomic_ops(masked);
    for op in &ops {
        if matches!(op.kind, OpKind::Cas) && op.order == MemOrder::Relaxed {
            push(
                out,
                file,
                op.offset,
                Rule::RelaxedCasSuccess,
                "compare_exchange success ordering is Relaxed — the winning CAS \
                 publishes nothing; name the atomic that carries the edge"
                    .into(),
            );
        }
    }
    for item in &file.fns {
        let Some((fn_start, fn_end)) = item.body else { continue };
        let in_fn: Vec<&AtomicOp> =
            ops.iter().filter(|o| o.offset > fn_start && o.offset < fn_end).collect();
        let Some(claim_pos) =
            in_fn.iter().position(|o| matches!(o.kind, OpKind::Cas) && o.order.acquires())
        else {
            continue;
        };
        for (i, op) in in_fn.iter().enumerate().skip(claim_pos + 1) {
            if !matches!(op.kind, OpKind::Store) || op.order != MemOrder::Relaxed {
                continue;
            }
            let published = in_fn[i + 1..].iter().any(|later| later.order.releases());
            if !published {
                push(
                    out,
                    file,
                    op.offset,
                    Rule::RelaxedStoreAfterClaim,
                    "Relaxed store after an acquiring CAS with no later release \
                     operation in this function — the claimed state is never \
                     published"
                        .into(),
                );
            }
        }
    }

    // raw-atomic-import: the facade file is the one sanctioned location.
    let is_facade = file.rel.ends_with("core/src/sync.rs");
    if !is_facade {
        for at in find_all(masked, "std::sync::atomic") {
            push(
                out,
                file,
                at,
                Rule::RawAtomicImport,
                "raw std::sync::atomic use outside the gpumem_core::sync facade \
                 — this code is invisible to the loom model checker"
                    .into(),
            );
        }
    }

    // atomic-transmute: a transmute whose masked call text names an atomic.
    let bytes = masked.as_bytes();
    for at in find_all(masked, "transmute") {
        let Some(open) = masked[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(close) = match_delim(bytes, open) else {
            continue;
        };
        // Turbofish types sit between `transmute` and `(`; args inside.
        let span = &masked[at..close];
        if span.contains("Atomic") {
            push(
                out,
                file,
                at,
                Rule::AtomicTransmute,
                "transmute involving atomic types — layout compatibility must \
                 be justified (incl. under cfg(loom))"
                    .into(),
            );
        }
    }

    // shared-unsafe-cell: UnsafeCell fields inside struct bodies.
    for at in find_all(masked, "UnsafeCell<") {
        if file.structs.iter().any(|&(s, e)| at > s && at < e) {
            push(
                out,
                file,
                at,
                Rule::SharedUnsafeCell,
                "UnsafeCell field — mixed atomic/non-atomic access; document \
                 the guard that serialises it"
                    .into(),
            );
        }
    }
}

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        scan_file(file, out);
    }
}
