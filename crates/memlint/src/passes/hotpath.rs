//! `hot-path` pass — panics and host allocation inside device hot paths.
//!
//! The simulated device kernels (`malloc`/`free`/`malloc_warp`/`free_warp`/
//! `free_warp_all` implementations) model GPU-resident protocols: a real
//! device thread can neither unwind nor call the host allocator
//! mid-protocol, so `panic!`/`unwrap`/`expect`/`assert!` and `Vec::push`/
//! `Box::new`/`format!` in those bodies are modeling errors — or host-side
//! bookkeeping that must be named as such with a waiver.
//!
//! The pass roots at every hot-named `fn` in an `alloc-*` crate, closes
//! over the in-crate call graph (a helper called from `malloc` is as hot
//! as `malloc` itself), and flags two rules in the closure:
//!
//! * `hot-path-panic` — unwind machinery (`panic!`, `unreachable!`,
//!   `todo!`, `unimplemented!`, `assert*!`, `.unwrap()`, `.expect(`).
//!   `debug_assert*!` is exempt: it compiles out of release builds.
//! * `hot-path-host-alloc` — host allocation (`Box::new`, `vec![`,
//!   `format!`, `to_string`, …). Collection-style method calls
//!   (`.push(`, `.insert(`, …) are flagged only when the method name does
//!   *not* resolve to an in-crate `fn` — `FifoArray::push` is the
//!   simulated device structure itself, `Vec::push` is the host heap.
//!
//! Scope: `alloc-*` crates plus out-of-tree files (fixtures). The core
//! decorators (`Sanitized`, `Traced`) host-allocate by design — they are
//! host-side instrumentation wrapped around the simulated kernel, not the
//! kernel — so `gpumem-core` is deliberately out of scope.

use std::collections::{BTreeMap, BTreeSet};

use super::push;
use crate::substrate::{find_tokens, Workspace};
use crate::{Diagnostic, Rule};

/// Function names that anchor the device hot path.
const ROOTS: [&str; 5] = ["malloc", "free", "malloc_warp", "free_warp", "free_warp_all"];

/// Unwind machinery: `(pattern, needs leading token boundary)`.
const PANIC_PATTERNS: [&str; 7] =
    ["panic!", "unreachable!", "todo!", "unimplemented!", "assert!", "assert_eq!", "assert_ne!"];

/// Unambiguous host-allocation call patterns.
const ALLOC_PATTERNS: [&str; 9] = [
    "Box::new(",
    "Rc::new(",
    "Arc::new(",
    "Vec::new(",
    "Vec::with_capacity(",
    "String::new(",
    "vec![",
    "format!",
    "String::from(",
];

/// Method names that allocate when the receiver is a host collection.
/// Resolved against the in-crate `fn` map before flagging.
const ALLOC_METHODS: [&str; 6] = ["push", "insert", "extend", "collect", "push_back", "to_vec"];

/// `.to_string(` / `.to_owned(` always land on the host heap.
const ALLOC_METHOD_ALWAYS: [&str; 2] = ["to_string", "to_owned"];

/// One hot function body: `(file index, body range, root it is reached from)`.
struct HotBody {
    file: usize,
    range: (usize, usize),
    root: String,
}

/// One in-crate `fn` definition, with the self-type of its enclosing
/// `impl` block (when it has one) for qualified-call resolution.
struct Def {
    file: usize,
    body: (usize, usize),
    self_ty: Option<String>,
}

/// Base type name an `impl` header applies to: the type after `for` in a
/// trait impl, else the type after the (possibly generic) `impl` keyword.
/// `impl<A: DeviceAllocator> DeviceAllocator for Cached<A>` → `Cached`;
/// `impl State` → `State`; `impl<H: Header, const M: bool> RegEff<H, M>`
/// → `RegEff`.
fn impl_self_ty(header: &str) -> Option<String> {
    let tail = if let Some(pos) = header.rfind(" for ") {
        &header[pos + 5..]
    } else {
        // Skip the generic parameter list after `impl`, if any.
        let b = header.as_bytes();
        let mut i = crate::substrate::skip_ws(b, 0);
        if b.get(i) == Some(&b'<') {
            let mut depth = 0usize;
            while i < b.len() {
                match b[i] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        }
        &header[i..]
    };
    let b = tail.as_bytes();
    let st = crate::substrate::skip_ws(b, 0);
    let mut e = st;
    while e < b.len() && crate::substrate::is_ident_byte(b[e]) {
        e += 1;
    }
    (e > st).then(|| tail[st..e].to_string())
}

/// Self-type of the `impl` block enclosing byte `at`, if any.
fn self_ty_at(file: &crate::substrate::SourceFile, at: usize) -> Option<String> {
    file.impls
        .iter()
        .find(|im| im.body.0 <= at && at < im.body.1)
        .and_then(|im| impl_self_ty(&im.header))
}

/// Whether the byte before `at` permits a token start (rules out
/// `debug_assert!` matching the `assert!` pattern).
fn token_start(masked: &str, at: usize) -> bool {
    at == 0 || !crate::substrate::is_ident_byte(masked.as_bytes()[at - 1])
}

/// Call sites inside `range` as `(qualifier, name)` pairs. The qualifier
/// is the path segment before a `::name(` call (`None` for bare calls and
/// `.name(` method calls); resolution against the in-crate `fn` map
/// happens at the caller so `DevicePtr::new(…)` cannot pull every
/// in-crate `fn new` into the hot closure.
fn call_sites(masked: &str, range: (usize, usize)) -> BTreeSet<(Option<String>, String)> {
    let b = masked.as_bytes();
    let mut sites = BTreeSet::new();
    let (lo, hi) = range;
    let mut i = lo;
    while i < hi {
        if b[i] == b'(' {
            // Read the identifier ending right before the paren.
            let mut st = i;
            while st > lo && crate::substrate::is_ident_byte(b[st - 1]) {
                st -= 1;
            }
            if st == i {
                i += 1;
                continue;
            }
            let qualifier = if st >= lo + 2 && &masked[st - 2..st] == "::" {
                let mut qs = st - 2;
                while qs > lo && crate::substrate::is_ident_byte(b[qs - 1]) {
                    qs -= 1;
                }
                Some(masked[qs..st - 2].to_string())
            } else {
                None
            };
            sites.insert((qualifier, masked[st..i].to_string()));
        }
        i += 1;
    }
    sites
}

/// Type names (`struct`/`enum`) the crate defines, for qualified-call
/// resolution.
fn crate_type_names(ws: &Workspace, file_idxs: &[usize]) -> BTreeSet<String> {
    let mut types = BTreeSet::new();
    for &fi in file_idxs {
        let masked = &ws.files[fi].masked;
        let b = masked.as_bytes();
        for kw in ["struct", "enum"] {
            for at in find_tokens(masked, kw) {
                let st = crate::substrate::skip_ws(b, at + kw.len());
                let mut e = st;
                while e < b.len() && crate::substrate::is_ident_byte(b[e]) {
                    e += 1;
                }
                if e > st {
                    types.insert(masked[st..e].to_string());
                }
            }
        }
    }
    types
}

/// In-scope files grouped by crate, with a per-crate `fn name → (file,
/// body)` map for call-graph closure.
fn crate_groups(ws: &Workspace) -> BTreeMap<String, Vec<usize>> {
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, file) in ws.files.iter().enumerate() {
        let name = file.crate_name();
        if name.starts_with("alloc-") || !file.in_tree() {
            groups.entry(name).or_default().push(idx);
        }
    }
    groups
}

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for (_crate_name, file_idxs) in crate_groups(ws) {
        // fn name → every definition in the crate, tagged with its impl
        // self-type. Bare names are good enough for method calls (allocator
        // crates keep one hot protocol per crate, and over-matching only
        // widens the audit); qualified `Type::name(` calls resolve against
        // the self-type so `ScatterAlloc::free` calling `PageHash::new`
        // cannot drag `ScatterAlloc::new` (a constructor) into the closure.
        let mut defs: BTreeMap<&str, Vec<Def>> = BTreeMap::new();
        for &fi in &file_idxs {
            let file = &ws.files[fi];
            for item in &file.fns {
                if let Some(body) = item.body {
                    defs.entry(item.name.as_str()).or_default().push(Def {
                        file: fi,
                        body,
                        self_ty: self_ty_at(file, item.at),
                    });
                }
            }
        }

        // Closure from the hot roots over in-crate calls.
        let mut hot: Vec<HotBody> = Vec::new();
        let mut seen: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut frontier: Vec<(usize, (usize, usize), String)> = Vec::new();
        for root in ROOTS {
            for d in defs.get(root).map(Vec::as_slice).unwrap_or(&[]) {
                frontier.push((d.file, d.body, root.to_string()));
            }
        }
        let crate_types = crate_type_names(ws, &file_idxs);
        while let Some((fi, body, root)) = frontier.pop() {
            if !seen.insert((fi, body.0)) {
                continue;
            }
            let caller_ty = self_ty_at(&ws.files[fi], body.0);
            for (qualifier, name) in call_sites(&ws.files[fi].masked, body) {
                let want_ty: Option<&str> = match qualifier.as_deref() {
                    None => None, // bare or method call: resolve by name alone
                    Some("Self") => match caller_ty.as_deref() {
                        Some(t) => Some(t),
                        None => None,
                    },
                    Some(q) if crate_types.contains(q) => Some(q),
                    Some(_) => continue, // external type (Vec::, DevicePtr::, …)
                };
                for d in defs.get(name.as_str()).map(Vec::as_slice).unwrap_or(&[]) {
                    if let Some(want) = want_ty {
                        if d.self_ty.as_deref() != Some(want) {
                            continue;
                        }
                    }
                    frontier.push((d.file, d.body, root.clone()));
                }
            }
            hot.push(HotBody { file: fi, range: body, root });
        }

        // Flag the two rule families inside every hot body.
        let mut flagged: BTreeSet<(usize, usize)> = BTreeSet::new();
        for hb in &hot {
            let file = &ws.files[hb.file];
            let masked = &file.masked;
            let (lo, hi) = hb.range;
            let mut hit = |at: usize, rule: Rule, what: &str, out: &mut Vec<Diagnostic>| {
                if !flagged.insert((hb.file, at)) {
                    return;
                }
                push(
                    out,
                    file,
                    at,
                    rule,
                    format!(
                        "{what} inside the device hot path (reached from `{root}`) — \
                         simulated kernels must not {verb} mid-protocol",
                        what = what,
                        root = hb.root,
                        verb = if rule == Rule::HotPathPanic { "unwind" } else { "host-allocate" },
                    ),
                );
            };

            for pat in PANIC_PATTERNS {
                for at in crate::substrate::find_all(masked, pat) {
                    if at >= lo && at < hi && token_start(masked, at) {
                        hit(at, Rule::HotPathPanic, &format!("`{pat}`"), out);
                    }
                }
            }
            for pat in [".unwrap()", ".expect("] {
                for at in crate::substrate::find_all(masked, pat) {
                    if at >= lo && at < hi {
                        hit(
                            at,
                            Rule::HotPathPanic,
                            &format!("`{}`", pat.trim_end_matches('(')),
                            out,
                        );
                    }
                }
            }
            for pat in ALLOC_PATTERNS {
                for at in crate::substrate::find_all(masked, pat) {
                    if at >= lo && at < hi && token_start(masked, at) {
                        hit(
                            at,
                            Rule::HotPathHostAlloc,
                            &format!("`{}`", pat.trim_end_matches(['(', '['])),
                            out,
                        );
                    }
                }
            }
            for m in ALLOC_METHODS {
                // `.push(` on a type the crate defines (FifoArray, queues)
                // is the simulated device structure — only unresolvable
                // method names are treated as host collections.
                if defs.contains_key(m) {
                    continue;
                }
                for at in find_tokens(masked, m) {
                    let call = at + m.len();
                    let is_method = at >= 1 && masked.as_bytes()[at - 1] == b'.';
                    let is_call = masked.as_bytes().get(call) == Some(&b'(');
                    if is_method && is_call && at >= lo && at < hi {
                        hit(at - 1, Rule::HotPathHostAlloc, &format!("`.{m}(…)`"), out);
                    }
                }
            }
            for m in ALLOC_METHOD_ALWAYS {
                for at in find_tokens(masked, m) {
                    let call = at + m.len();
                    let is_method = at >= 1 && masked.as_bytes()[at - 1] == b'.';
                    let is_call = masked.as_bytes().get(call) == Some(&b'(');
                    if is_method && is_call && at >= lo && at < hi {
                        hit(at - 1, Rule::HotPathHostAlloc, &format!("`.{m}()`"), out);
                    }
                }
            }
        }
    }
}
