//! `lock-order` pass — lock-acquisition ordering across the executor and
//! allocator crates.
//!
//! Builds a per-function lock-acquisition graph: each `.lock()` call (or
//! call through an in-crate guard-returning wrapper such as
//! `gpu-sim::exec::lock_pool`) is an acquisition named by the receiver
//! chain's field identifier (`self.pool.launch_gate.lock()` and
//! `lock_pool(&self.pool.launch_gate)` both acquire `launch_gate`). A
//! let-bound guard is held to the end of the function; a temporary guard
//! only to the end of its statement. Acquiring `b` while `a` is held adds
//! the edge `a → b`, keyed by crate.
//!
//! Two rules fire on the global edge set:
//!
//! * `lock-order-cycle` — the edge completes a cycle (including a direct
//!   re-acquisition of a held lock, the immediate self-deadlock).
//! * `lock-across-launch-gate` — any lock taken while the executor's
//!   `launch_gate` is held: the gate serialises whole-grid launches, and
//!   nesting anything under it repeats the PR 5 stall hazard.
//!
//! Scope: `gpu-sim`, the `alloc-*` crates, and out-of-tree files. Lock
//! names are lexical — two fields with the same name in one crate collapse
//! into one node, which only errs toward flagging.

use std::collections::{BTreeMap, BTreeSet};

use super::push;
use crate::substrate::{
    chain_tail_ident, find_all, find_tokens, last_ident, match_delim, stmt_end, stmt_start,
    SourceFile, Workspace,
};
use crate::{Diagnostic, Rule};

/// One lock acquisition inside a function body.
struct Acquire {
    /// Byte offset of the acquisition site.
    at: usize,
    /// Lexical lock name (receiver-chain tail or wrapper argument).
    name: String,
    /// Exclusive end of the held range.
    held_until: usize,
}

/// A lock-ordering edge `from → to`, recorded where `to` was acquired.
struct Edge {
    from: String,
    to: String,
    file: usize,
    at: usize,
}

fn in_scope(file: &SourceFile) -> bool {
    let name = file.crate_name();
    name.starts_with("alloc-") || name == "gpu-sim" || !file.in_tree()
}

/// Guard-returning wrapper functions in the crate (`fn lock_pool<T>(m:
/// &Mutex<T>) -> MutexGuard<…>`): calling one acquires a lock, and the
/// `.lock()` inside the wrapper body is skipped (its receiver is the
/// wrapper's own parameter). The flag records whether the wrapper takes
/// the mutex as a parameter (`Mutex<` in the signature) — then the lock is
/// named by the call-site argument — or locks an internal field (named by
/// the wrapper itself, e.g. `lock_shard`).
fn wrapper_names(ws: &Workspace, file_idxs: &[usize]) -> BTreeMap<String, bool> {
    let mut v = BTreeMap::new();
    for &fi in file_idxs {
        for item in &ws.files[fi].fns {
            if item.sig.contains("MutexGuard") && item.body.is_some() {
                v.insert(item.name.clone(), item.sig.contains("Mutex<"));
            }
        }
    }
    v
}

/// Exclusive end of the innermost brace block containing `at` within
/// `body` — the scope a let-bound guard lives to.
fn enclosing_block_end(masked: &str, body: (usize, usize), at: usize) -> usize {
    let bytes = masked.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    let mut i = body.0;
    while i < at {
        match bytes[i] {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
        i += 1;
    }
    stack
        .last()
        .and_then(|&open| match_delim(bytes, open))
        .map(|close| close.min(body.1))
        .unwrap_or(body.1)
}

/// Whether the guard produced at `at` is let-bound to a named binding
/// (held to end of its block) rather than a temporary (end of statement).
fn is_let_bound(masked: &str, at: usize) -> bool {
    let stmt = &masked[stmt_start(masked, at)..at.min(masked.len())];
    let Some(rest) = stmt.trim_start().strip_prefix("let ") else {
        return false;
    };
    let binding = rest.trim_start().trim_start_matches("mut ").trim_start();
    // `let _ = lock()` drops the guard immediately — not held.
    let ident: String =
        binding.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
    !ident.is_empty() && ident != "_"
}

/// Collects every acquisition in one function body.
fn acquisitions(
    file: &SourceFile,
    body: (usize, usize),
    wrappers: &BTreeMap<String, bool>,
    params: &[String],
) -> Vec<Acquire> {
    let masked = &file.masked;
    let bytes = masked.as_bytes();
    let (lo, hi) = body;
    let mut v = Vec::new();

    for pat in [".lock(", ".try_lock("] {
        for at in find_all(masked, pat) {
            if at < lo || at >= hi {
                continue;
            }
            let Some((_, name)) = chain_tail_ident(masked, at) else { continue };
            // Inside a wrapper, the receiver is the wrapper's parameter —
            // the real identity lives at the call sites.
            if params.contains(&name) {
                continue;
            }
            v.push(Acquire { at, name, held_until: 0 });
        }
    }
    for (w, takes_mutex) in wrappers {
        for at in find_tokens(masked, w) {
            if at < lo || at >= hi {
                continue;
            }
            let open = at + w.len();
            if bytes.get(open) != Some(&b'(') {
                continue;
            }
            // Skip the definition itself (`fn lock_pool(` is a token too).
            if masked[..at].trim_end().ends_with("fn") {
                continue;
            }
            // `lock_pool(&self.pool.launch_gate)` names the lock by its
            // argument; `lock_shard(sm, warp)` (index args, the mutex is
            // internal) names it by the wrapper itself.
            let name = if *takes_mutex {
                let Some(close) = match_delim(bytes, open) else { continue };
                let arg = &masked[open + 1..close];
                let first = arg.split(',').next().unwrap_or("");
                let Some(name) = last_ident(first) else { continue };
                name
            } else {
                w.clone()
            };
            v.push(Acquire { at, name, held_until: 0 });
        }
    }

    for a in &mut v {
        a.held_until = if is_let_bound(masked, a.at) {
            enclosing_block_end(masked, body, a.at)
        } else {
            stmt_end(masked, a.at)
        };
    }
    v.sort_by_key(|a| a.at);
    v
}

pub fn run(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    // Group in-scope files by crate (lock names are per-crate nodes).
    let mut groups: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (idx, file) in ws.files.iter().enumerate() {
        if in_scope(file) {
            groups.entry(file.crate_name()).or_default().push(idx);
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for (crate_name, file_idxs) in &groups {
        let wrappers = wrapper_names(ws, file_idxs);

        // Direct acquisitions per function, then a fixpoint call-through
        // summary: a call to `run_warps_locked` while the launch gate is
        // held nests every lock that callee (transitively) acquires.
        let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut bodies: Vec<(usize, &crate::substrate::FnItem, (usize, usize))> = Vec::new();
        for &fi in file_idxs {
            for item in &ws.files[fi].fns {
                let Some(body) = item.body else { continue };
                bodies.push((fi, item, body));
                let names = acquisitions(&ws.files[fi], body, &wrappers, &item.params)
                    .into_iter()
                    .map(|a| a.name)
                    .collect::<BTreeSet<_>>();
                // Wrapper locks are named at their call sites, not inside.
                if !wrappers.contains_key(&item.name) {
                    direct.entry(item.name.clone()).or_default().extend(names);
                }
            }
        }
        // Call sites of every known fn name, per body, computed once.
        // Method calls resolve in-crate only on a plain `self.` receiver:
        // `self.cuda.malloc(…)` delegates to an *embedded* allocator (often
        // another crate's type) that merely shares the method name.
        let fn_names: BTreeSet<String> = direct.keys().cloned().collect();
        let calls_of = |fi: usize, body: (usize, usize), callee: &str| -> Vec<usize> {
            let masked = &ws.files[fi].masked;
            find_tokens(masked, callee)
                .into_iter()
                .filter(|&at| {
                    let in_body = at >= body.0
                        && at < body.1
                        && masked.as_bytes().get(at + callee.len()) == Some(&b'(');
                    if !in_body {
                        return false;
                    }
                    if at > 0 && masked.as_bytes()[at - 1] == b'.' {
                        return chain_tail_ident(masked, at - 1)
                            .is_some_and(|(_, recv)| recv == "self");
                    }
                    true
                })
                .collect()
        };
        let mut callee_map: Vec<BTreeSet<String>> = Vec::with_capacity(bodies.len());
        for &(fi, item, body) in &bodies {
            let mut set = BTreeSet::new();
            if !wrappers.contains_key(&item.name) {
                for name in &fn_names {
                    if name != &item.name && !calls_of(fi, body, name).is_empty() {
                        set.insert(name.clone());
                    }
                }
            }
            callee_map.push(set);
        }
        let mut summary = direct.clone();
        loop {
            let mut changed = false;
            for (bi, &(_, item, _)) in bodies.iter().enumerate() {
                if wrappers.contains_key(&item.name) {
                    continue;
                }
                let mut acc: BTreeSet<String> = BTreeSet::new();
                for callee in &callee_map[bi] {
                    if let Some(locks) = summary.get(callee) {
                        acc.extend(locks.iter().cloned());
                    }
                }
                let entry = summary.entry(item.name.clone()).or_default();
                let before = entry.len();
                entry.extend(acc);
                if entry.len() != before {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        for &(fi, item, body) in &bodies {
            let file = &ws.files[fi];
            let masked = &file.masked;
            let mut acqs = acquisitions(file, body, &wrappers, &item.params);
            // Virtual acquisitions: call sites of in-crate functions that
            // themselves take locks. A non-wrapper callee releases its
            // locks before returning, so the held range is the call
            // expression itself — not the whole statement (two calls in
            // different `if` branches of one statement never overlap).
            for (callee, locks) in &summary {
                if locks.is_empty() || callee == &item.name || wrappers.contains_key(callee) {
                    continue;
                }
                for at in calls_of(fi, body, callee) {
                    let open = at + callee.len();
                    let held_until = match_delim(masked.as_bytes(), open)
                        .map(|c| c + 1)
                        .unwrap_or_else(|| stmt_end(masked, at));
                    for lock in locks {
                        acqs.push(Acquire { at, name: lock.clone(), held_until });
                    }
                }
            }
            acqs.sort_by_key(|a| a.at);
            for i in 0..acqs.len() {
                for j in i + 1..acqs.len() {
                    if acqs[j].at < acqs[i].held_until && acqs[i].at != acqs[j].at {
                        edges.push(Edge {
                            from: format!("{crate_name}::{}", acqs[i].name),
                            to: format!("{crate_name}::{}", acqs[j].name),
                            file: fi,
                            at: acqs[j].at,
                        });
                    }
                }
            }
        }
    }

    // Adjacency over the whole edge set for reachability queries.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };

    for e in &edges {
        let file = &ws.files[e.file];
        let (from_lock, to_lock) =
            (e.from.rsplit("::").next().unwrap_or(""), e.to.rsplit("::").next().unwrap_or(""));
        if e.from == e.to || reaches(&e.to, &e.from) {
            push(
                out,
                file,
                e.at,
                Rule::LockOrderCycle,
                format!(
                    "acquiring `{to_lock}` while `{from_lock}` is held completes a \
                     lock-ordering cycle — another path acquires them in the \
                     opposite order (deadlock)",
                ),
            );
        }
        if from_lock == "launch_gate" {
            push(
                out,
                file,
                e.at,
                Rule::LockAcrossLaunchGate,
                format!(
                    "`{to_lock}` acquired while the executor launch gate is held — \
                     the gate serialises whole-grid launches; nesting locks under \
                     it stalls every SM (PR 5 hazard)",
                ),
            );
        }
    }
}
