//! The pass registry: one module per analysis pass, all running over the
//! shared [`substrate`](crate::substrate) workspace.
//!
//! A pass is a plain function `fn(&Workspace, &mut Vec<Diagnostic>)` — it
//! reads the pre-masked sources and item extents and appends diagnostics.
//! [`registry`] returns them in reporting order; `scan_files` runs each in
//! turn and then applies the allowlist uniformly, so passes never think
//! about waivers.

use crate::substrate::Workspace;
use crate::{Diagnostic, Pass};

pub mod atomics;
pub mod decorators;
pub mod hotpath;
pub mod locks;
pub mod offsets;

/// One registered pass.
pub struct PassImpl {
    /// Identity (name, rule catalog).
    pub pass: Pass,
    /// The analysis itself.
    pub run: fn(&Workspace, &mut Vec<Diagnostic>),
}

/// Every source-analysis pass, in reporting order. (The `waivers` pass is
/// the framework's own directive audit and runs inside `scan_files`.)
pub fn registry() -> Vec<PassImpl> {
    vec![
        PassImpl { pass: Pass::Atomics, run: atomics::run },
        PassImpl { pass: Pass::OffsetArithmetic, run: offsets::run },
        PassImpl { pass: Pass::HotPath, run: hotpath::run },
        PassImpl { pass: Pass::LockOrder, run: locks::run },
        PassImpl { pass: Pass::DecoratorForwarding, run: decorators::run },
    ]
}

/// Pushes a diagnostic anchored at `offset` within `file`.
pub(crate) fn push(
    out: &mut Vec<Diagnostic>,
    file: &crate::substrate::SourceFile,
    offset: usize,
    rule: crate::Rule,
    message: String,
) {
    out.push(Diagnostic {
        file: file.rel.clone(),
        line: file.line_of(offset),
        rule,
        message,
        allowed: None,
    });
}
