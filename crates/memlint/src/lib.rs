//! # memlint — multi-pass heap-safety static analyzer
//!
//! The model checker (`gpumem_core::sync` under `--cfg loom`) explores
//! *sequentially consistent* interleavings at tiny bounds; the sanitizer
//! and Probe audits catch bugs only when a test tier happens to drive the
//! broken path. memlint covers the static half of the audit: it parses the
//! workspace source once (masked text + function/struct/impl extents — see
//! [`substrate`]) and runs a registry of analysis **passes** over it, each
//! with its own rule catalog, reporting `file:line` diagnostics.
//!
//! ## Passes
//!
//! | pass | rules | smell |
//! |------|-------|-------|
//! | `atomics` | `relaxed-cas-success`, `relaxed-store-after-claim`, `raw-atomic-import`, `atomic-transmute`, `shared-unsafe-cell` | ordering smells: patterns correct under SC but broken (or unreviewable) under the real memory model |
//! | `offset-arithmetic` | `unchecked-offset-arithmetic` | raw `+`/`*`/`<<` on heap offsets, byte counts and page indices outside the checked helpers (`checked_add`, `checked_next_pow2`, the `SizingError` paths) — the overflow class PRs 2 and 7 fixed by hand |
//! | `hot-path` | `hot-path-panic`, `hot-path-host-alloc` | `panic!`/`unwrap`/`expect`/`assert!` and host allocation (`Vec::push`, `Box::new`, `format!`…) inside `malloc`/`free`/`malloc_warp`/`free_warp` implementations and the in-crate functions they call: simulated device kernels must never host-allocate or unwind mid-protocol |
//! | `lock-order` | `lock-order-cycle`, `lock-across-launch-gate` | per-function lock-acquisition graph over `gpu-sim` and the allocator crates: ordering cycles deadlock, and any lock taken under the executor's `launch_gate` repeats the PR 5 hazard |
//! | `decorator-forwarding` | `decorator-missing-forward` | a `DeviceAllocator` decorator (`impl<A: DeviceAllocator> DeviceAllocator for X<A>`) that fails to override a defaulted trait method silently drops the inner manager's specialised behaviour — the bug class PR 8's runtime Probe audit checked dynamically |
//!
//! The waiver audit (`allow-missing-reason`) rides along as a framework
//! rule: a directive without a written reason, or naming an unknown rule,
//! is itself a standing finding.
//!
//! ## Waivers
//!
//! A diagnostic is waived by a directive on the same line or the line
//! directly above. One directive may name several rules:
//!
//! ```text
//! // memlint: allow(hot-path-panic) — poison propagation of the simulated device lock
//! // memlint: allow(unchecked-offset-arithmetic, hot-path-host-alloc) — reason text
//! ```
//!
//! The reason text after the dash is mandatory: an allow without one still
//! fails `--deny` (rule `allow-missing-reason`), so every waived smell in
//! the tree carries a written justification.
//!
//! ## Scope and shape
//!
//! The scanner is a hand-rolled lexical pass (the container has no `syn`):
//! it masks comments, strings and `#[cfg(test)]` regions, then does
//! paren/brace-matched extraction of call sites, function extents and
//! struct/impl extents. That is deliberately dumb — it reads the code the
//! way a reviewer skims it — and errs on the side of flagging: anything it
//! cannot prove boring needs either a fix or a written reason.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod passes;
pub mod substrate;

use substrate::Workspace;

// ---------------------------------------------------------------- passes

/// The analysis passes, in reporting order. `Waivers` is the framework's
/// own audit of the allow directives rather than a source analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Atomics-ordering smells (the original memlint).
    Atomics,
    /// Unchecked offset/byte/page arithmetic.
    OffsetArithmetic,
    /// Panics and host allocation inside device hot paths.
    HotPath,
    /// Lock-acquisition ordering across the executor and allocators.
    LockOrder,
    /// DeviceAllocator decorator forwarding completeness.
    DecoratorForwarding,
    /// Waiver-directive hygiene (framework rule).
    Waivers,
}

impl Pass {
    /// Every pass, in reporting order.
    pub const ALL: [Pass; 6] = [
        Pass::Atomics,
        Pass::OffsetArithmetic,
        Pass::HotPath,
        Pass::LockOrder,
        Pass::DecoratorForwarding,
        Pass::Waivers,
    ];

    /// The five source-analysis passes (everything but the waiver audit).
    pub const ANALYSIS: [Pass; 5] = [
        Pass::Atomics,
        Pass::OffsetArithmetic,
        Pass::HotPath,
        Pass::LockOrder,
        Pass::DecoratorForwarding,
    ];

    /// Kebab-case name used in reports, CSV/JSON records and docs.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Atomics => "atomics",
            Pass::OffsetArithmetic => "offset-arithmetic",
            Pass::HotPath => "hot-path",
            Pass::LockOrder => "lock-order",
            Pass::DecoratorForwarding => "decorator-forwarding",
            Pass::Waivers => "waivers",
        }
    }

    /// The pass's rule catalog.
    pub fn rules(self) -> Vec<Rule> {
        Rule::ALL.into_iter().filter(|r| r.pass() == self).collect()
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------- rules

/// The rule catalog, across every pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `compare_exchange*` with `Relaxed` success ordering.
    RelaxedCasSuccess,
    /// `Relaxed` store after an acquiring CAS, never published.
    RelaxedStoreAfterClaim,
    /// `std::sync::atomic` used outside the facade.
    RawAtomicImport,
    /// `transmute` involving atomic types.
    AtomicTransmute,
    /// `UnsafeCell` field in a (shared) struct.
    SharedUnsafeCell,
    /// Raw `+`/`*`/`<<` on offset/byte/page quantities outside the checked
    /// helpers.
    UncheckedOffsetArithmetic,
    /// Panic/unwind machinery inside a device hot path.
    HotPathPanic,
    /// Host allocation inside a device hot path.
    HotPathHostAlloc,
    /// Lock acquisition completing an ordering cycle.
    LockOrderCycle,
    /// Lock acquired while the executor's launch gate is held.
    LockAcrossLaunchGate,
    /// Decorator impl missing an override of a defaulted trait method.
    DecoratorMissingForward,
    /// Allowlist directive without a reason (or with an unknown rule).
    AllowMissingReason,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 12] = [
        Rule::RelaxedCasSuccess,
        Rule::RelaxedStoreAfterClaim,
        Rule::RawAtomicImport,
        Rule::AtomicTransmute,
        Rule::SharedUnsafeCell,
        Rule::UncheckedOffsetArithmetic,
        Rule::HotPathPanic,
        Rule::HotPathHostAlloc,
        Rule::LockOrderCycle,
        Rule::LockAcrossLaunchGate,
        Rule::DecoratorMissingForward,
        Rule::AllowMissingReason,
    ];

    /// Kebab-case name used in diagnostics and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RelaxedCasSuccess => "relaxed-cas-success",
            Rule::RelaxedStoreAfterClaim => "relaxed-store-after-claim",
            Rule::RawAtomicImport => "raw-atomic-import",
            Rule::AtomicTransmute => "atomic-transmute",
            Rule::SharedUnsafeCell => "shared-unsafe-cell",
            Rule::UncheckedOffsetArithmetic => "unchecked-offset-arithmetic",
            Rule::HotPathPanic => "hot-path-panic",
            Rule::HotPathHostAlloc => "hot-path-host-alloc",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::LockAcrossLaunchGate => "lock-across-launch-gate",
            Rule::DecoratorMissingForward => "decorator-missing-forward",
            Rule::AllowMissingReason => "allow-missing-reason",
        }
    }

    /// The pass this rule belongs to.
    pub fn pass(self) -> Pass {
        match self {
            Rule::RelaxedCasSuccess
            | Rule::RelaxedStoreAfterClaim
            | Rule::RawAtomicImport
            | Rule::AtomicTransmute
            | Rule::SharedUnsafeCell => Pass::Atomics,
            Rule::UncheckedOffsetArithmetic => Pass::OffsetArithmetic,
            Rule::HotPathPanic | Rule::HotPathHostAlloc => Pass::HotPath,
            Rule::LockOrderCycle | Rule::LockAcrossLaunchGate => Pass::LockOrder,
            Rule::DecoratorMissingForward => Pass::DecoratorForwarding,
            Rule::AllowMissingReason => Pass::Waivers,
        }
    }

    /// Parses an allow-directive rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// File the smell lives in (workspace-relative when scanned via
    /// [`scan_workspace`]).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the concrete site.
    pub message: String,
    /// `Some(reason)` when an allow directive with a written reason waives
    /// this diagnostic.
    pub allowed: Option<String>,
}

impl Diagnostic {
    /// The pass that produced this diagnostic.
    pub fn pass(&self) -> Pass {
        self.rule.pass()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Scan result over a file set.
#[derive(Default)]
pub struct Report {
    /// Every finding, allowlisted or not.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Findings that stand (not waived): what `--deny` gates on.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Findings waived by a reasoned allow directive.
    pub fn allowlisted(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// Whether `--deny` would pass.
    pub fn is_clean(&self) -> bool {
        self.denied().next().is_none()
    }

    /// `(standing, allowlisted)` counts for one pass.
    pub fn pass_counts(&self, pass: Pass) -> (usize, usize) {
        let mut standing = 0;
        let mut allowed = 0;
        for d in &self.diagnostics {
            if d.pass() == pass {
                if d.allowed.is_some() {
                    allowed += 1;
                } else {
                    standing += 1;
                }
            }
        }
        (standing, allowed)
    }
}

// -------------------------------------------------------------- allowlist

struct Allow {
    line: usize,
    /// Each named rule: parsed form plus the raw text (for unknown-rule
    /// reporting).
    rules: Vec<(Option<Rule>, String)>,
    reason: Option<String>,
}

/// Extracts `// memlint: allow(rule[, rule…]) — reason` directives from the
/// *unmasked* source (they live in comments).
fn directives(src: &str) -> Vec<Allow> {
    let mut v = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(p) = line.find("memlint: allow(") else {
            continue;
        };
        let rest = &line[p + "memlint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules = rest[..close]
            .split(',')
            .map(|raw| {
                let raw = raw.trim().to_string();
                (Rule::from_name(&raw), raw)
            })
            .collect();
        let after = rest[close + 1..].trim_start();
        // Reason separator: em dash, en dash, hyphen(s) or a colon.
        let reason = ["—", "–", "-", ":"]
            .iter()
            .find_map(|sep| after.strip_prefix(sep))
            .map(|r| r.trim_start_matches(['—', '–', '-', ':', ' ']).trim())
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        v.push(Allow { line: idx + 1, rules, reason });
    }
    v
}

// ------------------------------------------------------------------ scan

/// Scans a set of sources together: workspace-level passes (lock graphs,
/// decorator audits) see the whole set, per-file rules each file. This is
/// the core entry point; [`scan_source`] and [`scan_workspace`] wrap it.
pub fn scan_files(sources: Vec<(PathBuf, String)>) -> Report {
    let ws = Workspace::from_sources(sources);
    let mut out: Vec<Diagnostic> = Vec::new();
    for pass in passes::registry() {
        (pass.run)(&ws, &mut out);
    }

    // Apply the allowlist, then audit the directives themselves.
    for file in &ws.files {
        let allows = directives(&file.src);
        for d in out.iter_mut().filter(|d| d.file == file.rel) {
            let fired = allows.iter().find(|a| {
                (a.line == d.line || a.line + 1 == d.line)
                    && a.rules.iter().any(|(r, _)| *r == Some(d.rule))
            });
            if let Some(a) = fired {
                // A reasonless allow waives nothing: the directive itself
                // becomes the finding (below), keeping --deny red.
                d.allowed = a.reason.clone();
            }
        }
        for a in &allows {
            for (rule, raw) in &a.rules {
                let msg = match (rule, &a.reason) {
                    (None, _) => format!("allow directive names unknown rule `{raw}`"),
                    (Some(_), None) => {
                        format!("allow({raw}) has no reason — write `— <why this site is sound>`")
                    }
                    _ => continue,
                };
                out.push(Diagnostic {
                    file: file.rel.clone(),
                    line: a.line,
                    rule: Rule::AllowMissingReason,
                    message: msg,
                    allowed: None,
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule.name()).cmp(&(&b.file, b.line, b.rule.name())));
    // Two edges can land on one site (a lock nested under two held guards);
    // one diagnostic — and one waiver — per (file, line, rule) is enough.
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.rule == b.rule);
    Report { files: ws.files.len(), diagnostics: out }
}

/// Scans one file's source text. `file` labels the diagnostics (and
/// exempts the facade itself from `raw-atomic-import`).
pub fn scan_source(file: &Path, src: &str) -> Vec<Diagnostic> {
    scan_files(vec![(file.to_path_buf(), src.to_string())]).diagnostics
}

// -------------------------------------------------------------- workspace

/// Whether a workspace-relative path is audited. Shims are out of scope
/// (the loom shim *implements* the facade's backend), memlint's own
/// sources talk about the smells by name, and only `src/` trees ship.
fn audited(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    if !s.ends_with(".rs") {
        return false;
    }
    let under_src = s.starts_with("src/") || s.contains("/src/");
    under_src
        && !s.starts_with("shims/")
        && !s.starts_with("crates/memlint/")
        && !s.starts_with("target/")
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans every audited `.rs` file under `root` (a workspace checkout).
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut sources = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if !audited(&rel) {
            continue;
        }
        sources.push((rel, fs::read_to_string(&path)?));
    }
    Ok(scan_files(sources))
}

// ------------------------------------------------------------------ json

/// Renders the report as a JSON document: one record per diagnostic with
/// `file`/`line`/`pass`/`rule`/`allowed`/`reason`/`message` fields, plus
/// summary counts. Hand-rolled (the workspace has no serde); consumed by
/// `memlint --json`, `repro audit`, and downstream CI annotators.
pub fn render_json(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"files\": {},\n", report.files));
    s.push_str(&format!("  \"standing\": {},\n", report.denied().count()));
    s.push_str(&format!("  \"allowlisted\": {},\n", report.allowlisted().count()));
    s.push_str("  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("\n    { ");
        s.push_str(&format!("\"file\": \"{}\", ", json_escape(&d.file.to_string_lossy())));
        s.push_str(&format!("\"line\": {}, ", d.line));
        s.push_str(&format!("\"pass\": \"{}\", ", d.pass().name()));
        s.push_str(&format!("\"rule\": \"{}\", ", d.rule.name()));
        s.push_str(&format!("\"allowed\": {}, ", d.allowed.is_some()));
        match &d.allowed {
            Some(r) => s.push_str(&format!("\"reason\": \"{}\", ", json_escape(r))),
            None => s.push_str("\"reason\": null, "),
        }
        s.push_str(&format!("\"message\": \"{}\" }}", json_escape(&d.message)));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Minimal JSON string escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_success_ordering_parsed_across_lines() {
        let src = "fn f(a: &AtomicU32) {\n    let _ = a.compare_exchange_weak(\n        0,\n        1,\n        Ordering::Relaxed,\n        Ordering::Relaxed,\n    );\n}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::RelaxedCasSuccess);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn allow_on_previous_line_waives_with_reason() {
        let src = "fn f(a: &AtomicU32) {\n    // memlint: allow(relaxed-cas-success) — ticket ring, seq publishes\n    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].allowed.as_deref(), Some("ticket ring, seq publishes"));
    }

    #[test]
    fn reasonless_allow_still_fails() {
        let src = "// memlint: allow(atomic-transmute)\nfn f() {}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowMissingReason);
    }

    #[test]
    fn multi_rule_directive_waives_each_named_rule() {
        let src = "fn place(off: u64, size: u64) -> u64 {\n    // memlint: allow(unchecked-offset-arithmetic, relaxed-cas-success) — bounded by construction, test of the comma grammar\n    off + size\n}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert!(
            d.iter().all(|d| d.rule != Rule::UncheckedOffsetArithmetic || d.allowed.is_some()),
            "comma-listed rule must be waived: {d:?}"
        );
        assert!(d.iter().all(|d| d.rule != Rule::AllowMissingReason));
    }

    #[test]
    fn unknown_rule_in_comma_list_is_flagged() {
        let src = "// memlint: allow(hot-path-panic, no-such-rule) — reason here\nfn f() {}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowMissingReason);
        assert!(d[0].message.contains("no-such-rule"));
    }

    #[test]
    fn test_modules_are_not_audited() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicU32) {\n        let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n    }\n}\n";
        assert!(scan_source(Path::new("x.rs"), src).is_empty());
    }

    #[test]
    fn every_rule_maps_to_a_pass_and_back() {
        for rule in Rule::ALL {
            assert!(rule.pass().rules().contains(&rule), "{rule} missing from its pass catalog");
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        let total: usize = Pass::ALL.iter().map(|p| p.rules().len()).sum();
        assert_eq!(total, Rule::ALL.len(), "every rule belongs to exactly one pass");
    }

    #[test]
    fn json_rendering_escapes_and_counts() {
        let report = Report {
            files: 1,
            diagnostics: vec![Diagnostic {
                file: PathBuf::from("a \"b\".rs"),
                line: 3,
                rule: Rule::HotPathPanic,
                message: "line1\nline2".into(),
                allowed: None,
            }],
        };
        let j = render_json(&report);
        assert!(j.contains("\"pass\": \"hot-path\""));
        assert!(j.contains("\"rule\": \"hot-path-panic\""));
        assert!(j.contains("a \\\"b\\\".rs"));
        assert!(j.contains("line1\\nline2"));
        assert!(j.contains("\"standing\": 1"));
    }
}
