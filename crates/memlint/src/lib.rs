//! # memlint — atomics-ordering static pass
//!
//! The model checker (`gpumem_core::sync` under `--cfg loom`) explores
//! *sequentially consistent* interleavings; it cannot see weak-memory
//! reordering. This pass covers the other half of the audit: it parses the
//! workspace source and flags **ordering smells** — patterns that are
//! correct under SC but broken (or unreviewable) under the real memory
//! model — as `file:line` diagnostics.
//!
//! ## Rules
//!
//! | rule | smell |
//! |------|-------|
//! | `relaxed-cas-success`       | `compare_exchange*` whose *success* ordering is `Relaxed`: a CAS that wins a race but publishes nothing. Correct only when another atomic carries the edge (e.g. Vyukov ticket rings) — which is exactly what the allowlist reason must say. |
//! | `relaxed-store-after-claim` | a `Relaxed` store following an acquiring CAS with no later release-or-stronger operation in the same function: the claimed state is written but never published. |
//! | `raw-atomic-import`         | `std::sync::atomic` referenced outside the `gpumem_core::sync` facade: the code silently drops out of the model checker's view. |
//! | `atomic-transmute`          | `transmute` to or from atomic types: layout-compatibility claim that each site must justify. |
//! | `shared-unsafe-cell`        | an `UnsafeCell` struct field: mixed atomic/non-atomic access needs a documented guard. |
//! | `allow-missing-reason`      | an allowlist entry without a written reason (never allowlistable itself). |
//!
//! ## Allowlist
//!
//! A diagnostic is waived by a directive on the same line or the line
//! directly above:
//!
//! ```text
//! // memlint: allow(relaxed-cas-success) — seq carries the release edge
//! ```
//!
//! The reason text after the dash is mandatory: an allow without one still
//! fails `--deny` (rule `allow-missing-reason`), so every waived smell in
//! the tree carries a written justification.
//!
//! ## Scope and shape
//!
//! The scanner is a hand-rolled lexical pass (the container has no `syn`):
//! it masks comments, strings and `#[cfg(test)]` regions, then does
//! paren/brace-matched extraction of atomic call sites, function extents
//! and struct extents. That is deliberately dumb — it reads the code the
//! way a reviewer skims it — and errs on the side of flagging: anything it
//! cannot prove boring needs either a fix or a written reason.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

// ---------------------------------------------------------------- rules

/// The rule catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `compare_exchange*` with `Relaxed` success ordering.
    RelaxedCasSuccess,
    /// `Relaxed` store after an acquiring CAS, never published.
    RelaxedStoreAfterClaim,
    /// `std::sync::atomic` used outside the facade.
    RawAtomicImport,
    /// `transmute` involving atomic types.
    AtomicTransmute,
    /// `UnsafeCell` field in a (shared) struct.
    SharedUnsafeCell,
    /// Allowlist directive without a reason (or with an unknown rule).
    AllowMissingReason,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 6] = [
        Rule::RelaxedCasSuccess,
        Rule::RelaxedStoreAfterClaim,
        Rule::RawAtomicImport,
        Rule::AtomicTransmute,
        Rule::SharedUnsafeCell,
        Rule::AllowMissingReason,
    ];

    /// Kebab-case name used in diagnostics and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            Rule::RelaxedCasSuccess => "relaxed-cas-success",
            Rule::RelaxedStoreAfterClaim => "relaxed-store-after-claim",
            Rule::RawAtomicImport => "raw-atomic-import",
            Rule::AtomicTransmute => "atomic-transmute",
            Rule::SharedUnsafeCell => "shared-unsafe-cell",
            Rule::AllowMissingReason => "allow-missing-reason",
        }
    }

    /// Parses an allow-directive rule name.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// File the smell lives in (workspace-relative when scanned via
    /// [`scan_workspace`]).
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the concrete site.
    pub message: String,
    /// `Some(reason)` when an allow directive with a written reason waives
    /// this diagnostic.
    pub allowed: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file.display(), self.line, self.rule, self.message)
    }
}

/// Scan result over a file set.
#[derive(Default)]
pub struct Report {
    /// Every finding, allowlisted or not.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
}

impl Report {
    /// Findings that stand (not waived): what `--deny` gates on.
    pub fn denied(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_none())
    }

    /// Findings waived by a reasoned allow directive.
    pub fn allowlisted(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.allowed.is_some())
    }

    /// Whether `--deny` would pass.
    pub fn is_clean(&self) -> bool {
        self.denied().next().is_none()
    }
}

// ------------------------------------------------------------ lexical pass

/// Returns `src` with comments, string literals and char literals blanked
/// to spaces — same length, newlines preserved, so byte offsets and line
/// numbers stay valid.
fn mask_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() && b[i] != b'"' {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
                if i < b.len() {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"..." or r#"..."# (any hash count).
                let start = i;
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    j += 1;
                    'raw: while j < b.len() {
                        if b[j] == b'"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    for &byte in &b[start..j] {
                        out.push(if byte == b'\n' { b'\n' } else { b' ' });
                    }
                    i = j;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs. lifetime: 'x' / '\n' are literals,
                // 'a> / 'static are lifetimes (lone quote passes through).
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
                        j += 1;
                    }
                    let end = j.min(b.len() - 1);
                    out.extend(std::iter::repeat_n(b' ', end - i + 1));
                    i = j + 1;
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Byte-preserving for ASCII structure; non-ASCII bytes outside the
    // masked literals pass through untouched.
    String::from_utf8_lossy(&out).into_owned()
}

/// Byte offset of each line start (for offset → line translation).
fn line_starts(src: &str) -> Vec<usize> {
    let mut v = vec![0];
    for (i, c) in src.bytes().enumerate() {
        if c == b'\n' {
            v.push(i + 1);
        }
    }
    v
}

fn line_of(starts: &[usize], offset: usize) -> usize {
    starts.partition_point(|&s| s <= offset)
}

/// Offset of the matching close delimiter for the open one at `open`.
fn match_delim(masked: &[u8], open: usize) -> Option<usize> {
    let (o, c) = match masked[open] {
        b'(' => (b'(', b')'),
        b'{' => (b'{', b'}'),
        b'[' => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, &ch) in masked.iter().enumerate().skip(open) {
        if ch == o {
            depth += 1;
        } else if ch == c {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// All byte offsets of `needle` in `hay`.
fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut v = Vec::new();
    let mut from = 0;
    while let Some(p) = hay[from..].find(needle) {
        v.push(from + p);
        from += p + needle.len();
    }
    v
}

/// Blanks `#[cfg(test)]`-gated items (incl. `#[cfg(all(test, ...))]`) so
/// test-only code — model suites, fixtures inlined in tests — is not
/// audited: tests may intentionally write smelly patterns.
fn mask_test_regions(masked: &mut String) {
    let snapshot = masked.clone();
    let bytes = snapshot.as_bytes();
    let mut cuts: Vec<(usize, usize)> = Vec::new();
    for pat in ["#[cfg(test)]", "#[cfg(all(test"] {
        for at in find_all(&snapshot, pat) {
            // The gated item's body is the next brace group.
            if let Some(open) = snapshot[at..].find('{').map(|p| at + p) {
                if let Some(close) = match_delim(bytes, open) {
                    cuts.push((at, close));
                }
            }
        }
    }
    if cuts.is_empty() {
        return;
    }
    let mut out = snapshot.into_bytes();
    for (a, b) in cuts {
        for p in a..=b.min(out.len() - 1) {
            if out[p] != b'\n' {
                out[p] = b' ';
            }
        }
    }
    *masked = String::from_utf8_lossy(&out).into_owned();
}

/// `(start, end)` byte extents of every brace-bodied item introduced by
/// `kw` ("fn" / "struct") in the masked source.
fn item_extents(masked: &str, kw: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut v = Vec::new();
    for at in find_all(masked, &format!("{kw} ")) {
        // Require a token boundary before the keyword (skip identifiers
        // that merely end in it).
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        // Body = first brace group after the keyword, unless a `;` ends the
        // item first (trait fn declarations, tuple/unit structs).
        let mut j = at + kw.len();
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    open = Some(j);
                    break;
                }
                b';' => break,
                // Skip parenthesised stretches (fn args, tuple fields) so a
                // `;`/`{` inside them does not confuse the item boundary.
                b'(' | b'[' => match match_delim(bytes, j) {
                    Some(close) => j = close + 1,
                    None => break,
                },
                _ => j += 1,
            }
        }
        if let Some(open) = open {
            if let Some(close) = match_delim(bytes, open) {
                v.push((at, close));
            }
        }
    }
    v
}

// ------------------------------------------------------------- atomic ops

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MemOrder {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl MemOrder {
    fn parse(tok: &str) -> Option<MemOrder> {
        Some(match tok {
            "Relaxed" => MemOrder::Relaxed,
            "Acquire" => MemOrder::Acquire,
            "Release" => MemOrder::Release,
            "AcqRel" => MemOrder::AcqRel,
            "SeqCst" => MemOrder::SeqCst,
            _ => return None,
        })
    }

    fn acquires(self) -> bool {
        matches!(self, MemOrder::Acquire | MemOrder::AcqRel | MemOrder::SeqCst)
    }

    fn releases(self) -> bool {
        matches!(self, MemOrder::Release | MemOrder::AcqRel | MemOrder::SeqCst)
    }
}

#[derive(Clone, Copy, Debug)]
enum OpKind {
    /// `compare_exchange` / `compare_exchange_weak`; the recorded ordering
    /// is the *success* ordering.
    Cas,
    Store,
    Fence,
    /// `fetch_*` / `swap` read-modify-write.
    Rmw,
}

#[derive(Clone, Copy, Debug)]
struct AtomicOp {
    offset: usize,
    kind: OpKind,
    order: MemOrder,
}

/// `Ordering::X` tokens inside `args`, in order.
fn orderings_in(args: &str) -> Vec<MemOrder> {
    find_all(args, "Ordering::")
        .into_iter()
        .filter_map(|p| {
            let rest = &args[p + "Ordering::".len()..];
            let end = rest.find(|c: char| !c.is_ascii_alphanumeric()).unwrap_or(rest.len());
            MemOrder::parse(&rest[..end])
        })
        .collect()
}

/// Extracts every atomic call site from the masked source.
fn atomic_ops(masked: &str) -> Vec<AtomicOp> {
    let bytes = masked.as_bytes();
    let mut ops = Vec::new();
    let mut push_calls = |pat: &str, kind: OpKind| {
        for at in find_all(masked, pat) {
            let open = at + pat.len() - 1; // pat ends with '('
            let Some(close) = match_delim(bytes, open) else {
                continue;
            };
            let args = &masked[open + 1..close];
            let ords = orderings_in(args);
            let order = match kind {
                // compare_exchange(cur, new, success, failure): the success
                // ordering is the second-to-last `Ordering::` token.
                OpKind::Cas if ords.len() >= 2 => ords[ords.len() - 2],
                OpKind::Cas => continue,
                // store/fence/fetch_*: one ordering argument; calls without
                // one are not atomics (same-named inherent methods).
                _ => match ords.last() {
                    Some(&o) => o,
                    None => continue,
                },
            };
            ops.push(AtomicOp { offset: at, kind, order });
        }
    };
    push_calls(".compare_exchange(", OpKind::Cas);
    push_calls(".compare_exchange_weak(", OpKind::Cas);
    push_calls(".store(", OpKind::Store);
    push_calls("fence(", OpKind::Fence);
    for pat in [
        ".fetch_add(",
        ".fetch_sub(",
        ".fetch_and(",
        ".fetch_or(",
        ".fetch_xor(",
        ".fetch_max(",
        ".fetch_min(",
        ".swap(",
    ] {
        push_calls(pat, OpKind::Rmw);
    }
    ops.sort_by_key(|o| o.offset);
    ops
}

// -------------------------------------------------------------- allowlist

struct Allow {
    line: usize,
    rule: Option<Rule>,
    reason: Option<String>,
    raw_rule: String,
}

/// Extracts `// memlint: allow(rule) — reason` directives from the
/// *unmasked* source (they live in comments).
fn directives(src: &str) -> Vec<Allow> {
    let mut v = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(p) = line.find("memlint: allow(") else {
            continue;
        };
        let rest = &line[p + "memlint: allow(".len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let raw_rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        // Reason separator: em dash, en dash, hyphen(s) or a colon.
        let reason = ["—", "–", "-", ":"]
            .iter()
            .find_map(|sep| after.strip_prefix(sep))
            .map(|r| r.trim_start_matches(['—', '–', '-', ':', ' ']).trim())
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        v.push(Allow { line: idx + 1, rule: Rule::from_name(&raw_rule), reason, raw_rule });
    }
    v
}

// ------------------------------------------------------------------ rules

/// Scans one file's source text. `file` labels the diagnostics (and
/// exempts the facade itself from `raw-atomic-import`).
pub fn scan_source(file: &Path, src: &str) -> Vec<Diagnostic> {
    let mut masked = mask_code(src);
    mask_test_regions(&mut masked);
    let starts = line_starts(src);
    let allows = directives(src);
    let mut out: Vec<Diagnostic> = Vec::new();

    let mut push = |rule: Rule, offset: usize, message: String| {
        out.push(Diagnostic {
            file: file.to_path_buf(),
            line: line_of(&starts, offset),
            rule,
            message,
            allowed: None,
        });
    };

    // relaxed-cas-success + relaxed-store-after-claim share the op table.
    let ops = atomic_ops(&masked);
    for op in &ops {
        if matches!(op.kind, OpKind::Cas) && op.order == MemOrder::Relaxed {
            push(
                Rule::RelaxedCasSuccess,
                op.offset,
                "compare_exchange success ordering is Relaxed — the winning CAS \
                 publishes nothing; name the atomic that carries the edge"
                    .into(),
            );
        }
    }
    for (fn_start, fn_end) in item_extents(&masked, "fn") {
        let in_fn: Vec<&AtomicOp> =
            ops.iter().filter(|o| o.offset > fn_start && o.offset < fn_end).collect();
        let Some(claim_pos) =
            in_fn.iter().position(|o| matches!(o.kind, OpKind::Cas) && o.order.acquires())
        else {
            continue;
        };
        for (i, op) in in_fn.iter().enumerate().skip(claim_pos + 1) {
            if !matches!(op.kind, OpKind::Store) || op.order != MemOrder::Relaxed {
                continue;
            }
            let published = in_fn[i + 1..].iter().any(|later| later.order.releases());
            if !published {
                push(
                    Rule::RelaxedStoreAfterClaim,
                    op.offset,
                    "Relaxed store after an acquiring CAS with no later release \
                     operation in this function — the claimed state is never \
                     published"
                        .into(),
                );
            }
        }
    }

    // raw-atomic-import: the facade file is the one sanctioned location.
    let is_facade = file.ends_with("core/src/sync.rs");
    if !is_facade {
        for at in find_all(&masked, "std::sync::atomic") {
            push(
                Rule::RawAtomicImport,
                at,
                "raw std::sync::atomic use outside the gpumem_core::sync facade \
                 — this code is invisible to the loom model checker"
                    .into(),
            );
        }
    }

    // atomic-transmute: a transmute whose masked call text names an atomic.
    let bytes = masked.as_bytes();
    for at in find_all(&masked, "transmute") {
        let Some(open) = masked[at..].find('(').map(|p| at + p) else {
            continue;
        };
        let Some(close) = match_delim(bytes, open) else {
            continue;
        };
        // Turbofish types sit between `transmute` and `(`; args inside.
        let span = &masked[at..close];
        if span.contains("Atomic") {
            push(
                Rule::AtomicTransmute,
                at,
                "transmute involving atomic types — layout compatibility must \
                 be justified (incl. under cfg(loom))"
                    .into(),
            );
        }
    }

    // shared-unsafe-cell: UnsafeCell fields inside struct bodies.
    let structs = item_extents(&masked, "struct");
    for at in find_all(&masked, "UnsafeCell<") {
        if structs.iter().any(|&(s, e)| at > s && at < e) {
            push(
                Rule::SharedUnsafeCell,
                at,
                "UnsafeCell field — mixed atomic/non-atomic access; document \
                 the guard that serialises it"
                    .into(),
            );
        }
    }

    // Apply the allowlist, then audit the directives themselves.
    for d in &mut out {
        let fired = allows
            .iter()
            .find(|a| a.rule == Some(d.rule) && (a.line == d.line || a.line + 1 == d.line));
        if let Some(a) = fired {
            // A reasonless allow waives nothing: the directive itself becomes
            // the finding (below), keeping --deny red.
            d.allowed = a.reason.clone();
        }
    }
    for a in &allows {
        let msg = match (a.rule, &a.reason) {
            (None, _) => format!("allow directive names unknown rule `{}`", a.raw_rule),
            (Some(_), None) => {
                format!("allow({}) has no reason — write `— <why this site is sound>`", a.raw_rule)
            }
            _ => continue,
        };
        out.push(Diagnostic {
            file: file.to_path_buf(),
            line: a.line,
            rule: Rule::AllowMissingReason,
            message: msg,
            allowed: None,
        });
    }

    out.sort_by_key(|d| d.line);
    out
}

// -------------------------------------------------------------- workspace

/// Whether a workspace-relative path is audited. Shims are out of scope
/// (the loom shim *implements* the facade's backend), memlint's own
/// sources talk about the smells by name, and only `src/` trees ship.
fn audited(rel: &Path) -> bool {
    let s = rel.to_string_lossy();
    if !s.ends_with(".rs") {
        return false;
    }
    let under_src = s.starts_with("src/") || s.contains("/src/");
    under_src
        && !s.starts_with("shims/")
        && !s.starts_with("crates/memlint/")
        && !s.starts_with("target/")
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            walk(&path, files)?;
        } else {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans every audited `.rs` file under `root` (a workspace checkout).
pub fn scan_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();
    let mut report = Report::default();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        if !audited(&rel) {
            continue;
        }
        let src = fs::read_to_string(&path)?;
        report.files += 1;
        report.diagnostics.extend(scan_source(&rel, &src));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_preserves_length_and_lines() {
        let src = "let a = \"str // not comment\"; // real\nlet b = '\\n'; /* c\n*/ x";
        let m = mask_code(src);
        assert_eq!(m.len(), src.len());
        assert_eq!(m.matches('\n').count(), src.matches('\n').count());
        assert!(!m.contains("not comment"));
        assert!(!m.contains("real"));
        assert!(m.contains("let b"));
        assert!(m.contains(" x"));
    }

    #[test]
    fn lifetimes_survive_masking() {
        let m = mask_code("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(m.contains("fn f<'a>"));
    }

    #[test]
    fn cas_success_ordering_parsed_across_lines() {
        let src = "fn f(a: &AtomicU32) {\n    let _ = a.compare_exchange_weak(\n        0,\n        1,\n        Ordering::Relaxed,\n        Ordering::Relaxed,\n    );\n}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::RelaxedCasSuccess);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn allow_on_previous_line_waives_with_reason() {
        let src = "fn f(a: &AtomicU32) {\n    // memlint: allow(relaxed-cas-success) — ticket ring, seq publishes\n    let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].allowed.as_deref(), Some("ticket ring, seq publishes"));
    }

    #[test]
    fn reasonless_allow_still_fails() {
        let src = "// memlint: allow(atomic-transmute)\nfn f() {}\n";
        let d = scan_source(Path::new("x.rs"), src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowMissingReason);
    }

    #[test]
    fn test_modules_are_not_audited() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicU32) {\n        let _ = a.compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);\n    }\n}\n";
        assert!(scan_source(Path::new("x.rs"), src).is_empty());
    }
}
