//! Golden-file tests for the repro matrix: committed anchors must parse,
//! matrix output must round-trip through the anchor parser, deterministic
//! metrics must be stable under a fixed seed, and the gate must fail when
//! an anchor is perturbed beyond its tolerance.

use std::path::Path;

use gpumem_bench::anchor::{Anchor, Metric, MetricClass, SCHEMA_VERSION};
use gpumem_bench::gate::{compare, FindingKind, Gates};
use gpumem_bench::matrix::{run_scenario, scenario, MatrixCfg, Tier, SCENARIOS};

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

/// Every committed `BENCH_<scenario>.json` parses at the current schema
/// version, is smoke tier, and round-trips byte-identically through
/// render() — the golden-file half of the round-trip guarantee.
#[test]
fn committed_anchors_parse_and_round_trip() {
    let root = repo_root();
    let mut found = 0;
    for spec in SCENARIOS {
        let path = Anchor::path_for(root, spec.name);
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue; // anchor not committed yet (pre-generation builds)
        };
        found += 1;
        let a = Anchor::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(a.schema, SCHEMA_VERSION, "{}", path.display());
        assert_eq!(a.scenario, spec.name, "{}", path.display());
        assert_eq!(a.tier, "smoke", "committed anchors are smoke tier");
        assert!(!a.metrics.is_empty(), "{}", path.display());
        assert!(a.provenance_value("seed").is_some(), "{}", path.display());
        // Byte-identical round trip: render(parse(text)) == text.
        assert_eq!(a.render(), text, "{} drifted from canonical rendering", path.display());
        // Every non-exact metric is a usable gate base.
        for m in &a.metrics {
            if m.class != MetricClass::Exact {
                assert!(m.value.is_finite() && m.value > 0.0, "{}: {}", path.display(), m.key);
            }
        }
    }
    assert!(found >= 8, "expected >= 8 committed anchors, found {found}");
}

/// The committed gates.toml parses and covers every scenario (via the
/// default section when no override exists).
#[test]
fn committed_gates_toml_parses() {
    let text = std::fs::read_to_string(repo_root().join("gates.toml")).unwrap();
    let gates = Gates::parse(&text).unwrap();
    for spec in SCENARIOS {
        let tol = gates.tolerances(spec.name);
        assert!(tol.time_pct > 0.0 && tol.model_pct > 0.0, "{}", spec.name);
    }
    // Every section (including `[scenario.family]` overrides) must name a
    // real scenario, so a typo'd section cannot sit there gating nothing.
    for (name, tol) in &gates.per_scenario {
        assert!(tol.time_pct > 0.0 && tol.model_pct > 0.0, "{name}");
        let scenario_name = name.split('.').next().unwrap();
        assert!(
            scenario(scenario_name).is_some(),
            "gates.toml section [{name}] names unknown scenario {scenario_name:?}"
        );
    }
}

/// `repro matrix` output is deterministic where it promises to be: two runs
/// of the same scenario at the same tier and seed emit the same metric keys
/// in the same order, identical exact-class values, and anchors that
/// round-trip through the parser.
#[test]
fn matrix_output_deterministic_under_fixed_seed() {
    let mut cfg = MatrixCfg::new(Tier::Tiny);
    cfg.seed = 0x5eed;
    let spec = scenario("perf_thread").unwrap();
    let a = run_scenario(&cfg, spec).unwrap();
    let b = run_scenario(&cfg, spec).unwrap();

    let keys = |x: &Anchor| x.metrics.iter().map(|m| m.key.clone()).collect::<Vec<_>>();
    assert_eq!(keys(&a), keys(&b), "metric keys must be run-to-run stable");
    for (ma, mb) in a.metrics.iter().zip(&b.metrics) {
        assert_eq!(ma.class, mb.class, "{}", ma.key);
        if ma.class == MetricClass::Exact {
            assert_eq!(ma.value, mb.value, "exact metric {} drifted between runs", ma.key);
        }
    }
    // Round trip through the parser reproduces the anchor exactly.
    let parsed = Anchor::parse(&a.render()).unwrap();
    assert_eq!(parsed, a);
    // And the rendering itself is canonical (render-parse-render fixpoint).
    assert_eq!(parsed.render(), a.render());
}

/// Gate semantics end-to-end: an anchor compared against itself passes, and
/// perturbing one throughput metric beyond its tolerance fails.
#[test]
fn gate_passes_self_and_fails_perturbed() {
    let cfg = MatrixCfg::new(Tier::Tiny);
    let spec = scenario("exec").unwrap();
    let a = run_scenario(&cfg, spec).unwrap();
    let gates =
        Gates::parse(&std::fs::read_to_string(repo_root().join("gates.toml")).unwrap()).unwrap();
    let tol = gates.tolerances("exec");

    let self_report = compare(&a, &a, &tol);
    assert!(self_report.passed(), "identical anchors must pass: {:?}", self_report.findings);

    // Perturb the headline speedup far past the tolerance.
    let mut hurt = a.clone();
    let m = hurt.metrics.iter_mut().find(|m| m.key == "launch_speedup").unwrap();
    m.value /= 100.0;
    let report = compare(&a, &hurt, &tol);
    assert!(!report.passed());
    assert!(report
        .failures()
        .any(|f| f.kind == FindingKind::Regression && f.key == "launch_speedup"));

    // A vanished metric fails too.
    let mut missing = a.clone();
    missing.metrics.retain(|m| m.key != "launch_speedup");
    assert!(compare(&a, &missing, &tol).failures().any(|f| f.kind == FindingKind::MissingMetric));
}

/// A damaged committed anchor (NaN where a throughput belongs) parses — the
/// format is lenient so damage is diagnosable — but cannot gate.
#[test]
fn damaged_anchor_parses_then_fails_gate() {
    let a = Anchor {
        schema: SCHEMA_VERSION,
        scenario: "exec".into(),
        tier: "smoke".into(),
        provenance: vec![("git".into(), "test".into())],
        metrics: vec![Metric::time_hi("launch_speedup", f64::NAN)],
    };
    let reparsed = Anchor::parse(&a.render()).unwrap();
    assert!(reparsed.metrics[0].value.is_nan());
    let current = Anchor { metrics: vec![Metric::time_hi("launch_speedup", 50.0)], ..a.clone() };
    let report = compare(&reparsed, &current, &Gates::default().default);
    assert!(report.failures().any(|f| f.kind == FindingKind::InvalidAnchor));
}

/// ROADMAP item-1 leftover, closed: p99 malloc latency is anchored — and
/// therefore regression-gated by `repro gate` — for every default manager
/// family, not just a favoured few. A family silently dropping out of the
/// committed latency anchor (e.g. a registry edit that narrows the sweep)
/// fails here, and the perturbation check proves the gate actually bites
/// on a per-family p99 key.
#[test]
fn latency_anchor_gates_p99_for_every_family() {
    let root = repo_root();
    let path = Anchor::path_for(root, "latency");
    let text = std::fs::read_to_string(&path).expect("latency anchor must be committed");
    let a = Anchor::parse(&text).unwrap();

    for kind in gpumem_bench::registry::DEFAULT_KINDS {
        let key = format!("{}/malloc_p99_ns", kind.label());
        let m = a
            .metrics
            .iter()
            .find(|m| m.key == key)
            .unwrap_or_else(|| panic!("latency anchor misses {key}"));
        assert!(m.class != MetricClass::Exact, "{key} must carry a tolerance class");
        assert!(m.value.is_finite() && m.value > 0.0, "{key} must be a usable gate base");
    }

    // And the gate genuinely bites on a per-family p99: blow one reading
    // past the (already generous) latency tolerance and expect a failure.
    let gates = Gates::parse(&std::fs::read_to_string(root.join("gates.toml")).unwrap()).unwrap();
    let tol = gates.tolerances("latency");
    let key = "Reg-Eff-C/malloc_p99_ns";
    let mut hurt = a.clone();
    hurt.metrics.iter_mut().find(|m| m.key == key).unwrap().value *= 1000.0;
    let report = compare(&a, &hurt, &tol);
    assert!(
        report.failures().any(|f| f.kind == FindingKind::Regression && f.key == key),
        "a 1000x p99 regression on {key} must fail the latency gate"
    );
}
