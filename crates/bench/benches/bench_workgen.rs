//! Criterion bench for Figures 11c/11d: work generation vs the prefix-sum
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::ManagerKind;
use gpumem_bench::runners::{work_generation, work_generation_baseline, Bench};

fn bench_workgen(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let mut group = c.benchmark_group("fig11cd_workgen");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (lo, hi) in [(4u64, 64u64), (4, 4096)] {
        group.bench_with_input(
            BenchmarkId::new("Baseline", format!("{lo}-{hi}")),
            &(lo, hi),
            |b, &(lo, hi)| {
                b.iter(|| work_generation_baseline(&bench, 4096, lo, hi));
            },
        );
        for kind in [ManagerKind::ScatterAlloc, ManagerKind::Halloc, ManagerKind::OuroSP] {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{lo}-{hi}")),
                &(lo, hi),
                |b, &(lo, hi)| {
                    b.iter(|| work_generation(&bench, kind, 4096, lo, hi));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workgen);
criterion_main!(benches);
