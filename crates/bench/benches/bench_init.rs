//! Criterion bench for §4.1: manager initialization performance.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::{ManagerKind, DEFAULT_KINDS};
use gpumem_bench::runners::Bench;
use gpumem_core::DeviceHeap;
use std::sync::Arc;

fn bench_init(c: &mut Criterion) {
    let bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    let mut group = c.benchmark_group("sec41_init");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in DEFAULT_KINDS {
        // FDGMalloc aside, every manager initialises over a shared heap.
        let _ = ManagerKind::Atomic;
        group.bench_function(kind.label(), |b| {
            b.iter_batched(
                || Arc::new(DeviceHeap::new(128 << 20)),
                |heap| kind.builder().heap_shared(heap).sms(bench.device.spec().num_sms).build(),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init);
criterion_main!(benches);
