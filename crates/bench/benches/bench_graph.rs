//! Criterion bench for Figures 11f/11g: graph initialization and updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::ManagerKind;
use gpumem_bench::runners::{graph_init, graph_update, Bench};

fn bench_graph(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let csr = dyn_graph::generate("fe_body", 32, 7);
    let mut group = c.benchmark_group("fig11fg_graph");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in [ManagerKind::ScatterAlloc, ManagerKind::Halloc, ManagerKind::OuroVLP] {
        group.bench_function(BenchmarkId::new("init", kind.label()), |b| {
            b.iter(|| graph_init(&bench, kind, &csr));
        });
        group.bench_function(BenchmarkId::new("update_focused", kind.label()), |b| {
            b.iter(|| graph_update(&bench, kind, &csr, 2000, true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
