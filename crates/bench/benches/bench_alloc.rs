//! Criterion bench for the Figure 9 family: thread- and warp-based
//! allocation/deallocation performance per size, reduced parameter set so
//! `cargo bench` terminates quickly (the full sweep lives in `repro fig9`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::ManagerKind;
use gpumem_bench::runners::{alloc_perf, Bench};

fn bench_thread_alloc(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let mut group = c.benchmark_group("fig9_thread_alloc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in [
        ManagerKind::Atomic,
        ManagerKind::CudaAllocator,
        ManagerKind::ScatterAlloc,
        ManagerKind::Halloc,
        ManagerKind::OuroSP,
        ManagerKind::OuroVAC,
        ManagerKind::RegEffCF,
        ManagerKind::XMalloc,
    ] {
        for size in [16u64, 256, 4096] {
            group.bench_with_input(BenchmarkId::new(kind.label(), size), &size, |b, &size| {
                b.iter(|| alloc_perf(&bench, kind, 2048, size, false));
            });
        }
    }
    group.finish();
}

fn bench_warp_alloc(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let mut group = c.benchmark_group("fig9g_warp_alloc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in [
        ManagerKind::ScatterAlloc,
        ManagerKind::Halloc,
        ManagerKind::OuroSP,
        ManagerKind::RegEffCM,
        ManagerKind::FDGMalloc,
    ] {
        group.bench_function(kind.label(), |b| {
            b.iter(|| alloc_perf(&bench, kind, 1024, 256, true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_thread_alloc, bench_warp_alloc);
criterion_main!(benches);
