//! Criterion bench for Figure 9h: mixed allocation sizes per kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::ManagerKind;
use gpumem_bench::runners::{mixed_perf, Bench};

fn bench_mixed(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let mut group = c.benchmark_group("fig9h_mixed");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in [
        ManagerKind::CudaAllocator,
        ManagerKind::ScatterAlloc,
        ManagerKind::Halloc,
        ManagerKind::OuroSP,
        ManagerKind::OuroSC,
    ] {
        for upper in [64u64, 1024, 8192] {
            group.bench_with_input(BenchmarkId::new(kind.label(), upper), &upper, |b, &upper| {
                b.iter(|| mixed_perf(&bench, kind, 2048, upper));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
