//! Criterion bench for the Figure 10 family: performance scaling over the
//! number of allocating threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{Device, DeviceSpec};
use gpumem_bench::registry::ManagerKind;
use gpumem_bench::runners::{alloc_perf, Bench};

fn bench_scaling(c: &mut Criterion) {
    let mut bench = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 4));
    bench.iterations = 1;
    let mut group = c.benchmark_group("fig10_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for kind in [
        ManagerKind::CudaAllocator,
        ManagerKind::ScatterAlloc,
        ManagerKind::OuroSP,
        ManagerKind::RegEffC,
    ] {
        for exp in [6u32, 10, 13] {
            let threads = 1u32 << exp;
            group.bench_with_input(
                BenchmarkId::new(kind.label(), threads),
                &threads,
                |b, &threads| {
                    b.iter(|| alloc_perf(&bench, kind, threads, 64, false));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
