//! `repro matrix` — the declarative scenario registry behind the committed
//! `BENCH_<scenario>.json` anchors.
//!
//! One [`ScenarioSpec`] per paper test-case family (scenario × manager
//! family × thread/warp variant), each producing a schema-versioned
//! [`Anchor`] with provenance stamps. Three tiers size the same grid:
//!
//! * `smoke` — small counts; the committed anchors and the PR-CI gate.
//! * `full` — paper-scale counts (perf/mixed to 1M, scaling 2¹–2²⁰); the
//!   main-branch CI job, uploaded as artifacts rather than committed.
//! * `tiny` — test-only sizing so the golden-file tests stay fast.
//!
//! Metric keys are `{manager}/{cell}/{measure}` and stable across runs of
//! the same tier; the gate (`crate::gate`) treats a vanished key as a
//! failure, so anything nondeterministic enough to appear or disappear
//! between runs must not become a metric.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use gpu_sim::{Device, DeviceSpec, LaunchHook};
use gpu_workloads::write_test::WritePattern;
use gpumem_core::trace::DEFAULT_EVENTS_PER_SM;
use gpumem_core::{HeapBackendKind, Pretouch};

use crate::anchor::{Anchor, Metric, SCHEMA_VERSION};
use crate::exec_bench;
use crate::registry::ManagerKind;
use crate::runners::{self, Bench, SizingError};

/// Which rung of the matrix ladder a run sizes for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Test-only sizing: the golden-file tests run real scenarios cheaply.
    Tiny,
    /// Committed-anchor sizing: completes in minutes, gates every PR.
    Smoke,
    /// Paper-scale sizing (1M allocations, 2¹–2²⁰ scaling): main branch.
    Full,
}

impl Tier {
    pub fn as_str(&self) -> &'static str {
        match self {
            Tier::Tiny => "tiny",
            Tier::Smoke => "smoke",
            Tier::Full => "full",
        }
    }

    /// Tier-scaled allocation count: `(tiny, smoke, full)`.
    fn pick(&self, tiny: u32, smoke: u32, full: u32) -> u32 {
        match self {
            Tier::Tiny => tiny,
            Tier::Smoke => smoke,
            Tier::Full => full,
        }
    }
}

impl std::str::FromStr for Tier {
    type Err = ();

    fn from_str(s: &str) -> Result<Tier, ()> {
        match s {
            "tiny" => Ok(Tier::Tiny),
            "smoke" => Ok(Tier::Smoke),
            "full" => Ok(Tier::Full),
            _ => Err(()),
        }
    }
}

/// Everything a scenario needs to size and seed itself.
#[derive(Clone)]
pub struct MatrixCfg {
    pub device: DeviceSpec,
    pub tier: Tier,
    pub seed: u64,
    pub iterations: u32,
    pub timeout: Duration,
    pub heap_backend: HeapBackendKind,
    pub pretouch: Pretouch,
    /// Restricts scenarios to these manager kinds (`repro watch -m`);
    /// `None` runs each scenario's natural set. Scenario bodies apply it
    /// through [`MatrixCfg::restrict`], so the anchors a restricted run
    /// produces are a key-subset of the unrestricted ones.
    pub kinds: Option<Vec<ManagerKind>>,
    /// Launch-lifecycle callback installed on every [`Device`] this config
    /// constructs — the telemetry sampler's kernel-boundary signal.
    pub launch_hook: Option<LaunchHook>,
}

impl fmt::Debug for MatrixCfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MatrixCfg")
            .field("device", &self.device)
            .field("tier", &self.tier)
            .field("seed", &self.seed)
            .field("iterations", &self.iterations)
            .field("timeout", &self.timeout)
            .field("heap_backend", &self.heap_backend)
            .field("pretouch", &self.pretouch)
            .field("kinds", &self.kinds)
            .field("launch_hook", &self.launch_hook.as_ref().map(|_| "<hook>"))
            .finish()
    }
}

impl MatrixCfg {
    /// Tier defaults on the TITAN V spec with the paper's workload seed.
    pub fn new(tier: Tier) -> Self {
        MatrixCfg {
            device: DeviceSpec::titan_v(),
            tier,
            seed: 0x5eed,
            iterations: match tier {
                Tier::Tiny => 1,
                Tier::Smoke => 2,
                Tier::Full => 3,
            },
            timeout: Duration::from_secs(if tier == Tier::Full { 30 } else { 20 }),
            heap_backend: HeapBackendKind::env_default(),
            pretouch: Pretouch::Auto,
            kinds: None,
            launch_hook: None,
        }
    }

    /// Applies the optional manager restriction to a scenario's natural
    /// kind set, preserving the natural order (metric keys keep their
    /// relative ordering in restricted runs). No restriction passes the
    /// set through unchanged.
    pub fn restrict(&self, natural: &[ManagerKind]) -> Vec<ManagerKind> {
        match &self.kinds {
            None => natural.to_vec(),
            Some(sel) => natural.iter().copied().filter(|k| sel.contains(k)).collect(),
        }
    }

    /// The shared runner context for one scenario.
    pub fn bench(&self) -> Bench {
        let mut dev = Device::new(self.device);
        if let Some(hook) = &self.launch_hook {
            dev.set_launch_hook(Arc::clone(hook));
        }
        let mut b = Bench::new(dev);
        b.iterations = self.iterations;
        b.seed = self.seed;
        b.cell_timeout = self.timeout;
        b.heap_backend = self.heap_backend;
        b.pretouch = self.pretouch;
        b
    }

    /// [`MatrixCfg::bench`] with the `Cached` magazine decorator enabled and
    /// one untimed warm-up pass, so the timed iterations measure the
    /// steady-state magazine hot path rather than the cold first fill.
    pub fn cached_bench(&self) -> Bench {
        let mut b = self.bench();
        b.cached = true;
        b.warmup = 1;
        b
    }
}

/// Why a scenario could not produce an anchor.
#[derive(Clone, Debug, PartialEq)]
pub enum MatrixError {
    /// A runner's demand computation overflowed (satellite bugfix: checked
    /// arithmetic instead of silent wrap/under-provision).
    Sizing(SizingError),
    /// A metric came out NaN/infinite — committing it would poison the gate.
    NonFinite { scenario: &'static str, key: String },
    /// `--scenario` named something not in [`SCENARIOS`].
    UnknownScenario(String),
}

impl std::fmt::Display for MatrixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MatrixError::Sizing(e) => write!(f, "sizing: {e}"),
            MatrixError::NonFinite { scenario, key } => {
                write!(f, "scenario {scenario}: metric {key} is not finite")
            }
            MatrixError::UnknownScenario(s) => {
                let names: Vec<&str> = SCENARIOS.iter().map(|s| s.name).collect();
                write!(f, "unknown scenario {s:?} (available: {})", names.join(", "))
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl From<SizingError> for MatrixError {
    fn from(e: SizingError) -> Self {
        MatrixError::Sizing(e)
    }
}

/// One row of the matrix registry.
pub struct ScenarioSpec {
    /// Anchor name: the file is `BENCH_<name>.json`.
    pub name: &'static str,
    /// Paper family the scenario reproduces (figure/section).
    pub family: &'static str,
    /// Variant within the family (thread/warp, size range, graph mode...).
    pub variant: &'static str,
    run: fn(&MatrixCfg) -> Result<Vec<Metric>, MatrixError>,
}

/// The paper grid, one anchor per scenario.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "perf_thread",
        family: "Fig. 9a-f alloc/free performance",
        variant: "thread-based, sizes 16/512 B",
        run: perf_thread,
    },
    ScenarioSpec {
        name: "perf_warp",
        family: "Fig. 9g alloc/free performance",
        variant: "warp-based, 256 B",
        run: perf_warp,
    },
    ScenarioSpec {
        name: "mixed",
        family: "Fig. 9h mixed allocation",
        variant: "thread-based, uniform [4, 1024/4096] B",
        run: mixed,
    },
    ScenarioSpec {
        name: "perf_thread_cached",
        family: "Fig. 9a-f alloc/free performance",
        variant: "thread-based, sizes 16/512 B, magazine-cached + warm-up",
        run: perf_thread_cached,
    },
    ScenarioSpec {
        name: "mixed_cached",
        family: "Fig. 9h mixed allocation",
        variant: "thread-based, uniform [4, 1024/4096] B, magazine-cached + warm-up",
        run: mixed_cached,
    },
    ScenarioSpec {
        name: "scaling",
        family: "Fig. 10 scaling sweep",
        variant: "thread counts 2^1..2^N, 16 B",
        run: scaling,
    },
    ScenarioSpec {
        name: "frag",
        family: "Fig. 11a fragmentation",
        variant: "address-range expansion, 64/4096 B",
        run: frag,
    },
    ScenarioSpec {
        name: "oom",
        family: "Fig. 11b out-of-memory",
        variant: "1 KiB storm until first denial",
        run: oom,
    },
    ScenarioSpec {
        name: "workgen",
        family: "Fig. 11c/d work generation",
        variant: "managed vs prefix-sum baseline, 4-64/4-4096 B",
        run: workgen,
    },
    ScenarioSpec {
        name: "coalescing",
        family: "Fig. 11e write performance",
        variant: "coalescing-model relative cost",
        run: coalescing,
    },
    ScenarioSpec {
        name: "graph_init",
        family: "Fig. 11f dynamic graph init",
        variant: "fe_body CSR build",
        run: graph_init,
    },
    ScenarioSpec {
        name: "graph_update",
        family: "Fig. 11g dynamic graph updates",
        variant: "focused + uniform edge inserts",
        run: graph_update,
    },
    ScenarioSpec {
        name: "latency",
        family: "event-trace latency percentiles",
        variant: "malloc/free p50/p99 via per-SM rings",
        run: latency,
    },
    ScenarioSpec {
        name: "exec",
        family: "executor launch overhead",
        variant: "pooled vs spawn-per-launch",
        run: exec,
    },
];

/// Looks a scenario up by anchor name.
pub fn scenario(name: &str) -> Option<&'static ScenarioSpec> {
    SCENARIOS.iter().find(|s| s.name == name)
}

/// Runs one scenario and wraps its metrics into a provenance-stamped anchor.
/// Every metric is checked finite here so a NaN can never reach a committed
/// anchor (the gate would then reject it as `InvalidAnchor`).
pub fn run_scenario(cfg: &MatrixCfg, spec: &ScenarioSpec) -> Result<Anchor, MatrixError> {
    let metrics = (spec.run)(cfg)?;
    for m in &metrics {
        if !m.value.is_finite() {
            return Err(MatrixError::NonFinite { scenario: spec.name, key: m.key.clone() });
        }
    }
    Ok(Anchor {
        schema: SCHEMA_VERSION,
        scenario: spec.name.to_string(),
        tier: cfg.tier.as_str().to_string(),
        provenance: provenance(cfg),
        metrics,
    })
}

/// The provenance stamps every anchor carries: enough to reproduce the run
/// and to spot an apples/oranges comparison. Informational — the gate never
/// compares provenance values (the git sha differs on every commit by
/// design).
fn provenance(cfg: &MatrixCfg) -> Vec<(String, String)> {
    let git = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    vec![
        ("git".to_string(), git),
        ("device".to_string(), cfg.device.name.to_string()),
        ("sms".to_string(), cfg.device.num_sms.to_string()),
        ("workers".to_string(), Device::configured_workers().to_string()),
        (
            "gms_workers".to_string(),
            std::env::var("GMS_WORKERS").unwrap_or_else(|_| "-".to_string()),
        ),
        ("seed".to_string(), format!("{:#x}", cfg.seed)),
        ("heap_backend".to_string(), cfg.heap_backend.to_string()),
        ("pretouch".to_string(), cfg.pretouch.resolve(cfg.heap_backend).to_string()),
        ("iterations".to_string(), cfg.iterations.to_string()),
    ]
}

/// Throughput in million operations per second; the duration is floored to
/// 1 ns so a sub-tick timer reading cannot mint an infinite (ungateable)
/// anchor.
fn mops(ops: u32, d: Duration) -> f64 {
    ops as f64 * 1e3 / d.as_nanos().max(1) as f64
}

/// Thousand operations per second (work generation runs whole milliseconds).
fn kops(ops: u32, d: Duration) -> f64 {
    ops as f64 * 1e6 / d.as_nanos().max(1) as f64
}

/// Latency reading in nanoseconds, floored to 1 so `time_lo` anchors stay
/// positive (the gate rejects a 0 base).
fn lat_ns(ns: u64) -> f64 {
    ns.max(1) as f64
}

/// The eight-manager core set used where the full 15-kind sweep would make
/// a scenario's runtime dominate the matrix: one representative per family
/// (standard + virtualized Ouroboros, ScatterAlloc, Halloc, CUDA model,
/// XMalloc, Reg-Eff, the Atomic baseline).
const CORE_KINDS: [ManagerKind; 8] = [
    ManagerKind::OuroSP,
    ManagerKind::OuroVAP,
    ManagerKind::ScatterAlloc,
    ManagerKind::Halloc,
    ManagerKind::CudaAllocator,
    ManagerKind::XMalloc,
    ManagerKind::RegEffC,
    ManagerKind::Atomic,
];

/// Managers the dynamic-graph scenarios run: general free required (no
/// FDGMalloc), and Atomic cannot update in place.
const GRAPH_KINDS: [ManagerKind; 4] = [
    ManagerKind::OuroVLP,
    ManagerKind::OuroSP,
    ManagerKind::ScatterAlloc,
    ManagerKind::CudaAllocator,
];

fn perf_thread(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    perf_thread_body(cfg, cfg.bench())
}

/// Same grid and metric keys as [`perf_thread`], but through the magazine
/// decorator: the key identity is what lets `BENCH_perf_thread_cached.json`
/// be diffed metric-for-metric against `BENCH_perf_thread.json`.
fn perf_thread_cached(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    perf_thread_body(cfg, cfg.cached_bench())
}

fn perf_thread_body(cfg: &MatrixCfg, bench: Bench) -> Result<Vec<Metric>, MatrixError> {
    let num = cfg.tier.pick(256, 2048, 1_000_000);
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&crate::registry::DEFAULT_KINDS) {
        for size in [16u64, 512] {
            let c = runners::alloc_perf(&bench, kind, num, size, false);
            let k = format!("{}/s{size}", kind.label());
            metrics.push(Metric::time_hi(format!("{k}/alloc_mops"), mops(num, c.alloc)));
            if let Some(free) = c.free {
                metrics.push(Metric::time_hi(format!("{k}/free_mops"), mops(num, free)));
            }
            metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
        }
    }
    Ok(metrics)
}

fn perf_warp(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let warps = cfg.tier.pick(128, 1024, 10_000);
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&crate::registry::DEFAULT_KINDS) {
        let c = runners::alloc_perf(&bench, kind, warps, 256, true);
        let k = format!("{}/w256", kind.label());
        metrics.push(Metric::time_hi(format!("{k}/alloc_mops"), mops(warps, c.alloc)));
        metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
    }
    Ok(metrics)
}

fn mixed(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    mixed_body(cfg, cfg.bench())
}

/// Cached twin of [`mixed`]; see [`perf_thread_cached`] on key identity.
/// This is the contention scenario the magazines target: mixed sizes land in
/// a handful of size classes, so the warmed magazines absorb most of the
/// timed traffic that would otherwise hit shared manager metadata.
fn mixed_cached(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    mixed_body(cfg, cfg.cached_bench())
}

fn mixed_body(cfg: &MatrixCfg, bench: Bench) -> Result<Vec<Metric>, MatrixError> {
    let num = cfg.tier.pick(256, 2048, 1_000_000);
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&crate::registry::DEFAULT_KINDS) {
        for upper in [1024u64, 4096] {
            let c = runners::mixed_perf(&bench, kind, num, upper);
            let k = format!("{}/u{upper}", kind.label());
            metrics.push(Metric::time_hi(format!("{k}/alloc_mops"), mops(num, c.alloc)));
            metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
        }
    }
    Ok(metrics)
}

fn scaling(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let max_exp = match cfg.tier {
        Tier::Tiny => 4,
        Tier::Smoke => 8,
        Tier::Full => 20,
    };
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&CORE_KINDS) {
        let mut failures = 0u64;
        let mut top: Option<runners::AllocPerfCell> = None;
        for e in 1..=max_exp {
            let c = runners::alloc_perf(&bench, kind, 1u32 << e, 16, false);
            failures += c.failures;
            let timed_out = c.timed_out;
            top = Some(c);
            if timed_out {
                break;
            }
        }
        // The top-of-sweep cell is the headline: if a manager stops scaling
        // (times out earlier than before), the `e{max_exp}` key vanishes and
        // the gate reports it as a missing metric.
        if let Some(c) = top {
            if !c.timed_out {
                metrics.push(Metric::time_hi(
                    format!("{}/e{max_exp}/alloc_mops", kind.label()),
                    mops(c.num, c.alloc),
                ));
            }
            metrics
                .push(Metric::exact(format!("{}/failures_total", kind.label()), failures as f64));
        }
    }
    Ok(metrics)
}

fn frag(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let num = cfg.tier.pick(512, 2048, 100_000);
    let cycles = match cfg.tier {
        Tier::Tiny => 2,
        Tier::Smoke => 4,
        Tier::Full => 10,
    };
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&crate::registry::DEFAULT_KINDS) {
        for size in [64u64, 4096] {
            let c = runners::fragmentation(&bench, kind, num, size, cycles);
            let k = format!("{}/s{size}", kind.label());
            metrics.push(Metric::model_lo(format!("{k}/expansion"), c.initial.expansion_factor()));
            let growth = c.max_range_after_cycles as f64 / c.initial.address_range.max(1) as f64;
            metrics.push(Metric::model_lo(format!("{k}/cycle_growth"), growth));
        }
    }
    Ok(metrics)
}

fn oom(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let heap = if cfg.tier == Tier::Full { 256u64 << 20 } else { 64 << 20 };
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&[ManagerKind::OuroSP, ManagerKind::ScatterAlloc, ManagerKind::Halloc])
    {
        let c = runners::oom(&bench, kind, heap, 1024);
        metrics.push(Metric::model_hi(format!("{}/utilization", kind.label()), c.utilization));
        metrics.push(Metric::exact(
            format!("{}/timed_out", kind.label()),
            if c.timed_out { 1.0 } else { 0.0 },
        ));
    }
    Ok(metrics)
}

fn workgen(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let threads = cfg.tier.pick(256, 2048, 100_000);
    let mut metrics = Vec::new();
    for (lo, hi) in [(4u64, 64u64), (4, 4096)] {
        let base = runners::work_generation_baseline(&bench, threads, lo, hi);
        metrics.push(Metric::time_hi(
            format!("Baseline/r{lo}-{hi}/kops"),
            kops(threads, base.elapsed),
        ));
        for kind in cfg.restrict(&CORE_KINDS) {
            let c = runners::work_generation(&bench, kind, threads, lo, hi);
            let k = format!("{}/r{lo}-{hi}", kind.label());
            metrics.push(Metric::time_hi(format!("{k}/kops"), kops(threads, c.elapsed)));
            metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
        }
    }
    Ok(metrics)
}

fn coalescing(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let threads = cfg.tier.pick(1024, 4096, 65_536);
    let mut metrics = Vec::new();
    for (tag, pattern) in [
        ("u16", WritePattern::Uniform { bytes: 16 }),
        ("m16-128", WritePattern::Mixed { lo: 16, hi: 128 }),
    ] {
        for kind in cfg.restrict(&CORE_KINDS) {
            let c = runners::write_performance(&bench, kind, threads, pattern);
            let k = format!("{}/{tag}", kind.label());
            metrics.push(Metric::model_lo(format!("{k}/relative_cost"), c.relative_cost));
            metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
        }
    }
    Ok(metrics)
}

fn graph_init(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let div = match cfg.tier {
        Tier::Tiny => 512,
        Tier::Smoke => 256,
        Tier::Full => 64,
    };
    let csr = dyn_graph::generate("fe_body", div, bench.seed);
    let edges = csr.edges() as u32;
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&GRAPH_KINDS) {
        let c = runners::graph_init(&bench, kind, &csr)?;
        let k = format!("{}/fe_body", kind.label());
        metrics.push(Metric::time_hi(format!("{k}/edges_mops"), mops(edges, c.elapsed)));
        metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
    }
    Ok(metrics)
}

fn graph_update(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let div = match cfg.tier {
        Tier::Tiny => 512,
        Tier::Smoke => 256,
        Tier::Full => 64,
    };
    let edges = cfg.tier.pick(500, 2000, 20_000);
    let csr = dyn_graph::generate("fe_body", div, bench.seed);
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&GRAPH_KINDS) {
        for (mode, focused) in [("focused", true), ("uniform", false)] {
            let c = runners::graph_update(&bench, kind, &csr, edges, focused)?;
            let k = format!("{}/{mode}", kind.label());
            metrics.push(Metric::time_hi(format!("{k}/edges_mops"), mops(edges, c.elapsed)));
            metrics.push(Metric::exact(format!("{k}/failures"), c.failures as f64));
        }
    }
    Ok(metrics)
}

fn latency(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let num = cfg.tier.pick(512, 2048, 100_000);
    let mut metrics = Vec::new();
    for kind in cfg.restrict(&crate::registry::DEFAULT_KINDS) {
        let r = runners::trace_profile(&bench, kind, num, DEFAULT_EVENTS_PER_SM);
        let k = kind.label();
        metrics
            .push(Metric::time_lo(format!("{k}/malloc_p50_ns"), lat_ns(r.latencies.malloc.p50())));
        metrics
            .push(Metric::time_lo(format!("{k}/malloc_p99_ns"), lat_ns(r.latencies.malloc.p99())));
        // Warp-level-only and no-free families emit no `FreeEnd` events, so
        // an unconditional key would anchor a meaningless `lat_ns(0)` floor
        // and the gate would then "pass" on noise. Emit only when the free
        // path actually ran.
        if r.latencies.free.count() > 0 {
            metrics
                .push(Metric::time_lo(format!("{k}/free_p99_ns"), lat_ns(r.latencies.free.p99())));
        }
    }
    Ok(metrics)
}

fn exec(cfg: &MatrixCfg) -> Result<Vec<Metric>, MatrixError> {
    let bench = cfg.bench();
    let trials = if cfg.tier == Tier::Full { 16 } else { 8 };
    let r = exec_bench::run(&bench.device, trials);
    Ok(exec_metrics(&r))
}

/// Converts the executor microbenchmark result into anchor metrics — the
/// schema-v2 replacement of the old hand-formatted `BENCH_exec.json`. The
/// headline `launch_speedup` is what the docs quote (formerly a hardcoded
/// "61x"); the worker fraction is a model metric so a collapse of the
/// small-launch spread fails even when absolute timings drift.
pub fn exec_metrics(r: &exec_bench::ExecBenchResult) -> Vec<Metric> {
    vec![
        Metric::time_lo("empty_pooled_ns", lat_ns(r.empty_pooled.as_nanos() as u64)),
        Metric::time_lo("empty_spawn_ns", lat_ns(r.empty_spawn.as_nanos() as u64)),
        Metric::time_hi("launch_speedup", r.latency_speedup()),
        Metric::time_lo("call_pooled_ns", lat_ns(r.call_pooled.as_nanos() as u64)),
        Metric::time_lo("call_spawn_ns", lat_ns(r.call_spawn.as_nanos() as u64)),
        Metric::time_hi("pooled_warps_per_sec", r.pooled_warps_per_sec),
        Metric::time_hi("spawn_warps_per_sec", r.spawn_warps_per_sec),
        Metric::exact("throughput_warps", r.throughput_warps as f64),
        Metric::exact("workers", r.workers as f64),
        Metric::model_hi(
            "small_launch_worker_frac",
            r.small_launch_workers_used as f64 / r.workers.max(1) as f64,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for s in SCENARIOS {
            assert!(seen.insert(s.name), "duplicate scenario {}", s.name);
            assert!(scenario(s.name).is_some());
        }
        assert!(SCENARIOS.len() >= 8, "acceptance floor: >= 8 anchors");
        assert!(scenario("nope").is_none());
    }

    #[test]
    fn tier_round_trips_and_scales() {
        for t in [Tier::Tiny, Tier::Smoke, Tier::Full] {
            assert_eq!(t.as_str().parse(), Ok(t));
        }
        assert_eq!("medium".parse::<Tier>(), Err(()));
        assert_eq!(Tier::Smoke.pick(1, 2, 3), 2);
    }

    #[test]
    fn mops_guards_zero_duration() {
        assert!(mops(1000, Duration::ZERO).is_finite());
        assert!(lat_ns(0) > 0.0);
    }

    #[test]
    fn exec_scenario_produces_schema_v2_anchor() {
        let cfg = MatrixCfg::new(Tier::Tiny);
        let spec = scenario("exec").unwrap();
        let a = run_scenario(&cfg, spec).unwrap();
        assert_eq!(a.schema, SCHEMA_VERSION);
        assert_eq!(a.tier, "tiny");
        assert!(a.metric("launch_speedup").is_some());
        assert!(a.provenance_value("seed").is_some());
        // Round-trips through the parser byte-identically.
        let again = Anchor::parse(&a.render()).unwrap();
        assert_eq!(again, a);
    }

    #[test]
    fn oom_scenario_metrics_are_gateable() {
        let cfg = MatrixCfg::new(Tier::Tiny);
        let a = run_scenario(&cfg, scenario("oom").unwrap()).unwrap();
        let util = a.metric("Ouro-S-P/utilization").unwrap();
        assert!(util.value > 0.0 && util.value <= 1.0, "{}", util.value);
        assert_eq!(a.metric("Ouro-S-P/timed_out").unwrap().value, 0.0);
    }
}
