//! Shape verification over result CSVs — `repro check`.
//!
//! The reproduction targets the paper's *qualitative* results: who wins per
//! size band, where regime changes fall, which designs fragment. This
//! module encodes those expectations as predicates over the CSV files the
//! other subcommands emit, so a full run can be validated mechanically
//! (`repro all && repro check`). EXPERIMENTS.md documents each expectation
//! with its paper reference.

use std::collections::HashMap;
use std::path::Path;

/// One verified expectation.
#[derive(Clone, Debug)]
pub struct ShapeResult {
    /// Short identifier, e.g. `fig9.cuda-dealloc-slowest`.
    pub id: &'static str,
    /// Paper reference the expectation comes from.
    pub paper: &'static str,
    /// Human-readable statement.
    pub statement: String,
    /// Whether the CSVs satisfy it.
    pub pass: bool,
}

/// Minimal CSV reader (header + string cells).
pub fn read_csv(path: &Path) -> Option<Vec<HashMap<String, String>>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next()?.split(',').collect();
    let mut rows = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != header.len() {
            continue; // quoted cells are not used by our own files' numerics
        }
        rows.push(header.iter().zip(&cells).map(|(h, c)| (h.to_string(), c.to_string())).collect());
    }
    Some(rows)
}

fn f(row: &HashMap<String, String>, key: &str) -> Option<f64> {
    row.get(key).and_then(|v| v.parse().ok())
}

/// Looks up `column` for (manager, size) in an alloc-perf-style table.
fn cell(
    rows: &[HashMap<String, String>],
    manager: &str,
    size_key: &str,
    size: u64,
    column: &str,
) -> Option<f64> {
    rows.iter()
        .find(|r| {
            r.get("manager").map(String::as_str) == Some(manager)
                && f(r, size_key) == Some(size as f64)
        })
        .and_then(|r| f(r, column))
}

/// Runs every encoded expectation against the CSVs in `dir`. Expectations
/// whose input file is missing are skipped (not failed).
pub fn check_all(dir: &Path) -> Vec<ShapeResult> {
    let mut out = Vec::new();

    // ---------------------------------------------------------- Figure 9
    if let Some(rows) = read_csv(&dir.join("alloc_thread_10000_TITANV.csv")) {
        let g = |m: &str, s: u64, c: &str| cell(&rows, m, "size", s, c);

        // §4.2.1: CUDA-Allocator deallocation consistently the slowest for
        // small sizes.
        if let (Some(cuda), Some(scatter), Some(ouro)) = (
            g("CUDA-Allocator", 64, "free_ms"),
            g("ScatterAlloc", 64, "free_ms"),
            g("Ouro-S-P", 64, "free_ms"),
        ) {
            out.push(ShapeResult {
                id: "fig9.cuda-dealloc-slowest",
                paper: "§4.2.1 / Fig 9b",
                statement: format!(
                    "CUDA-Allocator free at 64 B ({cuda:.2} ms) slowest: \
                     ScatterAlloc {scatter:.2}, Ouro-S-P {ouro:.2}"
                ),
                pass: cuda > scatter * 2.0 && cuda > ouro * 2.0,
            });
        }

        // §4.2.1: CUDA spike right before its 2048 B unit split, recovering
        // after it.
        if let (Some(at64), Some(at2048), Some(at4096)) = (
            g("CUDA-Allocator", 64, "alloc_ms"),
            g("CUDA-Allocator", 2048, "alloc_ms"),
            g("CUDA-Allocator", 4096, "alloc_ms"),
        ) {
            out.push(ShapeResult {
                id: "fig9.cuda-2048-split",
                paper: "§4.2.1 / Fig 9",
                statement: format!(
                    "CUDA-Allocator staircase: 64 B {at64:.2} ms → 2048 B {at2048:.2} ms \
                     → 4096 B {at4096:.2} ms"
                ),
                pass: at2048 > at64 * 1.8 && at4096 < at2048,
            });
        }

        // §4.2.1: ScatterAlloc's steep multipage drop; page-based Ouroboros
        // stays flat and wins large sizes.
        if let (Some(s2048), Some(s8192), Some(o8192)) = (
            g("ScatterAlloc", 2048, "alloc_ms"),
            g("ScatterAlloc", 8192, "alloc_ms"),
            g("Ouro-S-P", 8192, "alloc_ms"),
        ) {
            out.push(ShapeResult {
                id: "fig9.scatter-cliff-ouro-flat",
                paper: "§4.2.1 / Fig 9",
                statement: format!(
                    "ScatterAlloc 2048→8192 B: {s2048:.2}→{s8192:.2} ms; \
                     Ouro-S-P at 8192 B: {o8192:.2} ms"
                ),
                pass: s8192 > s2048 * 2.0 && o8192 < s8192 / 3.0,
            });
        }

        // §5: XMalloc collapses for large allocation counts/sizes (its
        // memoryblock list walk) — the port shows the same cliff instead of
        // crashing.
        if let (Some(x64), Some(x4096)) =
            (g("XMalloc", 64, "alloc_ms"), g("XMalloc", 4096, "alloc_ms"))
        {
            out.push(ShapeResult {
                id: "fig9.xmalloc-large-collapse",
                paper: "§4.2.1/§5",
                statement: format!(
                    "XMalloc 64 B {x64:.2} ms vs 4096 B {x4096:.2} ms (list-walk cliff)"
                ),
                pass: x4096 > x64 * 10.0,
            });
        }
    }

    // ---------------------------------------------------------- Figure 11a
    if let Some(rows) = read_csv(&dir.join("fragmentation.csv")) {
        let g = |m: &str, s: u64| cell(&rows, m, "size", s, "expansion");
        // §4.3.1: Ouroboros best utilization, Halloc second, CUDA/XMalloc
        // report (nearly) the maximum possible range.
        if let (Some(ouro), Some(halloc), Some(cuda)) =
            (g("Ouro-VA-C", 256), g("Halloc", 256), g("CUDA-Allocator", 4096))
        {
            out.push(ShapeResult {
                id: "fig11a.frag-ordering",
                paper: "§4.3.1 / Fig 11a",
                statement: format!(
                    "expansion factors: Ouro-VA-C {ouro:.2}×, Halloc {halloc:.2}×, \
                     CUDA-Allocator(4K) {cuda:.2}×"
                ),
                pass: ouro <= halloc + 0.5 && cuda > ouro,
            });
        }
    }

    // ---------------------------------------------------------- Figure 11b
    if let Some(rows) = read_csv(&dir.join("oom_64mb.csv")) {
        let g = |m: &str, s: u64| cell(&rows, m, "size", s, "utilization");
        if let (Some(ouro), Some(scatter), Some(halloc)) =
            (g("Ouro-S-C", 1024), g("ScatterAlloc", 1024), g("Halloc", 1024))
        {
            out.push(ShapeResult {
                id: "fig11b.oom-ordering",
                paper: "§4.3.2 / Fig 11b",
                statement: format!(
                    "OOM utilization at 1 KiB: Ouroboros {ouro:.2}, \
                     ScatterAlloc {scatter:.2}, Halloc {halloc:.2}"
                ),
                pass: ouro > 0.9 && ouro >= scatter - 0.05 && halloc < ouro,
            });
        }
        // 16 B alignment floor below 16 B.
        if let (Some(at4), Some(at16)) = (g("Ouro-S-C", 4), g("Ouro-S-C", 16)) {
            out.push(ShapeResult {
                id: "fig11b.alignment-floor",
                paper: "§4.3.2",
                statement: format!("utilization rises from 4 B ({at4:.2}) to 16 B ({at16:.2})"),
                pass: at16 > at4 * 2.0,
            });
        }
    }

    // ---------------------------------------------------------- Figure 11c
    if let Some(rows) = read_csv(&dir.join("workgen_4_64.csv")) {
        let g = |m: &str, n: u64| cell(&rows, m, "threads", n, "elapsed_ms");
        if let (Some(base), Some(scatter)) = (g("Baseline", 4096), g("ScatterAlloc", 4096)) {
            out.push(ShapeResult {
                id: "fig11c.scatter-vs-baseline",
                paper: "§4.4.1 / Fig 11c",
                statement: format!(
                    "work generation 4-64 B @4096 threads: ScatterAlloc {scatter:.2} ms \
                     vs Baseline {base:.2} ms"
                ),
                pass: scatter < base * 3.0,
            });
        }
    }

    // ---------------------------------------------------------- Figure 11e
    if let Some(rows) = read_csv(&dir.join("write_performance.csv")) {
        let find = |m: &str| {
            rows.iter()
                .find(|r| {
                    r.get("manager").map(String::as_str) == Some(m)
                        && r.get("pattern").map(|p| p.contains("16")) == Some(true)
                        && r.get("pattern").map(|p| p.contains("Uniform")) == Some(true)
                })
                .and_then(|r| f(r, "relative_cost"))
        };
        if let (Some(ouro), Some(regeff)) = (find("Ouro-S-P"), find("Reg-Eff-C")) {
            out.push(ShapeResult {
                id: "fig11e.coalescing-ordering",
                paper: "§4.4.2 / Fig 11e",
                statement: format!(
                    "write cost vs coalesced baseline: Ouroboros {ouro:.2}×, \
                     Reg-Eff {regeff:.2}× (unaligned headers)"
                ),
                pass: ouro < regeff && ouro < 2.0,
            });
        }
    }

    // ---------------------------------------------------------- Figure 11f
    if let Some(rows) = read_csv(&dir.join("graph_init_div64.csv")) {
        let g = |m: &str, graph: &str| {
            rows.iter()
                .find(|r| {
                    r.get("manager").map(String::as_str) == Some(m)
                        && r.get("graph").map(String::as_str) == Some(graph)
                })
                .and_then(|r| f(r, "init_ms"))
        };
        if let (Some(cuda), Some(scatter)) =
            (g("CUDA-Allocator", "rgg_n_2_20_s0"), g("ScatterAlloc", "rgg_n_2_20_s0"))
        {
            out.push(ShapeResult {
                id: "fig11f.cuda-worst-init",
                paper: "§4.4.3 / Fig 11f",
                statement: format!(
                    "graph init (rgg): CUDA-Allocator {cuda:.2} ms vs \
                     ScatterAlloc {scatter:.2} ms"
                ),
                pass: cuda > scatter,
            });
        }
    }

    // ---------------------------------------------------------- §4.1
    if let Some(rows) = read_csv(&dir.join("init_register.csv")) {
        let g = |m: &str, c: &str| {
            rows.iter()
                .find(|r| r.get("manager").map(String::as_str) == Some(m))
                .and_then(|r| f(r, c))
        };
        if let (Some(regeff), Some(cuda), Some(xmalloc), Some(scatter)) = (
            g("Reg-Eff-C", "malloc_regs"),
            g("CUDA-Allocator", "malloc_regs"),
            g("XMalloc", "malloc_regs"),
            g("ScatterAlloc", "malloc_regs"),
        ) {
            out.push(ShapeResult {
                id: "sec41.register-ordering",
                paper: "§4.1",
                statement: format!(
                    "malloc registers: Reg-Eff {regeff:.0} < CUDA {cuda:.0} < \
                     ScatterAlloc {scatter:.0} ≪ XMalloc {xmalloc:.0}"
                ),
                pass: regeff < cuda && cuda < scatter && xmalloc > 3.0 * scatter,
            });
        }
        if let (Some(cuda_init), Some(ouro_init)) =
            (g("CUDA-Allocator", "init_ms"), g("Ouro-S-P", "init_ms"))
        {
            out.push(ShapeResult {
                id: "sec41.cuda-fastest-init",
                paper: "§4.1",
                statement: format!(
                    "init: CUDA-Allocator {cuda_init:.3} ms fastest (Ouro-S-P \
                     {ouro_init:.3} ms)"
                ),
                pass: cuda_init <= ouro_init,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gms_shapes_{name}"));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write(dir: &Path, name: &str, content: &str) {
        let mut f = std::fs::File::create(dir.join(name)).unwrap();
        f.write_all(content.as_bytes()).unwrap();
    }

    #[test]
    fn read_csv_parses_rows() {
        let d = tmpdir("parse");
        write(&d, "t.csv", "a,b\n1,2\n3,4\n");
        let rows = read_csv(&d.join("t.csv")).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1]["b"], "4");
    }

    #[test]
    fn missing_files_are_skipped_not_failed() {
        let d = tmpdir("empty");
        let results = check_all(&d);
        assert!(results.is_empty());
    }

    #[test]
    fn cuda_split_expectation_passes_on_staircase() {
        let d = tmpdir("stair");
        write(
            &d,
            "alloc_thread_10000_TITANV.csv",
            "manager,size,alloc_ms,free_ms,failures,timed_out\n\
             CUDA-Allocator,64,0.5,5.0,0,false\n\
             CUDA-Allocator,2048,6.0,5.0,0,false\n\
             CUDA-Allocator,4096,1.0,1.0,0,false\n\
             ScatterAlloc,64,0.4,0.4,0,false\n\
             ScatterAlloc,2048,2.0,0.4,0,false\n\
             ScatterAlloc,8192,60.0,0.4,0,false\n\
             Ouro-S-P,64,0.5,0.5,0,false\n\
             Ouro-S-P,8192,0.6,0.5,0,false\n\
             XMalloc,64,0.5,0.5,0,false\n\
             XMalloc,4096,500.0,0.5,0,false\n",
        );
        let results = check_all(&d);
        let split = results.iter().find(|r| r.id == "fig9.cuda-2048-split").unwrap();
        assert!(split.pass, "{}", split.statement);
        let cliff = results.iter().find(|r| r.id == "fig9.scatter-cliff-ouro-flat").unwrap();
        assert!(cliff.pass, "{}", cliff.statement);
        let x = results.iter().find(|r| r.id == "fig9.xmalloc-large-collapse").unwrap();
        assert!(x.pass);
    }

    #[test]
    fn inverted_shape_fails() {
        let d = tmpdir("inv");
        write(
            &d,
            "alloc_thread_10000_TITANV.csv",
            "manager,size,alloc_ms,free_ms,failures,timed_out\n\
             CUDA-Allocator,64,5.0,0.1,0,false\n\
             CUDA-Allocator,2048,5.0,0.1,0,false\n\
             CUDA-Allocator,4096,6.0,0.1,0,false\n\
             ScatterAlloc,64,0.4,0.4,0,false\n\
             Ouro-S-P,64,0.5,0.5,0,false\n",
        );
        let results = check_all(&d);
        let split = results.iter().find(|r| r.id == "fig9.cuda-2048-split").unwrap();
        assert!(!split.pass, "flat line must not satisfy the staircase");
        let dealloc = results.iter().find(|r| r.id == "fig9.cuda-dealloc-slowest").unwrap();
        assert!(!dealloc.pass);
    }
}
