//! Experiment runners — one function per test-case family of Section 4.
//!
//! Every runner creates a *fresh* manager per cell (as the artifact's
//! scripts do between runs), executes the kernel(s) on the simulated
//! device, and returns plain rows the `repro` binary serialises to CSV.

use std::time::{Duration, Instant};

use gpu_sim::{Device, PerThread};
use gpu_workloads::{churn, sizes, workgen, write_test};
use gpumem_core::frag::{AddressRange, FragmentationStats};
use gpumem_core::sanitize::{Sanitized, VIOLATION_KINDS};
use gpumem_core::trace::{
    chrome_trace_json, occupancy_timeline, OccupancyTimeline, OpLatencies, Trace,
};
use gpumem_core::{
    AllocError, CounterSnapshot, DeviceAllocator, DevicePtr, HeapBackendKind, HeapSpec, Pretouch,
    WarpCtx, WARP_SIZE,
};

use crate::registry::ManagerKind;

/// Shared experiment context.
pub struct Bench {
    /// The simulated device (spec + worker pool).
    pub device: Device,
    /// Iterations per cell; the mean is reported (the paper uses 100; the
    /// CPU default is smaller).
    pub iterations: u32,
    /// Workload seed.
    pub seed: u64,
    /// Soft per-cell timeout: once a cell exceeds it, larger parameter
    /// values for the same manager are skipped (mirrors the artifact's
    /// per-process timeout).
    pub cell_timeout: Duration,
    /// Heap substrate every runner builds managers over (default: the
    /// `GMS_HEAP_BACKEND` environment default, normally RAM).
    pub heap_backend: HeapBackendKind,
    /// Page-commit policy for those heaps (default: backend-appropriate).
    pub pretouch: Pretouch,
    /// When set, overrides the demand-derived [`heap_for`] size for every
    /// cell — how `repro perf` pins the paper's full 8 GiB heap.
    pub heap_override: Option<u64>,
    /// Wrap every manager in the `Cached` magazine decorator.
    pub cached: bool,
    /// Untimed warm-up iterations before the timed loop in the perf
    /// runners. Cached cells use 1 so the timed iterations measure the
    /// steady-state hot path (magazines populated by the warm-up's frees)
    /// rather than the cold first pass.
    pub warmup: u32,
}

impl Bench {
    /// Context with CPU-scaled defaults on the given device.
    pub fn new(device: Device) -> Self {
        Bench {
            device,
            iterations: 2,
            seed: 0x5eed,
            cell_timeout: Duration::from_secs(20),
            heap_backend: HeapBackendKind::env_default(),
            pretouch: Pretouch::Auto,
            heap_override: None,
            cached: false,
            warmup: 0,
        }
    }

    fn num_sms(&self) -> u32 {
        self.device.spec().num_sms
    }

    /// The heap spec for a cell with a demand of `num × max_size` bytes:
    /// [`heap_for`] sizing (unless overridden) over the context's backend
    /// and pre-touch policy.
    pub fn heap_spec(&self, num: u32, max_size: u64) -> HeapSpec {
        self.heap_spec_bytes(heap_for(num, max_size))
    }

    /// Like [`Bench::heap_spec`] but surfaces a demand-computation overflow
    /// as a typed [`SizingError`] instead of saturating — the path matrix
    /// scenarios take, where a wrapped size must abort the anchor rather
    /// than silently under-provision it.
    pub fn try_heap_spec(&self, num: u32, max_size: u64) -> Result<HeapSpec, SizingError> {
        Ok(self.heap_spec_bytes(try_heap_for(num, max_size)?))
    }

    /// A heap spec of exactly `bytes` (unless overridden) over the
    /// context's backend and pre-touch policy.
    pub fn heap_spec_bytes(&self, bytes: u64) -> HeapSpec {
        HeapSpec::new(self.heap_override.unwrap_or(bytes))
            .with_backend(self.heap_backend)
            .with_pretouch(self.pretouch)
    }
}

/// Typed sizing failures of the demand arithmetic in this module. Before
/// these, `heap_for` and the graph demand sums used unchecked multiplies
/// that could wrap at matrix scale (1M–10M allocations × KiB-to-page sizes)
/// and silently under-provision the heap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizingError {
    /// `num × max_size` does not fit in `u64`.
    DemandOverflow { num: u32, size: u64 },
    /// A per-vertex adjacency demand (`next_pow2(degree × 4)`) has no
    /// representable power-of-two size.
    AdjacencyOverflow { vertex: u32, degree: u64 },
    /// The per-vertex demand sum (plus update headroom) overflowed `u64`.
    DemandSumOverflow { vertices: u32 },
}

impl std::fmt::Display for SizingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SizingError::DemandOverflow { num, size } => {
                write!(f, "heap demand {num} x {size} B overflows u64")
            }
            SizingError::AdjacencyOverflow { vertex, degree } => {
                write!(f, "adjacency demand of vertex {vertex} (degree {degree}) overflows u64")
            }
            SizingError::DemandSumOverflow { vertices } => {
                write!(f, "graph demand sum over {vertices} vertices overflows u64")
            }
        }
    }
}

impl std::error::Error for SizingError {}

/// Sizes a per-manager heap for a demand of `num × max_size` bytes: six-fold
/// headroom (fragmentation, per-manager metadata, repeated iterations for
/// managers without free), clamped to sane host bounds.
///
/// On demand overflow the result saturates to the 6 GiB clamp ceiling —
/// the same size any over-demand cell gets — instead of wrapping below it.
/// Callers that must *distinguish* overflow use [`try_heap_for`].
pub fn heap_for(num: u32, max_size: u64) -> u64 {
    try_heap_for(num, max_size).unwrap_or(6 << 30)
}

/// Checked [`heap_for`]: a `num × max_size` product that does not fit in
/// `u64` is a typed [`SizingError`], not a wrapped (under-provisioned) size.
pub fn try_heap_for(num: u32, max_size: u64) -> Result<u64, SizingError> {
    let demand = (num as u64)
        .checked_mul(max_size.max(16))
        .ok_or(SizingError::DemandOverflow { num, size: max_size })?;
    let raw = (demand.saturating_mul(6)).clamp(64 << 20, 6 << 30);
    Ok(raw.div_ceil(4 << 20) * (4 << 20))
}

/// One cell of the allocation-performance experiments (Figures 9/10).
#[derive(Clone, Debug)]
pub struct AllocPerfCell {
    pub manager: &'static str,
    pub size: u64,
    pub num: u32,
    pub alloc: Duration,
    /// `None` when the manager cannot free (Atomic) — plotted as a gap.
    pub free: Option<Duration>,
    pub failures: u64,
    pub timed_out: bool,
}

/// Runs one (manager, size, num) cell of Fig. 9/10: `num` allocations of
/// `size` bytes (thread-based, or one per warp when `warp`), then the
/// matching deallocations, averaged over `bench.iterations`.
pub fn alloc_perf(
    bench: &Bench,
    kind: ManagerKind,
    num: u32,
    size: u64,
    warp: bool,
) -> AllocPerfCell {
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(num, size))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let mut alloc_total = Duration::ZERO;
    let mut free_total = Duration::ZERO;
    let mut free_supported = true;
    let mut failures = 0u64;

    // Untimed warm-up passes (cached cells): the frees populate the
    // magazine layer, so the timed loop below measures the steady-state
    // hot path instead of the cold first fill.
    for _ in 0..bench.warmup {
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        if warp {
            bench.device.launch_warps(num, |w| {
                let mut out = [DevicePtr::NULL; 1];
                match alloc.malloc_warp(w, &[size], &mut out) {
                    Ok(()) => ptrs.set(w.warp as usize, out[0]),
                    Err(_) => ptrs.set(w.warp as usize, DevicePtr::NULL),
                }
            });
        } else {
            bench.device.launch(num, |ctx| match alloc.malloc(ctx, size) {
                Ok(p) => ptrs.set(ctx.thread_id as usize, p),
                Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
            });
        }
        let ptrs = ptrs.into_vec();
        if kind.warp_level_only() {
            let warps = if warp { num } else { num.div_ceil(WARP_SIZE) };
            bench.device.launch_warps(warps, |w| {
                let _ = alloc.free_warp_all(w);
            });
        } else if alloc.info().supports_free {
            bench.device.launch(num, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    let _ = alloc.free(ctx, p);
                }
            });
        }
    }

    let started = Instant::now();
    let mut iters_done = 0u32;

    for _ in 0..bench.iterations {
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        let t_alloc = if warp {
            bench.device.launch_warps(num, |w| {
                let mut out = [DevicePtr::NULL; 1];
                match alloc.malloc_warp(w, &[size], &mut out) {
                    Ok(()) => ptrs.set(w.warp as usize, out[0]),
                    Err(_) => ptrs.set(w.warp as usize, DevicePtr::NULL),
                }
            })
        } else {
            bench.device.launch(num, |ctx| match alloc.malloc(ctx, size) {
                Ok(p) => ptrs.set(ctx.thread_id as usize, p),
                Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
            })
        };
        let ptrs = ptrs.into_vec();
        failures += ptrs.iter().filter(|p| p.is_null()).count() as u64;
        alloc_total += t_alloc;

        // Deallocation phase.
        if kind.warp_level_only() {
            let warps = if warp { num } else { num.div_ceil(WARP_SIZE) };
            free_total += bench.device.launch_warps(warps, |w| {
                let _ = alloc.free_warp_all(w);
            });
        } else if alloc.info().supports_free {
            free_total += if warp {
                bench.device.launch_warps(num, |w| {
                    let p = ptrs[w.warp as usize];
                    if !p.is_null() {
                        let _ = alloc.free(&w.leader(), p);
                    }
                })
            } else {
                bench.device.launch(num, |ctx| {
                    let p = ptrs[ctx.thread_id as usize];
                    if !p.is_null() {
                        let _ = alloc.free(ctx, p);
                    }
                })
            };
        } else {
            free_supported = false;
        }
        iters_done += 1;
        if started.elapsed() > bench.cell_timeout {
            break;
        }
    }
    let n = iters_done.max(1);
    AllocPerfCell {
        manager: kind.label(),
        size,
        num,
        alloc: alloc_total / n,
        free: free_supported.then_some(free_total / n),
        failures,
        timed_out: started.elapsed() > bench.cell_timeout,
    }
}

/// Runs one mixed-allocation cell (Fig. 9h): per-thread sizes uniform in
/// `[4, upper]`.
pub fn mixed_perf(bench: &Bench, kind: ManagerKind, num: u32, upper: u64) -> AllocPerfCell {
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(num, upper))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let mut alloc_total = Duration::ZERO;
    let mut free_total = Duration::ZERO;
    let mut free_supported = true;
    let mut failures = 0u64;

    // Untimed warm-up passes (cached cells): populate the magazines so the
    // timed loop measures the steady-state hot path. A distinct seed keeps
    // the warm-up's size stream from matching any timed iteration exactly —
    // the magazines must pay off via class rounding, not size identity.
    for w in 0..bench.warmup {
        let seed = bench.seed ^ !(w as u64);
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        bench.device.launch(num, |ctx| {
            let size = sizes::thread_size(seed, ctx.thread_id, 4, upper);
            match alloc.malloc(ctx, size) {
                Ok(p) => ptrs.set(ctx.thread_id as usize, p),
                Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
            }
        });
        let ptrs = ptrs.into_vec();
        if alloc.info().supports_free {
            bench.device.launch(num, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    let _ = alloc.free(ctx, p);
                }
            });
        } else if kind.warp_level_only() {
            bench.device.launch_warps(num.div_ceil(WARP_SIZE), |w| {
                let _ = alloc.free_warp_all(w);
            });
        }
    }

    let started = Instant::now();
    let mut iters_done = 0u32;

    for it in 0..bench.iterations {
        let seed = bench.seed ^ (it as u64);
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        alloc_total += bench.device.launch(num, |ctx| {
            let size = sizes::thread_size(seed, ctx.thread_id, 4, upper);
            match alloc.malloc(ctx, size) {
                Ok(p) => ptrs.set(ctx.thread_id as usize, p),
                Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
            }
        });
        let ptrs = ptrs.into_vec();
        failures += ptrs.iter().filter(|p| p.is_null()).count() as u64;
        if alloc.info().supports_free {
            free_total += bench.device.launch(num, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    let _ = alloc.free(ctx, p);
                }
            });
        } else if kind.warp_level_only() {
            free_total += bench.device.launch_warps(num.div_ceil(WARP_SIZE), |w| {
                let _ = alloc.free_warp_all(w);
            });
        } else {
            free_supported = false;
        }
        iters_done += 1;
        if started.elapsed() > bench.cell_timeout {
            break;
        }
    }
    let n = iters_done.max(1);
    AllocPerfCell {
        manager: kind.label(),
        size: upper,
        num,
        alloc: alloc_total / n,
        free: free_supported.then_some(free_total / n),
        failures,
        timed_out: started.elapsed() > bench.cell_timeout,
    }
}

/// One row of the fragmentation experiment (Fig. 11a).
#[derive(Clone, Debug)]
pub struct FragCell {
    pub manager: &'static str,
    pub size: u64,
    /// Address range after the initial `num` allocations.
    pub initial: FragmentationStats,
    /// Maximum address range observed across the alloc/free cycles.
    pub max_range_after_cycles: u64,
}

/// Runs the fragmentation test: `num` allocations of `size`, address range
/// recorded, then `cycles` iterations of free-all + allocate-all.
pub fn fragmentation(
    bench: &Bench,
    kind: ManagerKind,
    num: u32,
    size: u64,
    cycles: u32,
) -> FragCell {
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(num, size))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let allocate = |seed_round: u64| -> Vec<DevicePtr> {
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        bench.device.launch(num, |ctx| {
            let _ = seed_round;
            match alloc.malloc(ctx, size) {
                Ok(p) => ptrs.set(ctx.thread_id as usize, p),
                Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
            }
        });
        ptrs.into_vec()
    };
    let range_of = |ptrs: &[DevicePtr]| {
        let mut r = AddressRange::new();
        for &p in ptrs {
            r.record(p, size);
        }
        r
    };

    let mut ptrs = allocate(0);
    let initial = FragmentationStats::from_range(&range_of(&ptrs));
    let mut max_range = initial.address_range;
    let can_free = alloc.info().supports_free || kind.warp_level_only();
    if can_free {
        for round in 1..=cycles {
            if kind.warp_level_only() {
                bench.device.launch_warps(num.div_ceil(WARP_SIZE), |w| {
                    let _ = alloc.free_warp_all(w);
                });
            } else {
                bench.device.launch(num, |ctx| {
                    let p = ptrs[ctx.thread_id as usize];
                    if !p.is_null() {
                        let _ = alloc.free(ctx, p);
                    }
                });
            }
            ptrs = allocate(round as u64);
            max_range = max_range.max(range_of(&ptrs).range());
        }
    }
    FragCell { manager: kind.label(), size, initial, max_range_after_cycles: max_range }
}

/// One row of the out-of-memory experiment (Fig. 11b).
#[derive(Clone, Debug)]
pub struct OomCell {
    pub manager: &'static str,
    pub size: u64,
    pub allocations: u64,
    /// Achieved demand as a share of the heap (the "% of baseline" axis).
    pub utilization: f64,
    pub timed_out: bool,
}

/// Allocates `size` until the manager reports OOM (or the timeout fires,
/// like the artifact's one-hour kill) and reports heap utilization.
///
/// The storm runs through [`Device::launch`] in waves of four blocks, so
/// every request carries real launch coordinates (block size from the
/// device spec, not a hard-coded 256) and SM-scattered managers see the
/// thread/SM keys they shard by — a single-host-thread loop fabricating
/// `ThreadCtx`s fed every request through one shard and missed the
/// contention the figure is about.
pub fn oom(bench: &Bench, kind: ManagerKind, heap_bytes: u64, size: u64) -> OomCell {
    use gpumem_core::sync::{AtomicU64, Ordering};

    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec_bytes(heap_bytes))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let start = Instant::now();
    let mut count = 0u64;
    let mut timed_out = false;
    let wave = bench.device.spec().default_block_size * 4;
    loop {
        let granted = AtomicU64::new(0);
        let denied = AtomicU64::new(0);
        bench.device.launch(wave, |ctx| match alloc.malloc(ctx, size) {
            Ok(_) => {
                granted.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                denied.fetch_add(1, Ordering::Relaxed);
            }
        });
        count += granted.load(Ordering::Relaxed);
        if denied.load(Ordering::Relaxed) > 0 {
            break;
        }
        if start.elapsed() > bench.cell_timeout {
            timed_out = true;
            break;
        }
    }
    OomCell {
        manager: kind.label(),
        size,
        allocations: count,
        // f64 throughout: `count * size` in u64 can overflow once a full-tier
        // storm grants billions of bytes.
        utilization: count as f64 * size as f64 / heap_bytes as f64,
        timed_out,
    }
}

/// One row of the work-generation experiment (Fig. 11c/d) or of the
/// baseline series.
#[derive(Clone, Debug)]
pub struct WorkGenCell {
    pub manager: &'static str,
    pub threads: u32,
    pub elapsed: Duration,
    pub failures: u64,
}

/// Work generation through a manager: allocate per-thread work and write it.
pub fn work_generation(
    bench: &Bench,
    kind: ManagerKind,
    threads: u32,
    lo: u64,
    hi: u64,
) -> WorkGenCell {
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(threads, hi))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let r = workgen::run_managed(alloc.as_ref(), &bench.device, threads, bench.seed, lo, hi);
    WorkGenCell { manager: kind.label(), threads, elapsed: r.elapsed, failures: r.failures }
}

/// The prefix-sum baseline row for the same workload.
pub fn work_generation_baseline(bench: &Bench, threads: u32, lo: u64, hi: u64) -> WorkGenCell {
    let heap = gpumem_core::DeviceHeap::try_new(bench.heap_spec(threads, hi))
        .unwrap_or_else(|e| panic!("{e}"));
    let r = workgen::run_baseline(&bench.device, &heap, threads, bench.seed, lo, hi);
    WorkGenCell { manager: "Baseline", threads, elapsed: r.elapsed, failures: r.failures }
}

/// One row of the write/access-performance experiment (Fig. 11e).
#[derive(Clone, Debug)]
pub struct WriteCell {
    pub manager: &'static str,
    pub pattern: String,
    /// Memory transactions relative to the coalesced baseline (≥ 1.0).
    pub relative_cost: f64,
    pub failures: u64,
}

/// Prices each manager's allocation layout with the coalescing model.
pub fn write_performance(
    bench: &Bench,
    kind: ManagerKind,
    threads: u32,
    pattern: write_test::WritePattern,
) -> WriteCell {
    let max = match pattern {
        write_test::WritePattern::Uniform { bytes } => bytes,
        write_test::WritePattern::Mixed { hi, .. } => hi,
    };
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(threads, max))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let r = write_test::run(alloc.as_ref(), &bench.device, threads, bench.seed, pattern);
    WriteCell {
        manager: kind.label(),
        pattern: format!("{pattern:?}"),
        relative_cost: r.stats.relative_cost(),
        failures: r.failures,
    }
}

/// One row of the graph experiments (Fig. 11f/11g).
#[derive(Clone, Debug)]
pub struct GraphCell {
    pub manager: &'static str,
    pub graph: String,
    pub elapsed: Duration,
    pub failures: u64,
}

/// Total adjacency-array demand of `csr` (each vertex's list rounded up to
/// the next power of two, 4 B per edge slot) plus 64 B of headroom per
/// expected update edge — all checked: a pathological degree or vertex
/// count surfaces as a [`SizingError`] instead of wrapping the sum and
/// under-provisioning the heap (the `next_pow2(degree*4)` sums were
/// previously unchecked).
pub fn graph_demand(csr: &dyn_graph::CsrGraph, extra_edges: u32) -> Result<u64, SizingError> {
    let mut demand = 0u64;
    for v in 0..csr.vertices() {
        let degree = csr.degree(v);
        let slot = degree
            .max(1)
            .checked_mul(4)
            .and_then(gpumem_core::util::checked_next_pow2)
            .ok_or(SizingError::AdjacencyOverflow { vertex: v, degree })?;
        demand = demand
            .checked_add(slot)
            .ok_or(SizingError::DemandSumOverflow { vertices: csr.vertices() })?;
    }
    demand
        .checked_add(extra_edges as u64 * 64)
        .ok_or(SizingError::DemandSumOverflow { vertices: csr.vertices() })
}

/// Graph initialisation (Fig. 11f).
pub fn graph_init(
    bench: &Bench,
    kind: ManagerKind,
    csr: &dyn_graph::CsrGraph,
) -> Result<GraphCell, SizingError> {
    let demand = graph_demand(csr, 0)?;
    let alloc = kind
        .builder()
        .heap_spec(bench.try_heap_spec(1, demand.max(1 << 20))?)
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let (g, elapsed) = dyn_graph::DynGraph::init(alloc.as_ref(), &bench.device, csr);
    Ok(GraphCell {
        manager: kind.label(),
        graph: csr.name.clone(),
        elapsed,
        failures: g.failures(),
    })
}

/// Graph updates (Fig. 11g): insert `n_edges`, focused or uniform.
pub fn graph_update(
    bench: &Bench,
    kind: ManagerKind,
    csr: &dyn_graph::CsrGraph,
    n_edges: u32,
    focused: bool,
) -> Result<GraphCell, SizingError> {
    // Updates grow a few adjacencies dramatically; generous headroom.
    let demand = graph_demand(csr, n_edges)?;
    let heap = bench.try_heap_spec(1, demand.max(1 << 20))?;
    let alloc = kind.builder().heap_spec(heap).sms(bench.num_sms()).cached(bench.cached).build();
    let (g, _) = dyn_graph::DynGraph::init(alloc.as_ref(), &bench.device, csr);
    let edges = if focused {
        dyn_graph::focused_edges(csr.vertices(), n_edges, 20, bench.seed)
    } else {
        dyn_graph::uniform_edges(csr.vertices(), n_edges, bench.seed)
    };
    let elapsed = g.insert_edges(&bench.device, &edges);
    Ok(GraphCell {
        manager: kind.label(),
        graph: csr.name.clone(),
        elapsed,
        failures: g.failures(),
    })
}

/// One row of the initialisation & register experiment (§4.1).
#[derive(Clone, Debug)]
pub struct InitCell {
    pub manager: &'static str,
    pub init: Duration,
    pub malloc_regs: u32,
    pub free_regs: u32,
}

/// Measures manager construction time and the register-footprint proxy.
pub fn init_performance(bench: &Bench, kind: ManagerKind, heap_bytes: u64) -> InitCell {
    // Pre-create the heap so the measurement isolates the manager's own
    // initialisation, as the artifact does.
    let heap = std::sync::Arc::new(
        gpumem_core::DeviceHeap::try_new(bench.heap_spec_bytes(heap_bytes))
            .unwrap_or_else(|e| panic!("{e}")),
    );
    let start = Instant::now();
    let alloc = kind.builder().heap_shared(heap).sms(bench.num_sms()).cached(bench.cached).build();
    let init = start.elapsed();
    let regs = alloc.register_footprint();
    InitCell { manager: kind.label(), init, malloc_regs: regs.malloc, free_regs: regs.free }
}

/// One row of the contention report (`repro --report contention`): the
/// counter activity of a `num`-thread alloc/free run, plus the wall-clock of
/// the same run with metrics disabled so the observability overhead is
/// visible next to the counters it buys.
#[derive(Clone, Debug)]
pub struct ContentionCell {
    pub manager: &'static str,
    pub num: u32,
    pub size: u64,
    /// Alloc + free wall-clock with metrics enabled.
    pub observed: Duration,
    /// Alloc + free wall-clock of an identical run with metrics disabled.
    pub baseline: Duration,
    pub failures: u64,
    /// Aggregated counters of the observed run.
    pub counters: CounterSnapshot,
    /// Host-side dispatch overhead of the observed run's launches (summed
    /// over the alloc and free phases) — the cost the pooled executor
    /// keeps *out* of `observed`/`baseline`.
    pub dispatch: Duration,
    /// Workers that executed at least one warp in the alloc launch.
    pub workers_used: usize,
    /// Extra claim-counter trips across the observed launches (scheduler
    /// rebalancing, see `SchedStats::steals`).
    pub steals: u64,
    /// Trace-ring events lost to drop-newest backpressure during the
    /// observed run. Zero when no tracer is attached (the default); real
    /// when one is — e.g. under `repro watch`'s global telemetry sink —
    /// and then a signal that percentile/occupancy views are truncated.
    pub dropped_events: u64,
}

impl ContentionCell {
    /// Observed-over-baseline slowdown (1.0 = free observability).
    pub fn overhead_factor(&self) -> f64 {
        let base = self.baseline.as_secs_f64();
        if base == 0.0 {
            1.0
        } else {
            self.observed.as_secs_f64() / base
        }
    }
}

/// Profiles one manager's contention counters over a thread-based alloc/free
/// run (warp-collective free for warp-level-only managers), then repeats the
/// run with metrics disabled to price the observability layer.
pub fn contention_profile(bench: &Bench, kind: ManagerKind, num: u32, size: u64) -> ContentionCell {
    struct Run {
        elapsed: Duration,
        failures: u64,
        counters: CounterSnapshot,
        dispatch: Duration,
        workers_used: usize,
        steals: u64,
        dropped_events: u64,
    }
    let run = |metrics_on: bool| -> Run {
        let alloc = kind
            .builder()
            .heap_spec(bench.heap_spec(num, size))
            .sms(bench.num_sms())
            .metrics(metrics_on)
            .cached(bench.cached)
            .build();
        let m = alloc.metrics();
        let ptrs = PerThread::<DevicePtr>::new(num as usize);
        let rep = bench.device.launch_observed(&m, num, |ctx| match alloc.malloc(ctx, size) {
            Ok(p) => ptrs.set(ctx.thread_id as usize, p),
            Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
        });
        let ptrs = ptrs.into_vec();
        let failures = ptrs.iter().filter(|p| p.is_null()).count() as u64;
        let mut out = Run {
            elapsed: rep.elapsed,
            failures,
            counters: rep.counters,
            dispatch: rep.sched.dispatch,
            workers_used: rep.sched.workers_used(),
            steals: rep.sched.steals,
            dropped_events: 0,
        };
        if kind.warp_level_only() {
            let free = bench.device.launch_warps_observed(&m, num.div_ceil(WARP_SIZE), |w| {
                let _ = alloc.free_warp_all(w);
            });
            out.elapsed += free.elapsed;
            out.counters = out.counters.merge(&free.counters);
            out.dispatch += free.sched.dispatch;
            out.steals += free.sched.steals;
        } else if alloc.info().supports_free {
            let free = bench.device.launch_observed(&m, num, |ctx| {
                let p = ptrs[ctx.thread_id as usize];
                if !p.is_null() {
                    let _ = alloc.free(ctx, p);
                }
            });
            out.elapsed += free.elapsed;
            out.counters = out.counters.merge(&free.counters);
            out.dispatch += free.sched.dispatch;
            out.steals += free.sched.steals;
        }
        out.dropped_events = m.tracer().map_or(0, |rec| rec.dropped());
        out
    };
    // A discarded warmup absorbs cold-start effects (first touch of a fresh
    // heap, worker spin-up); baseline and observed runs then alternate and
    // the minimum of each side is reported, so the overhead column reflects
    // the instrumentation, not scheduling noise.
    let _ = run(false);
    let mut observed = Duration::MAX;
    let mut baseline = Duration::MAX;
    let mut failures = 0u64;
    let mut counters = CounterSnapshot::default();
    let mut dispatch = Duration::ZERO;
    let mut workers_used = 0usize;
    let mut steals = 0u64;
    let mut dropped_events = 0u64;
    for _ in 0..bench.iterations.max(2) {
        let b = run(false);
        baseline = baseline.min(b.elapsed);
        let o = run(true);
        observed = observed.min(o.elapsed);
        failures = o.failures;
        counters = o.counters;
        dispatch = o.dispatch;
        workers_used = o.workers_used;
        steals = o.steals;
        dropped_events = o.dropped_events;
    }
    ContentionCell {
        manager: kind.label(),
        num,
        size,
        observed,
        baseline,
        failures,
        counters,
        dispatch,
        workers_used,
        steals,
        dropped_events,
    }
}

/// Result of one manager's traced run (`repro trace`): the decoded event
/// stream plus the three derived views.
#[derive(Clone, Debug)]
pub struct TraceRun {
    pub manager: &'static str,
    pub num: u32,
    /// The decoded, time-sorted event stream.
    pub trace: Trace,
    /// Per-op latency histograms (p50/p95/p99 in the CSV).
    pub latencies: OpLatencies,
    /// Heap-occupancy/fragmentation timeline replayed from the trace.
    pub occupancy: OccupancyTimeline,
    /// Chrome trace-event JSON export (Perfetto-loadable).
    pub json: String,
    /// Kernel wall-clock across the alloc and free launches.
    pub elapsed: Duration,
}

/// Runs the mixed-size alloc/free workload on `kind` with the event-tracing
/// layer attached and derives all three trace consumers. A single traced
/// pass (no min-of-N averaging): the product here is the *time axis*, not a
/// robust scalar.
pub fn trace_profile(bench: &Bench, kind: ManagerKind, num: u32, events_per_sm: usize) -> TraceRun {
    const SIZE_LO: u64 = 16;
    const SIZE_HI: u64 = 1024;
    let alloc = kind
        .builder()
        .heap_spec(bench.heap_spec(num, SIZE_HI))
        .sms(bench.num_sms())
        .trace_capacity(events_per_sm)
        .cached(bench.cached)
        .build();
    let m = alloc.metrics();
    let ptrs = PerThread::<DevicePtr>::new(num as usize);
    let rep = bench.device.launch_observed(&m, num, |ctx| {
        let size = sizes::thread_size(bench.seed, ctx.thread_id, SIZE_LO, SIZE_HI);
        match alloc.malloc(ctx, size) {
            Ok(p) => ptrs.set(ctx.thread_id as usize, p),
            Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
        }
    });
    let mut elapsed = rep.elapsed;
    let ptrs = ptrs.into_vec();
    if kind.warp_level_only() {
        let free = bench.device.launch_warps_observed(&m, num.div_ceil(WARP_SIZE), |w| {
            let _ = alloc.free_warp_all(w);
        });
        elapsed += free.elapsed;
    } else if alloc.info().supports_free {
        let free = bench.device.launch_observed(&m, num, |ctx| {
            let p = ptrs[ctx.thread_id as usize];
            if !p.is_null() {
                let _ = alloc.free(ctx, p);
            }
        });
        elapsed += free.elapsed;
    }
    let rec = m.tracer().expect("trace_capacity attaches a recorder");
    let trace = rec.snapshot();
    let latencies = OpLatencies::from_trace(&trace);
    let occupancy = occupancy_timeline(&trace, 4096);
    let json = chrome_trace_json(&trace, kind.label());
    TraceRun { manager: kind.label(), num, trace, latencies, occupancy, json, elapsed }
}

/// One row of the sanitizer sweep (`repro sanitize`): violation totals of a
/// churn + mixed-size run executed under [`Sanitized`].
#[derive(Clone, Debug)]
pub struct SanitizeCell {
    pub manager: &'static str,
    pub num: u32,
    pub cycles: u32,
    /// Allocation failures across both phases (not violations — a manager
    /// may legitimately refuse).
    pub failures: u64,
    /// Per-kind violation totals, indexed like
    /// [`gpumem_core::sanitize::ALL_VIOLATION_KINDS`].
    pub counts: [u64; VIOLATION_KINDS],
    /// Violations counted beyond the recording cap.
    pub dropped: u64,
    /// Shadow-map allocations still live after the final free phase (> 0
    /// for managers without free support, or when frees failed).
    pub live_after: u64,
}

impl SanitizeCell {
    /// Total violations across all kinds.
    pub fn total_violations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether the run was violation-free.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }
}

/// Runs the churn workload plus a mixed-size alloc/free phase on `kind`
/// wrapped in [`Sanitized`] (default config: 32 B canary redzones,
/// poison-on-free) and reports the violation totals.
pub fn sanitize_run(bench: &Bench, kind: ManagerKind, num: u32, cycles: u32) -> SanitizeCell {
    const MIXED_MAX: u64 = 1024;
    let inner = kind
        .builder()
        .heap_spec(bench.heap_spec(num, MIXED_MAX))
        .sms(bench.num_sms())
        .cached(bench.cached)
        .build();
    let san = Sanitized::new(inner);
    let mut failures = 0u64;

    // Phase 1: fixed-size churn (the paper's repeated alloc/free cycle).
    let churn = churn::run(&san, &bench.device, num, 256, cycles);
    failures += churn.failures;

    // Phase 2: mixed sizes in [16, 1024] — exercises class boundaries and
    // the redzone across every size class the manager serves.
    let info = san.info();
    let ptrs = PerThread::<DevicePtr>::new(num as usize);
    bench.device.launch(num, |ctx| {
        let size = sizes::thread_size(bench.seed, ctx.thread_id, 16, MIXED_MAX);
        match san.malloc(ctx, size) {
            Ok(p) => ptrs.set(ctx.thread_id as usize, p),
            Err(_) => ptrs.set(ctx.thread_id as usize, DevicePtr::NULL),
        }
    });
    let ptrs = ptrs.into_vec();
    failures += ptrs.iter().filter(|p| p.is_null()).count() as u64;
    if info.warp_level_only {
        bench.device.launch_warps(num.div_ceil(WARP_SIZE), |w| {
            let _ = san.free_warp_all(w);
        });
    } else if info.supports_free {
        bench.device.launch(num, |ctx| {
            let p = ptrs[ctx.thread_id as usize];
            if !p.is_null() {
                let _ = san.free(ctx, p);
            }
        });
    }

    let report = san.take_report();
    SanitizeCell {
        manager: kind.label(),
        num,
        cycles,
        failures,
        counts: report.counts,
        dropped: report.dropped,
        live_after: report.live,
    }
}

/// Sanity helper shared by tests and the quickstart example: allocate,
/// write, read back, free.
pub fn smoke_test(alloc: &dyn DeviceAllocator) -> Result<(), AllocError> {
    let ctx = gpumem_core::ThreadCtx::host();
    let p = alloc.malloc(&ctx, 256)?;
    alloc.heap().fill(p, 256, 0x5c);
    assert_eq!(alloc.heap().read_u8(p, 255), 0x5c);
    if alloc.info().supports_free {
        alloc.free(&ctx, p)?;
    } else if alloc.info().warp_level_only {
        alloc.free_warp_all(&WarpCtx { warp: 0, block: 0, sm: 0 })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    fn bench() -> Bench {
        let mut b = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 2));
        b.iterations = 1;
        b
    }

    #[test]
    fn heap_sizing_bounds() {
        assert_eq!(heap_for(1, 16) % (4 << 20), 0);
        assert!(heap_for(1, 16) >= 64 << 20);
        assert!(heap_for(1 << 20, 8192) <= 6 << 30);
        assert!(heap_for(100_000, 8192) >= 100_000 * 8192);
    }

    #[test]
    fn heap_sizing_overflow_is_typed_not_wrapped() {
        // u32::MAX allocations of 2^40 B: the demand product overflows u64.
        let err = try_heap_for(u32::MAX, 1 << 40).unwrap_err();
        assert!(matches!(err, SizingError::DemandOverflow { .. }), "{err}");
        assert!(err.to_string().contains("overflows"));
        // The infallible wrapper saturates to the clamp ceiling instead of
        // wrapping below it (the old `num as u64 * max_size` could yield a
        // tiny heap for a huge demand).
        assert_eq!(heap_for(u32::MAX, 1 << 40), 6 << 30);
        // Non-overflowing inputs agree between the two paths.
        assert_eq!(try_heap_for(100_000, 8192).unwrap(), heap_for(100_000, 8192));
    }

    #[test]
    fn graph_demand_checked_and_matches_scale() {
        let b = bench();
        let csr = dyn_graph::generate("fe_body", 256, 3);
        let d = graph_demand(&csr, 0).unwrap();
        // Every vertex needs at least one 4 B slot; headroom adds on top.
        assert!(d >= csr.vertices() as u64 * 4);
        assert!(graph_demand(&csr, 1000).unwrap() == d + 1000 * 64);
        let _ = b;
    }

    #[test]
    fn alloc_perf_runs_for_every_default_kind() {
        let b = bench();
        for kind in crate::registry::DEFAULT_KINDS {
            let cell = alloc_perf(&b, kind, 2048, 64, false);
            assert_eq!(cell.failures, 0, "{}", kind.label());
            assert!(cell.alloc.as_nanos() > 0, "{}", kind.label());
            if kind != ManagerKind::Atomic {
                assert!(cell.free.is_some(), "{}", kind.label());
            }
        }
    }

    #[test]
    fn warp_mode_allocates_one_per_warp() {
        let b = bench();
        let cell = alloc_perf(&b, ManagerKind::ScatterAlloc, 512, 128, true);
        assert_eq!(cell.failures, 0);
        assert_eq!(cell.num, 512);
    }

    #[test]
    fn fdg_runs_via_warp_free() {
        let b = bench();
        let cell = alloc_perf(&b, ManagerKind::FDGMalloc, 1024, 64, false);
        assert_eq!(cell.failures, 0);
        assert!(cell.free.is_some(), "tidy-up counts as deallocation");
    }

    #[test]
    fn mixed_perf_counts_no_failures_with_headroom() {
        let b = bench();
        let cell = mixed_perf(&b, ManagerKind::OuroVAP, 2048, 1024);
        assert_eq!(cell.failures, 0);
    }

    #[test]
    fn fragmentation_baseline_is_tight_for_atomic() {
        let b = bench();
        let cell = fragmentation(&b, ManagerKind::Atomic, 4096, 64, 0);
        // Bump allocation is perfectly packed: range == demand.
        assert_eq!(cell.initial.address_range, cell.initial.baseline);
    }

    #[test]
    fn fragmentation_cuda_spans_whole_heap() {
        let b = bench();
        let cell = fragmentation(&b, ManagerKind::CudaAllocator, 512, 4096, 1);
        // Small units from the bottom, large area pinned at top on first
        // carve? Not for uniform small sizes — but the expansion must still
        // exceed the packed baseline.
        assert!(cell.initial.expansion_factor() >= 1.0);
    }

    #[test]
    fn oom_utilization_in_unit_range() {
        let b = bench();
        for kind in [ManagerKind::OuroSP, ManagerKind::ScatterAlloc, ManagerKind::Halloc] {
            let cell = oom(&b, kind, 64 << 20, 1024);
            assert!(!cell.timed_out, "{}", kind.label());
            assert!(
                cell.utilization > 0.5 && cell.utilization <= 1.0,
                "{}: {}",
                kind.label(),
                cell.utilization
            );
        }
    }

    #[test]
    fn workgen_managed_and_baseline() {
        let b = bench();
        let m = work_generation(&b, ManagerKind::ScatterAlloc, 4096, 4, 64);
        assert_eq!(m.failures, 0);
        let base = work_generation_baseline(&b, 4096, 4, 64);
        assert_eq!(base.failures, 0);
        assert_eq!(base.manager, "Baseline");
    }

    #[test]
    fn write_perf_relative_cost_sane() {
        let b = bench();
        let cell = write_performance(
            &b,
            ManagerKind::OuroSP,
            4096,
            write_test::WritePattern::Uniform { bytes: 32 },
        );
        assert!(cell.relative_cost >= 0.9, "{}", cell.relative_cost);
        assert!(cell.relative_cost < 8.0, "{}", cell.relative_cost);
    }

    #[test]
    fn graph_init_and_update_run() {
        let b = bench();
        let csr = dyn_graph::generate("fe_body", 256, 3);
        let init = graph_init(&b, ManagerKind::OuroVLP, &csr).unwrap();
        assert_eq!(init.failures, 0);
        let upd = graph_update(&b, ManagerKind::OuroVLP, &csr, 2000, true).unwrap();
        assert_eq!(upd.failures, 0);
    }

    #[test]
    fn init_performance_reports_registers() {
        let b = bench();
        let cuda = init_performance(&b, ManagerKind::CudaAllocator, 64 << 20);
        let regeff = init_performance(&b, ManagerKind::RegEffC, 64 << 20);
        let xmal = init_performance(&b, ManagerKind::XMalloc, 64 << 20);
        // §4.1 ordering: Reg-Eff least, XMalloc's malloc the outlier.
        assert!(regeff.malloc_regs < cuda.malloc_regs);
        assert!(xmal.malloc_regs > 3 * cuda.malloc_regs);
    }

    #[test]
    fn smoke_every_default_kind() {
        for kind in crate::registry::DEFAULT_KINDS {
            let a = kind.builder().heap(64 << 20).sms(80).build();
            smoke_test(a.as_ref()).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
        }
    }

    /// `Sanitized<Cached<A>>` battery: the magazine decorator between the
    /// sanitizer and every core family must stay invisible to the shadow
    /// state. A parked free retires the sanitizer's live entry (the
    /// sanitizer wraps outside), a magazine hit re-admits cleanly, and no
    /// family leaks a violation or a live block through the cache.
    #[test]
    fn sanitize_clean_with_caching_for_every_core_family() {
        let mut b = bench();
        b.cached = true;
        for kind in [
            ManagerKind::OuroSP,
            ManagerKind::OuroVAP,
            ManagerKind::ScatterAlloc,
            ManagerKind::Halloc,
            ManagerKind::CudaAllocator,
            ManagerKind::XMalloc,
            ManagerKind::RegEffC,
            ManagerKind::Atomic,
        ] {
            let cell = sanitize_run(&b, kind, 1024, 2);
            assert!(cell.is_clean(), "{}: violations {:?}", kind.label(), cell.counts);
            assert_eq!(cell.dropped, 0, "{}", kind.label());
            assert_eq!(cell.failures, 0, "{}", kind.label());
            // Every free-capable family must end with an empty shadow map:
            // parked frees count as freed from the sanitizer's view.
            if kind != ManagerKind::Atomic {
                assert_eq!(
                    cell.live_after,
                    0,
                    "{} leaked live blocks through the cache",
                    kind.label()
                );
            }
        }
    }
}

#[cfg(test)]
mod mp_probe {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    #[ignore = "manual timing probe"]
    fn scatter_multipage_via_harness() {
        let mut b = Bench::new(Device::with_workers(DeviceSpec::titan_v(), 1));
        b.iterations = 1;
        let t = std::time::Instant::now();
        let cell = alloc_perf(&b, crate::registry::ManagerKind::ScatterAlloc, 10_000, 8192, false);
        eprintln!(
            "harness cell: alloc={:?} wall={:?} failures={}",
            cell.alloc,
            t.elapsed(),
            cell.failures
        );
    }
}
