//! # gpumem-bench — the benchmark harness
//!
//! Reproduces every table and figure of the paper's evaluation (Section 4)
//! against the Rust ports of the surveyed managers:
//!
//! * [`registry`] — instantiate any manager by kind or by the artifact's
//!   `o+s+h+c+r+x` selector syntax.
//! * [`runners`] — one runner per test-case family: allocation performance
//!   (thread/warp), mixed sizes, scaling, fragmentation, out-of-memory,
//!   work generation, write/access performance, graph initialisation and
//!   graph updates, plus the §4.1 init/register measurements.
//! * [`csv`] — result serialisation, consumed by `EXPERIMENTS.md`.
//!
//! * [`shapes`] — mechanical verification that a finished run exhibits the
//!   paper's qualitative results (`repro check`).
//! * [`anchor`] — the schema-versioned `BENCH_<scenario>.json` format
//!   (provenance-stamped, classed metrics) with a dependency-free parser.
//! * [`matrix`] — the declarative scenario registry behind `repro matrix`:
//!   the whole paper grid at smoke/full tier, one anchor per scenario.
//! * [`gate`] — the `repro gate` comparator: committed anchors vs a fresh
//!   run, per-scenario tolerances from `gates.toml`.
//! * [`watch`] — `repro watch`: any matrix scenario under the live
//!   telemetry sampler (`gpumem_core::telemetry`), exporting the sampled
//!   time-series as JSON, per-window CSV and OpenMetrics.
//!
//! The `repro` binary (in `src/bin`) drives everything:
//! `repro all` writes one CSV per figure into `results/`,
//! `repro check` validates the shapes against the paper, and
//! `repro matrix` / `repro gate` maintain the committed anchors.

pub mod anchor;
pub mod csv;
pub mod exec_bench;
pub mod gate;
pub mod matrix;
pub mod registry;
pub mod runners;
pub mod shapes;
pub mod watch;
