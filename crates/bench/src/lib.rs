//! # gpumem-bench — the benchmark harness
//!
//! Reproduces every table and figure of the paper's evaluation (Section 4)
//! against the Rust ports of the surveyed managers:
//!
//! * [`registry`] — instantiate any manager by kind or by the artifact's
//!   `o+s+h+c+r+x` selector syntax.
//! * [`runners`] — one runner per test-case family: allocation performance
//!   (thread/warp), mixed sizes, scaling, fragmentation, out-of-memory,
//!   work generation, write/access performance, graph initialisation and
//!   graph updates, plus the §4.1 init/register measurements.
//! * [`csv`] — result serialisation, consumed by `EXPERIMENTS.md`.
//!
//! * [`shapes`] — mechanical verification that a finished run exhibits the
//!   paper's qualitative results (`repro check`).
//!
//! The `repro` binary (in `src/bin`) drives everything:
//! `repro all` writes one CSV per figure into `results/`, and
//! `repro check` validates the shapes against the paper.

pub mod csv;
pub mod exec_bench;
pub mod registry;
pub mod runners;
pub mod shapes;
