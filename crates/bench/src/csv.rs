//! Tiny CSV emitter — the artifact's scripts aggregate results into `.csv`
//! files; so does the `repro` binary.

use std::fmt::Write as _;
use std::path::Path;

/// An in-memory CSV table.
pub struct Csv {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Optional provenance line, emitted as a `# ...` comment above the
    /// header (see [`Csv::comment`]).
    comment: Option<String>,
}

impl Csv {
    /// New table with the given column names.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Csv {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            comment: None,
        }
    }

    /// Attaches a one-line comment (provenance stamp: git revision, worker
    /// config, seed, schema version) rendered as `# <line>` before the
    /// header. Newlines are flattened so the comment stays one line —
    /// consumers (`scripts/summarize_results.py`) skip `#`-prefixed lines.
    pub fn comment(&mut self, line: impl Into<String>) {
        self.comment = Some(line.into().replace('\n', " "));
    }

    /// Appends a row (must match the header width).
    pub fn row<S: ToString>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(|c| c.to_string()).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV text.
    pub fn to_string_csv(&self) -> String {
        let mut out = String::new();
        if let Some(c) = &self.comment {
            let _ = writeln!(out, "# {c}");
        }
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(out, "{}", self.header.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Writes the table to `path`, creating parent directories.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_string_csv())
    }
}

/// Formats a `Duration` in milliseconds with microsecond resolution.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64() * 1e3)
}

/// Formats a `Duration` in microseconds with nanosecond resolution — for
/// scheduler-scale quantities (dispatch overhead) that vanish at ms scale.
pub fn us(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["1", "2"]);
        c.row(["x", "y"]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.to_string_csv(), "a,b\n1,2\nx,y\n");
    }

    #[test]
    fn escapes_commas_and_quotes() {
        let mut c = Csv::new(["v"]);
        c.row(["a,b"]);
        c.row(["say \"hi\""]);
        assert_eq!(c.to_string_csv(), "v\n\"a,b\"\n\"say \"\"hi\"\"\"\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut c = Csv::new(["a", "b"]);
        c.row(["only one"]);
    }

    #[test]
    fn comment_precedes_header_and_is_single_line() {
        let mut c = Csv::new(["a"]);
        c.comment("git=abc123 workers=8\nseed=0x5eed");
        c.row([1]);
        assert_eq!(c.to_string_csv(), "# git=abc123 workers=8 seed=0x5eed\na\n1\n");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.5000");
        assert_eq!(ms(Duration::ZERO), "0.0000");
    }

    #[test]
    fn writes_to_disk() {
        let dir = std::env::temp_dir().join("gms_csv_test");
        let path = dir.join("t.csv");
        let mut c = Csv::new(["x"]);
        c.row([42]);
        c.write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n42\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
