//! The manager registry — "switch between them for benchmarking purposes".
//!
//! Mirrors the artifact's selection syntax: each approach is picked by the
//! first letter of its name and chained with `+` (`-t o+s+h+c+r+x`,
//! Appendix A.6) — see [`ManagerSelection`]. Every kind constructs through
//! one [`ManagerBuilder`], so any test case can run against any manager,
//! with or without the contention-observability layer attached.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use alloc_atomic::AtomicAlloc;
use alloc_cuda::CudaAllocModel;
use alloc_fdg::FdgMalloc;
use alloc_halloc::Halloc;
use alloc_ouroboros::{OuroSC, OuroSP, OuroVAC, OuroVAP, OuroVLC, OuroVLP};
use alloc_regeff::{RegEffC, RegEffCF, RegEffCFM, RegEffCM};
use alloc_scatter::ScatterAlloc;
use alloc_xmalloc::XMalloc;
use gpumem_core::telemetry::{self, TelemetrySink};
use gpumem_core::trace::{TraceRecorder, Traced, DEFAULT_EVENTS_PER_SM};
use gpumem_core::{
    Cached, DeviceAllocator, DeviceHeap, HeapBackendKind, HeapError, HeapSpec, Metrics, Pretouch,
};

/// Every manager variant the framework can instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    Atomic,
    CudaAllocator,
    XMalloc,
    ScatterAlloc,
    FDGMalloc,
    RegEffC,
    RegEffCF,
    RegEffCM,
    RegEffCFM,
    Halloc,
    OuroSP,
    OuroSC,
    OuroVAP,
    OuroVAC,
    OuroVLP,
    OuroVLC,
}

use ManagerKind::*;

/// All kinds, in the paper's Figure 8 plot order.
pub const ALL_KINDS: [ManagerKind; 16] = [
    OuroSP,
    OuroSC,
    OuroVAP,
    OuroVAC,
    OuroVLP,
    OuroVLC,
    ScatterAlloc,
    Halloc,
    CudaAllocator,
    XMalloc,
    RegEffC,
    RegEffCF,
    RegEffCM,
    RegEffCFM,
    FDGMalloc,
    Atomic,
];

/// The default evaluation set: the paper's `-t o+s+h+c+r+x` plus the Atomic
/// baseline (FDGMalloc is opt-in, as in the paper's final evaluation).
pub const DEFAULT_KINDS: [ManagerKind; 15] = [
    OuroSP,
    OuroSC,
    OuroVAP,
    OuroVAC,
    OuroVLP,
    OuroVLC,
    ScatterAlloc,
    Halloc,
    CudaAllocator,
    XMalloc,
    RegEffC,
    RegEffCF,
    RegEffCM,
    RegEffCFM,
    Atomic,
];

impl ManagerKind {
    /// Label used in CSVs and reports (matches the paper's naming).
    pub fn label(&self) -> &'static str {
        match self {
            Atomic => "Atomic",
            CudaAllocator => "CUDA-Allocator",
            XMalloc => "XMalloc",
            ScatterAlloc => "ScatterAlloc",
            FDGMalloc => "FDGMalloc",
            RegEffC => "Reg-Eff-C",
            RegEffCF => "Reg-Eff-CF",
            RegEffCM => "Reg-Eff-CM",
            RegEffCFM => "Reg-Eff-CFM",
            Halloc => "Halloc",
            OuroSP => "Ouro-S-P",
            OuroSC => "Ouro-S-C",
            OuroVAP => "Ouro-VA-P",
            OuroVAC => "Ouro-VA-C",
            OuroVLP => "Ouro-VL-P",
            OuroVLC => "Ouro-VL-C",
        }
    }

    /// Plot colour (hex), following the consistent colour scheme of
    /// Figure 8 (Ouroboros greens, ScatterAlloc blue, Halloc amber,
    /// CUDA-Allocator grey, XMalloc violet, Reg-Eff reds).
    pub fn color(&self) -> &'static str {
        match self {
            OuroSP => "#1b7837",
            OuroSC => "#5aae61",
            OuroVAP => "#a6dba0",
            OuroVAC => "#00441b",
            OuroVLP => "#238b45",
            OuroVLC => "#74c476",
            ScatterAlloc => "#2166ac",
            Halloc => "#e08214",
            CudaAllocator => "#7f7f7f",
            XMalloc => "#762a83",
            RegEffC => "#b2182b",
            RegEffCF => "#d6604d",
            RegEffCM => "#f4a582",
            RegEffCFM => "#fddbc7",
            FDGMalloc => "#c51b7d",
            Atomic => "#000000",
        }
    }

    /// Whether this kind frees through `free_warp_all` (FDGMalloc).
    pub fn warp_level_only(&self) -> bool {
        matches!(self, FDGMalloc)
    }

    /// The Appendix A.6 selector letter this kind answers to.
    pub fn selector_letter(&self) -> char {
        match self {
            OuroSP | OuroSC | OuroVAP | OuroVAC | OuroVLP | OuroVLC => 'o',
            ScatterAlloc => 's',
            Halloc => 'h',
            CudaAllocator => 'c',
            RegEffC | RegEffCF | RegEffCM | RegEffCFM => 'r',
            XMalloc => 'x',
            FDGMalloc => 'f',
            Atomic => 'a',
        }
    }

    /// Starts a [`ManagerBuilder`] for this kind. This is the *single*
    /// construction path of the framework (the former `create`/`create_on`
    /// shims are gone); defaults are a fresh 64 MiB heap on the
    /// environment-default backend (`GMS_HEAP_BACKEND`, RAM otherwise),
    /// 80 SMs, and metrics disabled.
    pub fn builder(self) -> ManagerBuilder {
        ManagerBuilder {
            kind: self,
            heap: HeapSource::Fresh(HeapSpec::new(DEFAULT_HEAP_BYTES)),
            sms: DEFAULT_SMS,
            metrics: false,
            trace: None,
            cached: false,
            sink: None,
        }
    }

    /// Parses the artifact's selector syntax: letters chained with `+`
    /// (`o` Ouroboros, `s` ScatterAlloc, `h` Halloc, `c` CUDA-Allocator,
    /// `r` Reg-Eff, `x` XMalloc, `f` FDGMalloc, `a` Atomic baseline),
    /// optionally suffixed with a heap backend (`o+s@mmap`).
    pub fn parse_selector(s: &str) -> Result<Vec<ManagerKind>, String> {
        s.parse::<ManagerSelection>().map(|sel| sel.kinds)
    }
}

impl fmt::Display for ManagerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Default heap size for [`ManagerBuilder`]-constructed managers.
pub const DEFAULT_HEAP_BYTES: u64 = 64 << 20;

/// Default SM count for [`ManagerBuilder`]-constructed managers (TITAN V).
pub const DEFAULT_SMS: u32 = 80;

/// Where a builder gets its heap from.
enum HeapSource {
    /// Construct a fresh heap from this spec at `build()`.
    Fresh(HeapSpec),
    /// Reuse an existing heap (e.g. to isolate manager-init cost).
    Shared(Arc<DeviceHeap>),
}

/// Builder-style construction for any manager kind:
///
/// ```
/// use gpumem_bench::registry::ManagerKind;
/// use gpumem_core::DeviceAllocator;
///
/// let alloc = ManagerKind::ScatterAlloc
///     .builder()
///     .heap(128 << 20)
///     .sms(80)
///     .metrics(true)
///     .build();
/// assert!(alloc.metrics().is_enabled());
/// ```
///
/// `metrics(true)` attaches a sharded [`Metrics`] handle (one shard per SM)
/// to the manager — and, for managers that relay oversized requests to an
/// embedded CUDA-allocator model, a relay handle to that model too — so hot
/// loops record contention counters. With `metrics(false)` (the default) the
/// handle is disabled and every recording call is a no-op on a `None` branch.
///
/// `trace(true)` additionally wraps the manager in the event-tracing layer
/// (`gpumem_core::trace`): a per-SM ring [`TraceRecorder`] is attached to
/// the metrics handle and a [`Traced`] wrapper records begin/end events with
/// latency and retry payloads around every entry point. Tracing implies
/// metrics. Retrieve the recorder afterwards with
/// `alloc.metrics().tracer()`.
pub struct ManagerBuilder {
    kind: ManagerKind,
    heap: HeapSource,
    sms: u32,
    metrics: bool,
    /// Ring capacity per SM shard when tracing; `None` = no tracing.
    trace: Option<usize>,
    /// Wrap the manager in the [`Cached`] magazine decorator.
    cached: bool,
    /// Explicit telemetry sink to register the metrics handle with.
    sink: Option<TelemetrySink>,
}

impl ManagerBuilder {
    /// Sizes the fresh heap the manager is built over (default 64 MiB),
    /// keeping any backend/pre-touch choice made so far.
    pub fn heap(mut self, bytes: u64) -> Self {
        self.heap = match self.heap {
            HeapSource::Fresh(spec) => HeapSource::Fresh(HeapSpec { len: bytes, ..spec }),
            HeapSource::Shared(_) => HeapSource::Fresh(HeapSpec::new(bytes)),
        };
        self
    }

    /// Replaces the whole fresh-heap spec: size, backend and pre-touch
    /// policy in one call (the construction currency `Bench` hands around).
    pub fn heap_spec(mut self, spec: HeapSpec) -> Self {
        self.heap = HeapSource::Fresh(spec);
        self
    }

    /// Selects the backing store of the fresh heap (`ram`, `mmap`, `numa`).
    pub fn heap_backend(mut self, backend: HeapBackendKind) -> Self {
        self.heap = match self.heap {
            HeapSource::Fresh(spec) => HeapSource::Fresh(spec.with_backend(backend)),
            HeapSource::Shared(_) => {
                HeapSource::Fresh(HeapSpec::new(DEFAULT_HEAP_BYTES).with_backend(backend))
            }
        };
        self
    }

    /// Selects the page-commit policy of the fresh heap.
    pub fn pretouch(mut self, pretouch: Pretouch) -> Self {
        self.heap = match self.heap {
            HeapSource::Fresh(spec) => HeapSource::Fresh(spec.with_pretouch(pretouch)),
            HeapSource::Shared(_) => {
                HeapSource::Fresh(HeapSpec::new(DEFAULT_HEAP_BYTES).with_pretouch(pretouch))
            }
        };
        self
    }

    /// Builds the manager over an existing heap instead of a fresh one.
    pub fn heap_shared(mut self, heap: Arc<DeviceHeap>) -> Self {
        self.heap = HeapSource::Shared(heap);
        self
    }

    /// Number of SMs the manager scatters over (default 80); also the shard
    /// count of the metrics handle.
    pub fn sms(mut self, num_sms: u32) -> Self {
        self.sms = num_sms;
        self
    }

    /// Enables or disables the contention-observability layer.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    /// Enables or disables the event-tracing layer with the default ring
    /// capacity ([`DEFAULT_EVENTS_PER_SM`] events per SM shard). Tracing
    /// implies metrics.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled.then_some(DEFAULT_EVENTS_PER_SM);
        self
    }

    /// Enables tracing with an explicit per-SM ring capacity.
    pub fn trace_capacity(mut self, events_per_sm: usize) -> Self {
        self.trace = Some(events_per_sm);
        self
    }

    /// Wraps the manager in the [`Cached`] decorator: per-SM size-class
    /// magazines of recently freed blocks serve repeat allocations without
    /// touching the manager's shared metadata, and a warp's uncacheable
    /// frees are batched into one inner publication. For managers without
    /// general free support (warp-level-only FDGMalloc, the monotonic
    /// Atomic baseline) the wrapper is a transparent pass-through. When
    /// tracing is also enabled the wrap order is `Traced<Cached<A>>`, so
    /// latency records measure the cached hot path.
    pub fn cached(mut self, enabled: bool) -> Self {
        self.cached = enabled;
        self
    }

    /// Registers the built manager with a telemetry sink so the live
    /// sampler ([`gpumem_core::telemetry`]) can snapshot its counters and
    /// drain its trace ring. Implies metrics and (if not already chosen) a
    /// modest trace ring sized for sampling rather than post-mortem replay.
    ///
    /// Call sites that cannot reach the builder (matrix scenario bodies
    /// construct managers internally) get the same effect from the
    /// process-global sink: `repro watch` installs one via
    /// [`gpumem_core::telemetry::install_global_sink`], and `try_build`
    /// consults it when no explicit sink was given.
    pub fn telemetry(mut self, sink: &TelemetrySink) -> Self {
        self.sink = Some(sink.clone());
        self
    }

    /// Constructs the manager, panicking on heap-construction failure.
    ///
    /// Thin wrapper over [`ManagerBuilder::try_build`] for tests and call
    /// sites that treat a failed reservation as fatal.
    pub fn build(self) -> Arc<dyn DeviceAllocator> {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Constructs the manager, surfacing heap-construction failure (bad
    /// spec, failed mmap reservation, unavailable backend) as a typed
    /// [`HeapError`] instead of aborting.
    pub fn try_build(self) -> Result<Arc<dyn DeviceAllocator>, HeapError> {
        let heap = match self.heap {
            HeapSource::Fresh(spec) => Arc::new(DeviceHeap::try_new(spec)?),
            HeapSource::Shared(heap) => heap,
        };
        let wrap_cached = |inner: Arc<dyn DeviceAllocator>| -> Arc<dyn DeviceAllocator> {
            if self.cached {
                Arc::new(Cached::new(inner, self.sms))
            } else {
                inner
            }
        };
        // Watch mode: an explicit sink (`.telemetry()`), or the
        // process-global one `repro watch` installs, forces the
        // observability stack on so the sampler has counters to delta and
        // a ring to drain. The global lookup is one mutex lock per
        // *construction* — builds without a sink installed pay a single
        // `None` branch and nothing on any allocation path.
        let sink = self.sink.or_else(telemetry::global_sink);
        let trace = match (&sink, self.trace) {
            (Some(_), None) => Some(telemetry::WATCH_EVENTS_PER_SM),
            (_, chosen) => chosen,
        };
        Ok(match trace {
            Some(events_per_sm) => {
                let rec = Arc::new(TraceRecorder::new(self.sms, events_per_sm));
                let metrics = Metrics::enabled(self.sms).with_tracer(Arc::clone(&rec));
                if let Some(sink) = &sink {
                    sink.attach(&metrics);
                }
                let inner: Arc<dyn DeviceAllocator> =
                    Arc::from(construct(self.kind, heap, self.sms, metrics));
                Arc::new(Traced::new(wrap_cached(inner), rec))
            }
            None => {
                let metrics =
                    if self.metrics { Metrics::enabled(self.sms) } else { Metrics::disabled() };
                wrap_cached(Arc::from(construct(self.kind, heap, self.sms, metrics)))
            }
        })
    }
}

/// The single construction match: every public path funnels through here.
fn construct(
    kind: ManagerKind,
    heap: Arc<DeviceHeap>,
    num_sms: u32,
    metrics: Metrics,
) -> Box<dyn DeviceAllocator> {
    let m = metrics;
    match kind {
        Atomic => Box::new(AtomicAlloc::new(heap).with_metrics(m)),
        CudaAllocator => Box::new(CudaAllocModel::new(heap).with_metrics(m)),
        XMalloc => Box::new(XMalloc::new(heap).with_metrics(m)),
        ScatterAlloc => Box::new(ScatterAlloc::new(heap).with_metrics(m)),
        FDGMalloc => Box::new(FdgMalloc::new(heap).with_metrics(m)),
        RegEffC => Box::new(RegEffC::new(heap, num_sms).with_metrics(m)),
        RegEffCF => Box::new(RegEffCF::new(heap, num_sms).with_metrics(m)),
        RegEffCM => Box::new(RegEffCM::new(heap, num_sms).with_metrics(m)),
        RegEffCFM => Box::new(RegEffCFM::new(heap, num_sms).with_metrics(m)),
        Halloc => Box::new(Halloc::new(heap).with_metrics(m)),
        OuroSP => Box::new(OuroSP::new(heap).with_metrics(m)),
        OuroSC => Box::new(OuroSC::new(heap).with_metrics(m)),
        OuroVAP => Box::new(OuroVAP::new(heap).with_metrics(m)),
        OuroVAC => Box::new(OuroVAC::new(heap).with_metrics(m)),
        OuroVLP => Box::new(OuroVLP::new(heap).with_metrics(m)),
        OuroVLC => Box::new(OuroVLC::new(heap).with_metrics(m)),
    }
}

/// An ordered set of manager kinds selected with the artifact's Appendix A.6
/// syntax (`o+s+h+c+r+x`), optionally qualified with an `@` suffix of
/// `+`-chained modifiers: a heap backend (`o+s@mmap`) and/or the `cached`
/// magazine decorator (`o+s@cached`, `o+s@mmap+cached`). Parsing expands
/// family letters (`o` → all six Ouroboros variants, `r` → all four
/// Reg-Eff variants); displaying compresses back to family letters,
/// deduplicated in first-appearance order, and appends modifiers only when
/// they differ from the defaults. Selections produced by [`FromStr`]
/// round-trip through [`Display`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManagerSelection {
    /// The selected kinds, in selection order.
    pub kinds: Vec<ManagerKind>,
    /// The heap backend every selected manager is built over.
    pub backend: HeapBackendKind,
    /// Whether every selected manager is wrapped in the [`Cached`]
    /// magazine decorator.
    pub cached: bool,
}

impl ManagerSelection {
    /// The paper's default evaluation set over the default backend.
    pub fn default_set() -> Self {
        ManagerSelection {
            kinds: DEFAULT_KINDS.to_vec(),
            backend: HeapBackendKind::default(),
            cached: false,
        }
    }

    /// The selected kinds, in selection order.
    pub fn kinds(&self) -> &[ManagerKind] {
        &self.kinds
    }
}

impl FromStr for ManagerSelection {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (selector, backend, cached) = match s.split_once('@') {
            Some((sel, suffix)) => {
                let mut backend = None;
                let mut cached = false;
                for token in suffix.split('+') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("cached") {
                        cached = true;
                    } else if backend.is_none() {
                        backend = Some(token.parse::<HeapBackendKind>()?);
                    } else {
                        return Err(format!("duplicate heap backend in selector: {token:?}"));
                    }
                }
                (sel, backend.unwrap_or_default(), cached)
            }
            None => (s, HeapBackendKind::default(), false),
        };
        if selector.trim().is_empty() {
            return Err("empty approach selector".to_string());
        }
        let mut kinds = Vec::new();
        for part in selector.split('+') {
            match part.trim().to_ascii_lowercase().as_str() {
                "o" => kinds.extend([OuroSP, OuroSC, OuroVAP, OuroVAC, OuroVLP, OuroVLC]),
                "s" => kinds.push(ScatterAlloc),
                "h" => kinds.push(Halloc),
                "c" => kinds.push(CudaAllocator),
                "r" => kinds.extend([RegEffC, RegEffCF, RegEffCM, RegEffCFM]),
                "x" => kinds.push(XMalloc),
                "f" => kinds.push(FDGMalloc),
                "a" => kinds.push(Atomic),
                other => return Err(format!("unknown approach selector: {other:?}")),
            }
        }
        Ok(ManagerSelection { kinds, backend, cached })
    }
}

impl fmt::Display for ManagerSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut letters = Vec::new();
        for kind in &self.kinds {
            let c = kind.selector_letter();
            if !letters.contains(&c) {
                letters.push(c);
            }
        }
        for (i, c) in letters.iter().enumerate() {
            if i > 0 {
                f.write_str("+")?;
            }
            write!(f, "{c}")?;
        }
        let mut modifiers = Vec::new();
        if self.backend != HeapBackendKind::default() {
            modifiers.push(self.backend.to_string());
        }
        if self.cached {
            modifiers.push("cached".to_string());
        }
        if !modifiers.is_empty() {
            write!(f, "@{}", modifiers.join("+"))?;
        }
        Ok(())
    }
}

/// Creates the default evaluation set over per-manager heaps.
pub fn all_managers(heap_bytes: u64, num_sms: u32) -> Vec<(ManagerKind, Arc<dyn DeviceAllocator>)> {
    DEFAULT_KINDS.iter().map(|k| (*k, k.builder().heap(heap_bytes).sms(num_sms).build())).collect()
}

/// Creates one manager by kind (facade convenience).
pub fn create_manager(kind: ManagerKind, heap_bytes: u64) -> Arc<dyn DeviceAllocator> {
    kind.builder().heap(heap_bytes).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::ThreadCtx;

    const HEAP: u64 = 16 << 20;

    #[test]
    fn every_kind_constructs_and_allocates() {
        for kind in ALL_KINDS {
            let a = kind.builder().heap(HEAP).sms(80).build();
            assert_eq!(a.info().label(), kind.label().replace("Ouro-", "Ouroboros-"));
            let p = a.malloc(&ThreadCtx::host(), 64).unwrap();
            assert!(p.offset() + 64 <= HEAP, "{}", kind.label());
        }
    }

    #[test]
    fn builder_defaults_leave_metrics_disabled() {
        for kind in ALL_KINDS {
            let a = kind.builder().heap(HEAP).build();
            assert!(!a.metrics().is_enabled(), "{kind}");
            let b = kind.builder().heap(HEAP).metrics(true).build();
            assert!(b.metrics().is_enabled(), "{kind}");
        }
    }

    #[test]
    fn builder_shared_heap_reuses_backing_store() {
        let heap = Arc::new(DeviceHeap::new(HEAP));
        let a = ScatterAlloc.builder().heap_shared(Arc::clone(&heap)).build();
        // The builder must not allocate a second heap: three Arcs exist —
        // ours, the allocator's, and ScatterAlloc's internal page directory
        // does not clone the Arc again here, so strong_count >= 2.
        assert!(Arc::strong_count(&heap) >= 2);
        a.malloc(&ThreadCtx::host(), 64).unwrap();
    }

    #[test]
    fn builder_heap_spec_and_backend_thread_through() {
        let spec = HeapSpec::ram(HEAP).with_pretouch(Pretouch::Full);
        let a = Atomic.builder().heap_spec(spec).build();
        a.malloc(&ThreadCtx::host(), 64).unwrap();

        // heap() after heap_backend() keeps the chosen backend.
        let b = Atomic.builder().heap_backend(HeapBackendKind::Ram).heap(HEAP).build();
        b.malloc(&ThreadCtx::host(), 64).unwrap();
    }

    #[test]
    fn try_build_surfaces_heap_errors() {
        let err = match Atomic.builder().heap(100).try_build() {
            Err(e) => e,
            Ok(_) => panic!("len 100 must be rejected"),
        };
        assert!(matches!(err, HeapError::InvalidLen { .. }), "{err}");
        assert!(err.to_string().contains("multiple of 128"));
    }

    #[test]
    fn try_build_succeeds_on_every_available_backend() {
        for backend in HeapBackendKind::ALL {
            if !backend.available() {
                continue;
            }
            let a = Atomic
                .builder()
                .heap(HEAP)
                .heap_backend(backend)
                .pretouch(Pretouch::Auto)
                .try_build()
                .unwrap_or_else(|e| panic!("{backend}: {e}"));
            a.malloc(&ThreadCtx::host(), 64).unwrap();
        }
    }

    #[test]
    fn selector_parses_paper_syntax() {
        let kinds = ManagerKind::parse_selector("o+s+h+c+r+x").unwrap();
        assert_eq!(kinds.len(), 6 + 1 + 1 + 1 + 4 + 1);
        assert!(kinds.contains(&OuroVLC));
        assert!(kinds.contains(&RegEffCFM));
        assert!(!kinds.contains(&FDGMalloc));
        assert!(ManagerKind::parse_selector("q").is_err());
        assert_eq!(ManagerKind::parse_selector("f+a").unwrap(), vec![FDGMalloc, Atomic]);
    }

    #[test]
    fn selection_round_trips_through_display() {
        for s in ["o+s+h+c+r+x", "f+a", "s", "o", "x+c", "o+s@mmap", "f@numa", "r+x@mmap"] {
            let sel: ManagerSelection = s.parse().unwrap();
            assert_eq!(sel.to_string(), s, "display of {s:?}");
            let again: ManagerSelection = sel.to_string().parse().unwrap();
            assert_eq!(again, sel, "round-trip of {s:?}");
        }
    }

    #[test]
    fn selection_backend_suffix_parses() {
        let sel: ManagerSelection = "o+s@mmap".parse().unwrap();
        assert_eq!(sel.backend, HeapBackendKind::Mmap);
        assert_eq!(sel.kinds.len(), 7);
        // No suffix → RAM default, and Display omits it.
        let plain: ManagerSelection = "o+s".parse().unwrap();
        assert_eq!(plain.backend, HeapBackendKind::Ram);
        assert_eq!(plain.to_string(), "o+s");
        // Whitespace-tolerant around the suffix too.
        let sel: ManagerSelection = " f @ ram ".parse().unwrap();
        assert_eq!(sel.backend, HeapBackendKind::Ram);
    }

    #[test]
    fn selection_rejects_bad_input() {
        assert!("".parse::<ManagerSelection>().is_err());
        assert!("  ".parse::<ManagerSelection>().is_err());
        assert!("o+q".parse::<ManagerSelection>().is_err());
        assert!("os".parse::<ManagerSelection>().is_err());
        assert!("o++s".parse::<ManagerSelection>().is_err());
        assert!("o+s@disk".parse::<ManagerSelection>().is_err());
        assert!("@mmap".parse::<ManagerSelection>().is_err());
        // Case-insensitive and whitespace-tolerant on valid letters.
        let sel: ManagerSelection = " O + S ".parse().unwrap();
        assert_eq!(sel.to_string(), "o+s");
    }

    #[test]
    fn kind_display_matches_label() {
        for kind in ALL_KINDS {
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn labels_and_colors_are_unique() {
        let labels: std::collections::HashSet<_> = ALL_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ALL_KINDS.len());
        let colors: std::collections::HashSet<_> = ALL_KINDS.iter().map(|k| k.color()).collect();
        assert_eq!(colors.len(), ALL_KINDS.len());
    }

    #[test]
    fn builder_trace_attaches_recorder_and_records() {
        use gpumem_core::trace::EventKind;
        let a = ScatterAlloc.builder().heap(HEAP).trace(true).build();
        let m = a.metrics();
        assert!(m.is_enabled(), "tracing implies metrics");
        let rec = Arc::clone(m.tracer().expect("tracer attached"));
        assert_eq!(rec.recorded(), 0);
        let p = a.malloc(&ThreadCtx::host(), 64).unwrap();
        a.free(&ThreadCtx::host(), p).unwrap();
        let t = rec.snapshot();
        assert_eq!(t.count(EventKind::MallocBegin), 1);
        assert_eq!(t.count(EventKind::MallocEnd), 1);
        assert_eq!(t.count(EventKind::FreeBegin), 1);
        assert_eq!(t.count(EventKind::FreeEnd), 1);
        assert_eq!(
            t.events.iter().find(|e| e.kind == EventKind::MallocEnd).unwrap().args[0],
            p.raw()
        );
    }

    #[test]
    fn builder_without_trace_has_no_recorder() {
        for kind in [ScatterAlloc, Atomic] {
            let a = kind.builder().heap(HEAP).build();
            assert!(a.metrics().tracer().is_none(), "{kind}");
            let b = kind.builder().heap(HEAP).metrics(true).build();
            assert!(b.metrics().tracer().is_none(), "{kind}");
        }
    }

    #[test]
    fn builder_cached_wraps_every_kind() {
        for kind in ALL_KINDS {
            let a = kind.builder().heap(HEAP).cached(true).build();
            // info() forwards through the decorator unchanged.
            assert_eq!(a.info().label(), kind.label().replace("Ouro-", "Ouroboros-"), "{kind}");
            let ctx = ThreadCtx::host();
            let p = a.malloc(&ctx, 64).unwrap();
            if a.info().supports_free {
                a.free(&ctx, p).unwrap();
                let q = a.malloc(&ctx, 64).unwrap();
                assert_eq!(q, p, "{kind}: repeat allocation must hit the magazine");
            }
        }
    }

    #[test]
    fn builder_cached_with_trace_records_hot_path() {
        use gpumem_core::trace::EventKind;
        let a = ScatterAlloc.builder().heap(HEAP).cached(true).trace(true).build();
        let ctx = ThreadCtx::host();
        let p = a.malloc(&ctx, 64).unwrap();
        a.free(&ctx, p).unwrap();
        let _ = a.malloc(&ctx, 64).unwrap();
        let m = a.metrics();
        assert_eq!(m.snapshot().magazine_hits(), 1);
        let t = m.tracer().expect("tracer attached").snapshot();
        assert_eq!(t.count(EventKind::CacheHit), 1, "hit event lands in the shared trace");
        assert_eq!(t.count(EventKind::MallocEnd), 2, "Traced wraps outside Cached");
    }

    #[test]
    fn selection_cached_modifier_parses_and_round_trips() {
        for s in ["o+s@cached", "s@mmap+cached", "f+a@cached", "o@numa+cached"] {
            let sel: ManagerSelection = s.parse().unwrap();
            assert!(sel.cached, "{s}");
            assert_eq!(sel.to_string(), s, "display of {s:?}");
        }
        let sel: ManagerSelection = "s@CACHED".parse().unwrap();
        assert!(sel.cached);
        let plain: ManagerSelection = "o+s".parse().unwrap();
        assert!(!plain.cached);
        // Backend order is canonicalized backend-first on display.
        let sel: ManagerSelection = "s@cached+mmap".parse().unwrap();
        assert_eq!(sel.backend, HeapBackendKind::Mmap);
        assert_eq!(sel.to_string(), "s@mmap+cached");
        assert!("s@mmap+ram".parse::<ManagerSelection>().is_err(), "two backends");
    }

    #[test]
    fn default_set_excludes_fdg() {
        assert!(!DEFAULT_KINDS.contains(&FDGMalloc));
        assert_eq!(DEFAULT_KINDS.len(), 15);
    }
}
