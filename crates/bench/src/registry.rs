//! The manager registry — "switch between them for benchmarking purposes".
//!
//! Mirrors the artifact's selection syntax: each approach is picked by the
//! first letter of its name and chained with `+` (`-t o+s+h+c+r+x`,
//! Appendix A.6). Every kind constructs through one call, so any test case
//! can run against any manager.

use std::sync::Arc;

use alloc_atomic::AtomicAlloc;
use alloc_cuda::CudaAllocModel;
use alloc_fdg::FdgMalloc;
use alloc_halloc::Halloc;
use alloc_ouroboros::{OuroSC, OuroSP, OuroVAC, OuroVAP, OuroVLC, OuroVLP};
use alloc_regeff::{RegEffC, RegEffCF, RegEffCFM, RegEffCM};
use alloc_scatter::ScatterAlloc;
use alloc_xmalloc::XMalloc;
use gpumem_core::{DeviceAllocator, DeviceHeap};

/// Every manager variant the framework can instantiate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ManagerKind {
    Atomic,
    CudaAllocator,
    XMalloc,
    ScatterAlloc,
    FDGMalloc,
    RegEffC,
    RegEffCF,
    RegEffCM,
    RegEffCFM,
    Halloc,
    OuroSP,
    OuroSC,
    OuroVAP,
    OuroVAC,
    OuroVLP,
    OuroVLC,
}

use ManagerKind::*;

/// All kinds, in the paper's Figure 8 plot order.
pub const ALL_KINDS: [ManagerKind; 16] = [
    OuroSP, OuroSC, OuroVAP, OuroVAC, OuroVLP, OuroVLC, ScatterAlloc, Halloc,
    CudaAllocator, XMalloc, RegEffC, RegEffCF, RegEffCM, RegEffCFM, FDGMalloc, Atomic,
];

/// The default evaluation set: the paper's `-t o+s+h+c+r+x` plus the Atomic
/// baseline (FDGMalloc is opt-in, as in the paper's final evaluation).
pub const DEFAULT_KINDS: [ManagerKind; 15] = [
    OuroSP, OuroSC, OuroVAP, OuroVAC, OuroVLP, OuroVLC, ScatterAlloc, Halloc,
    CudaAllocator, XMalloc, RegEffC, RegEffCF, RegEffCM, RegEffCFM, Atomic,
];

impl ManagerKind {
    /// Label used in CSVs and reports (matches the paper's naming).
    pub fn label(&self) -> &'static str {
        match self {
            Atomic => "Atomic",
            CudaAllocator => "CUDA-Allocator",
            XMalloc => "XMalloc",
            ScatterAlloc => "ScatterAlloc",
            FDGMalloc => "FDGMalloc",
            RegEffC => "Reg-Eff-C",
            RegEffCF => "Reg-Eff-CF",
            RegEffCM => "Reg-Eff-CM",
            RegEffCFM => "Reg-Eff-CFM",
            Halloc => "Halloc",
            OuroSP => "Ouro-S-P",
            OuroSC => "Ouro-S-C",
            OuroVAP => "Ouro-VA-P",
            OuroVAC => "Ouro-VA-C",
            OuroVLP => "Ouro-VL-P",
            OuroVLC => "Ouro-VL-C",
        }
    }

    /// Plot colour (hex), following the consistent colour scheme of
    /// Figure 8 (Ouroboros greens, ScatterAlloc blue, Halloc amber,
    /// CUDA-Allocator grey, XMalloc violet, Reg-Eff reds).
    pub fn color(&self) -> &'static str {
        match self {
            OuroSP => "#1b7837",
            OuroSC => "#5aae61",
            OuroVAP => "#a6dba0",
            OuroVAC => "#00441b",
            OuroVLP => "#238b45",
            OuroVLC => "#74c476",
            ScatterAlloc => "#2166ac",
            Halloc => "#e08214",
            CudaAllocator => "#7f7f7f",
            XMalloc => "#762a83",
            RegEffC => "#b2182b",
            RegEffCF => "#d6604d",
            RegEffCM => "#f4a582",
            RegEffCFM => "#fddbc7",
            FDGMalloc => "#c51b7d",
            Atomic => "#000000",
        }
    }

    /// Whether this kind frees through `free_warp_all` (FDGMalloc).
    pub fn warp_level_only(&self) -> bool {
        matches!(self, FDGMalloc)
    }

    /// Instantiates the manager over a fresh heap of `heap_bytes`
    /// (`num_sms` feeds the SM-scattering variants).
    pub fn create(&self, heap_bytes: u64, num_sms: u32) -> Box<dyn DeviceAllocator> {
        let heap = Arc::new(DeviceHeap::new(heap_bytes));
        self.create_on(heap, num_sms)
    }

    /// Instantiates the manager over an existing heap.
    pub fn create_on(
        &self,
        heap: Arc<DeviceHeap>,
        num_sms: u32,
    ) -> Box<dyn DeviceAllocator> {
        match self {
            Atomic => Box::new(AtomicAlloc::new(heap)),
            CudaAllocator => Box::new(CudaAllocModel::new(heap)),
            XMalloc => Box::new(XMalloc::new(heap)),
            ScatterAlloc => Box::new(ScatterAlloc::new(heap)),
            FDGMalloc => Box::new(FdgMalloc::new(heap)),
            RegEffC => Box::new(RegEffC::new(heap, num_sms)),
            RegEffCF => Box::new(RegEffCF::new(heap, num_sms)),
            RegEffCM => Box::new(RegEffCM::new(heap, num_sms)),
            RegEffCFM => Box::new(RegEffCFM::new(heap, num_sms)),
            Halloc => Box::new(Halloc::new(heap)),
            OuroSP => Box::new(OuroSP::new(heap)),
            OuroSC => Box::new(OuroSC::new(heap)),
            OuroVAP => Box::new(OuroVAP::new(heap)),
            OuroVAC => Box::new(OuroVAC::new(heap)),
            OuroVLP => Box::new(OuroVLP::new(heap)),
            OuroVLC => Box::new(OuroVLC::new(heap)),
        }
    }

    /// Parses the artifact's selector syntax: letters chained with `+`
    /// (`o` Ouroboros, `s` ScatterAlloc, `h` Halloc, `c` CUDA-Allocator,
    /// `r` Reg-Eff, `x` XMalloc, `f` FDGMalloc, `a` Atomic baseline).
    pub fn parse_selector(s: &str) -> Result<Vec<ManagerKind>, String> {
        let mut kinds = Vec::new();
        for part in s.split('+') {
            match part.trim().to_ascii_lowercase().as_str() {
                "o" => kinds.extend([OuroSP, OuroSC, OuroVAP, OuroVAC, OuroVLP, OuroVLC]),
                "s" => kinds.push(ScatterAlloc),
                "h" => kinds.push(Halloc),
                "c" => kinds.push(CudaAllocator),
                "r" => kinds.extend([RegEffC, RegEffCF, RegEffCM, RegEffCFM]),
                "x" => kinds.push(XMalloc),
                "f" => kinds.push(FDGMalloc),
                "a" => kinds.push(Atomic),
                other => return Err(format!("unknown approach selector: {other:?}")),
            }
        }
        Ok(kinds)
    }
}

/// Creates the default evaluation set over per-manager heaps.
pub fn all_managers(heap_bytes: u64, num_sms: u32) -> Vec<(ManagerKind, Box<dyn DeviceAllocator>)> {
    DEFAULT_KINDS
        .iter()
        .map(|k| (*k, k.create(heap_bytes, num_sms)))
        .collect()
}

/// Creates one manager by kind (facade convenience).
pub fn create_manager(kind: ManagerKind, heap_bytes: u64) -> Box<dyn DeviceAllocator> {
    kind.create(heap_bytes, 80)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpumem_core::ThreadCtx;

    const HEAP: u64 = 16 << 20;

    #[test]
    fn every_kind_constructs_and_allocates() {
        for kind in ALL_KINDS {
            let a = kind.create(HEAP, 80);
            assert_eq!(a.info().label(), kind.label().replace("Ouro-", "Ouroboros-"));
            let p = a.malloc(&ThreadCtx::host(), 64).unwrap();
            assert!(p.offset() + 64 <= HEAP, "{}", kind.label());
        }
    }

    #[test]
    fn selector_parses_paper_syntax() {
        let kinds = ManagerKind::parse_selector("o+s+h+c+r+x").unwrap();
        assert_eq!(kinds.len(), 6 + 1 + 1 + 1 + 4 + 1);
        assert!(kinds.contains(&OuroVLC));
        assert!(kinds.contains(&RegEffCFM));
        assert!(!kinds.contains(&FDGMalloc));
        assert!(ManagerKind::parse_selector("q").is_err());
        assert_eq!(ManagerKind::parse_selector("f+a").unwrap(), vec![FDGMalloc, Atomic]);
    }

    #[test]
    fn labels_and_colors_are_unique() {
        let labels: std::collections::HashSet<_> =
            ALL_KINDS.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), ALL_KINDS.len());
        let colors: std::collections::HashSet<_> =
            ALL_KINDS.iter().map(|k| k.color()).collect();
        assert_eq!(colors.len(), ALL_KINDS.len());
    }

    #[test]
    fn default_set_excludes_fdg() {
        assert!(!DEFAULT_KINDS.contains(&FDGMalloc));
        assert_eq!(DEFAULT_KINDS.len(), 15);
    }
}
