//! Committed benchmark anchors — `BENCH_<scenario>.json`.
//!
//! One anchor per matrix scenario: a schema-versioned JSON document holding
//! the scenario's metric vector plus a provenance stamp (git revision,
//! device, worker config, seed, heap backend, tier). Anchors are committed
//! to the repository root and compared by `repro gate` (see [`crate::gate`])
//! so a PR cannot silently regress a hot path the matrix covers.
//!
//! The workspace has no crates.io dependencies, so the JSON reader/writer is
//! hand-rolled: a small recursive-descent parser over a [`Json`] value tree,
//! and a renderer that emits metrics in insertion order so regenerated
//! anchors diff cleanly. `Anchor::parse(anchor.render())` round-trips
//! exactly (Rust's float formatting is shortest-round-trip).

use std::fmt;
use std::path::{Path, PathBuf};

/// Current anchor schema version. Version 1 was the ad-hoc
/// `BENCH_exec.json` layout (no provenance, no metric classes); version 2
/// was the matrix layout. Version 3 keeps the same document shape but marks
/// the magazine-cache generation: the latency scenario covers every default
/// family (with `free_p99_ns` emitted only where the free path runs), and
/// the cached twin scenarios (`perf_thread_cached`, `mixed_cached`) exist —
/// a v2 anchor set would gate-pass while silently missing them. The gate
/// refuses to compare across versions.
pub const SCHEMA_VERSION: u32 = 3;

/// How the gate prices a drift in one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Wall-clock-derived, higher is better (throughput). Gated with the
    /// scenario's `time_pct` tolerance.
    TimeHi,
    /// Wall-clock-derived, lower is better (latency). Gated with `time_pct`.
    TimeLo,
    /// Deterministic-model output, higher is better (heap utilization).
    /// Gated with the tighter `model_pct` tolerance.
    ModelHi,
    /// Deterministic-model output, lower is better (coalescing cost,
    /// fragmentation expansion). Gated with `model_pct`.
    ModelLo,
    /// Must match the anchor exactly (failure counts, flags).
    Exact,
}

impl MetricClass {
    pub fn as_str(&self) -> &'static str {
        match self {
            MetricClass::TimeHi => "time_hi",
            MetricClass::TimeLo => "time_lo",
            MetricClass::ModelHi => "model_hi",
            MetricClass::ModelLo => "model_lo",
            MetricClass::Exact => "exact",
        }
    }

    /// Whether a larger value is an improvement for this class.
    pub fn higher_is_better(&self) -> bool {
        matches!(self, MetricClass::TimeHi | MetricClass::ModelHi)
    }
}

impl std::str::FromStr for MetricClass {
    type Err = ();

    fn from_str(s: &str) -> Result<MetricClass, ()> {
        Ok(match s {
            "time_hi" => MetricClass::TimeHi,
            "time_lo" => MetricClass::TimeLo,
            "model_hi" => MetricClass::ModelHi,
            "model_lo" => MetricClass::ModelLo,
            "exact" => MetricClass::Exact,
            _ => return Err(()),
        })
    }
}

impl fmt::Display for MetricClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One gated quantity: a key like `ScatterAlloc/s16/alloc_mops`, its value,
/// and the class that tells the gate which tolerance and direction apply.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    pub key: String,
    pub value: f64,
    pub class: MetricClass,
}

impl Metric {
    pub fn new(key: impl Into<String>, value: f64, class: MetricClass) -> Metric {
        Metric { key: key.into(), value, class }
    }

    pub fn time_hi(key: impl Into<String>, value: f64) -> Metric {
        Metric::new(key, value, MetricClass::TimeHi)
    }

    pub fn time_lo(key: impl Into<String>, value: f64) -> Metric {
        Metric::new(key, value, MetricClass::TimeLo)
    }

    pub fn model_hi(key: impl Into<String>, value: f64) -> Metric {
        Metric::new(key, value, MetricClass::ModelHi)
    }

    pub fn model_lo(key: impl Into<String>, value: f64) -> Metric {
        Metric::new(key, value, MetricClass::ModelLo)
    }

    pub fn exact(key: impl Into<String>, value: f64) -> Metric {
        Metric::new(key, value, MetricClass::Exact)
    }
}

/// A parsed (or about-to-be-written) anchor document.
#[derive(Clone, Debug, PartialEq)]
pub struct Anchor {
    pub schema: u32,
    /// Scenario name — also names the file (`BENCH_<scenario>.json`).
    pub scenario: String,
    /// `smoke` or `full`; the gate refuses cross-tier comparisons.
    pub tier: String,
    /// Stamp describing the run: git revision, device, workers, seed,
    /// heap backend, pre-touch policy. Insertion-ordered.
    pub provenance: Vec<(String, String)>,
    pub metrics: Vec<Metric>,
}

/// Typed anchor failures — parse errors, schema drift, malformed metrics.
#[derive(Clone, Debug, PartialEq)]
pub enum AnchorError {
    Json { offset: usize, reason: String },
    MissingField(&'static str),
    BadField { field: &'static str, reason: String },
    SchemaMismatch { found: u32, expected: u32 },
}

impl fmt::Display for AnchorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnchorError::Json { offset, reason } => {
                write!(f, "invalid JSON at byte {offset}: {reason}")
            }
            AnchorError::MissingField(field) => write!(f, "anchor is missing field {field:?}"),
            AnchorError::BadField { field, reason } => {
                write!(f, "anchor field {field:?} is malformed: {reason}")
            }
            AnchorError::SchemaMismatch { found, expected } => write!(
                f,
                "anchor schema version {found} does not match this binary's version {expected} \
                 — regenerate with `repro matrix`"
            ),
        }
    }
}

impl std::error::Error for AnchorError {}

impl Anchor {
    /// The file an anchor for `scenario` lives in, under `dir`.
    pub fn path_for(dir: &Path, scenario: &str) -> PathBuf {
        dir.join(format!("BENCH_{scenario}.json"))
    }

    /// Looks a metric up by key.
    pub fn metric(&self, key: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.key == key)
    }

    /// One provenance value by key.
    pub fn provenance_value(&self, key: &str) -> Option<&str> {
        self.provenance.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Renders the anchor as pretty JSON, metrics in insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", self.schema));
        out.push_str(&format!("  \"scenario\": {},\n", quote(&self.scenario)));
        out.push_str(&format!("  \"tier\": {},\n", quote(&self.tier)));
        out.push_str("  \"provenance\": {\n");
        for (i, (k, v)) in self.provenance.iter().enumerate() {
            let sep = if i + 1 == self.provenance.len() { "" } else { "," };
            out.push_str(&format!("    {}: {}{sep}\n", quote(k), quote(v)));
        }
        out.push_str("  },\n");
        out.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let sep = if i + 1 == self.metrics.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{ \"key\": {}, \"value\": {}, \"class\": {} }}{sep}\n",
                quote(&m.key),
                render_number(m.value),
                quote(m.class.as_str()),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses an anchor document, validating the schema version.
    pub fn parse(text: &str) -> Result<Anchor, AnchorError> {
        let value =
            Json::parse(text).map_err(|(offset, reason)| AnchorError::Json { offset, reason })?;
        let obj = value.as_object().ok_or(AnchorError::MissingField("<root object>"))?;
        let schema = field(obj, "schema")?
            .as_number()
            .ok_or(AnchorError::BadField { field: "schema", reason: "not a number".into() })?
            as u32;
        if schema != SCHEMA_VERSION {
            return Err(AnchorError::SchemaMismatch { found: schema, expected: SCHEMA_VERSION });
        }
        let scenario = string_field(obj, "scenario")?;
        let tier = string_field(obj, "tier")?;
        let provenance = field(obj, "provenance")?
            .as_object()
            .ok_or(AnchorError::BadField { field: "provenance", reason: "not an object".into() })?
            .iter()
            .map(|(k, v)| {
                v.as_string().map(|s| (k.clone(), s.to_string())).ok_or(AnchorError::BadField {
                    field: "provenance",
                    reason: format!("value of {k:?} is not a string"),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let raw_metrics = field(obj, "metrics")?
            .as_array()
            .ok_or(AnchorError::BadField { field: "metrics", reason: "not an array".into() })?;
        let mut metrics = Vec::with_capacity(raw_metrics.len());
        for m in raw_metrics {
            let mo = m.as_object().ok_or(AnchorError::BadField {
                field: "metrics",
                reason: "entry is not an object".into(),
            })?;
            let key = string_field(mo, "key").map_err(|_| AnchorError::BadField {
                field: "metrics",
                reason: "entry lacks a string \"key\"".into(),
            })?;
            let value = field(mo, "value")?.as_number().ok_or_else(|| AnchorError::BadField {
                field: "metrics",
                reason: format!("{key:?} has a non-numeric value"),
            })?;
            let class_name = string_field(mo, "class").map_err(|_| AnchorError::BadField {
                field: "metrics",
                reason: format!("{key:?} lacks a string \"class\""),
            })?;
            let class = class_name.parse().map_err(|()| AnchorError::BadField {
                field: "metrics",
                reason: format!("{key:?} has unknown class {class_name:?}"),
            })?;
            metrics.push(Metric { key, value, class });
        }
        Ok(Anchor { schema, scenario, tier, provenance, metrics })
    }
}

fn field<'a>(obj: &'a [(String, Json)], name: &'static str) -> Result<&'a Json, AnchorError> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v).ok_or(AnchorError::MissingField(name))
}

fn string_field(obj: &[(String, Json)], name: &'static str) -> Result<String, AnchorError> {
    field(obj, name)?
        .as_string()
        .map(str::to_string)
        .ok_or(AnchorError::BadField { field: name, reason: "not a string".into() })
}

/// Formats a metric value so `parse(render(v)) == v` bit-exactly: Rust's
/// `{}` float formatting is shortest-round-trip; non-finite values render as
/// the lenient tokens the parser also accepts (they never come out of
/// `repro matrix`, which rejects non-finite metrics, but a hand-edited
/// anchor must survive the round trip so the gate can flag it).
fn render_number(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 {
            "Infinity".to_string()
        } else {
            "-Infinity".to_string()
        }
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value. Objects keep insertion order (anchors are rendered
/// and diffed as text, so order stability matters).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_string(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed, nothing else).
    /// Accepts the lenient `NaN`/`Infinity`/`-Infinity` tokens so the gate
    /// can load — and then reject — a damaged anchor instead of refusing to
    /// read it at all.
    pub fn parse(text: &str) -> Result<Json, (usize, String)> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err((pos, "trailing content after JSON document".into()));
        }
        Ok(value)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err((*pos, "unexpected end of input".into())),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::String(parse_string(b, pos)?)),
        Some(b't') => parse_token(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_token(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_token(b, pos, "null", Json::Null),
        Some(b'N') => parse_token(b, pos, "NaN", Json::Number(f64::NAN)),
        Some(b'I') => parse_token(b, pos, "Infinity", Json::Number(f64::INFINITY)),
        Some(b'-') if b.get(*pos + 1) == Some(&b'I') => {
            *pos += 1;
            parse_token(b, pos, "Infinity", Json::Number(f64::NEG_INFINITY))
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err((*pos, format!("unexpected byte {:?}", *c as char))),
    }
}

fn parse_token(b: &[u8], pos: &mut usize, tok: &str, v: Json) -> Result<Json, (usize, String)> {
    if b[*pos..].starts_with(tok.as_bytes()) {
        *pos += tok.len();
        Ok(v)
    } else {
        Err((*pos, format!("expected {tok:?}")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| (start, "bad utf8".to_string()))?;
    text.parse::<f64>().map(Json::Number).map_err(|e| (start, format!("bad number: {e}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, (usize, String)> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err((*pos, "unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or((*pos, "truncated \\u escape".to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| (*pos, format!("bad \\u escape {hex:?}")))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err((*pos, format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| (*pos, "bad utf8 in string".to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    debug_assert_eq!(b[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err((*pos, "expected ',' or ']'".into())),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, (usize, String)> {
    debug_assert_eq!(b[*pos], b'{');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(items));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err((*pos, "expected string key".into()));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err((*pos, "expected ':'".into()));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        items.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(items));
            }
            _ => return Err((*pos, "expected ',' or '}'".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Anchor {
        Anchor {
            schema: SCHEMA_VERSION,
            scenario: "perf_thread".into(),
            tier: "smoke".into(),
            provenance: vec![
                ("git".into(), "abc123".into()),
                ("device".into(), "TITANV".into()),
                ("seed".into(), "0x5eed".into()),
            ],
            metrics: vec![
                Metric::time_hi("ScatterAlloc/s16/alloc_mops", 1.25),
                Metric::exact("ScatterAlloc/s16/failures", 0.0),
                Metric::model_lo("ScatterAlloc/s16/expansion", 1.0),
            ],
        }
    }

    #[test]
    fn render_parse_round_trip_is_exact() {
        let a = sample();
        let text = a.render();
        let b = Anchor::parse(&text).unwrap();
        assert_eq!(a, b);
        // Text-level stability: render(parse(render(x))) == render(x).
        assert_eq!(b.render(), text);
    }

    #[test]
    fn parse_rejects_schema_drift() {
        let text =
            sample().render().replace(&format!("\"schema\": {SCHEMA_VERSION}"), "\"schema\": 1");
        match Anchor::parse(&text) {
            Err(AnchorError::SchemaMismatch { found: 1, expected }) => {
                assert_eq!(expected, SCHEMA_VERSION)
            }
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_missing_fields_and_bad_classes() {
        assert!(matches!(Anchor::parse("{}"), Err(AnchorError::MissingField("schema"))));
        let bad_class = sample().render().replace("\"time_hi\"", "\"warp_speed\"");
        assert!(matches!(Anchor::parse(&bad_class), Err(AnchorError::BadField { .. })));
        assert!(matches!(Anchor::parse("not json"), Err(AnchorError::Json { .. })));
    }

    #[test]
    fn non_finite_values_survive_the_round_trip() {
        let mut a = sample();
        a.metrics[0].value = f64::NAN;
        a.metrics[2].value = f64::INFINITY;
        let b = Anchor::parse(&a.render()).unwrap();
        assert!(b.metrics[0].value.is_nan());
        assert_eq!(b.metrics[2].value, f64::INFINITY);
    }

    #[test]
    fn integral_values_render_with_a_decimal_point() {
        let mut a = sample();
        a.metrics[0].value = 7_643_670.0;
        assert!(a.render().contains("\"value\": 7643670.0"));
        assert_eq!(Anchor::parse(&a.render()).unwrap().metrics[0].value, 7_643_670.0);
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\"y\n"}, "d": null}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].1.as_array().unwrap()[2].as_number().unwrap(), -300.0);
        let inner = obj[1].1.as_object().unwrap();
        assert_eq!(inner[0].1.as_string().unwrap(), "x\"y\n");
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn metric_lookup_by_key() {
        let a = sample();
        assert_eq!(a.metric("ScatterAlloc/s16/alloc_mops").unwrap().value, 1.25);
        assert!(a.metric("nope").is_none());
        assert_eq!(a.provenance_value("git"), Some("abc123"));
    }
}
