//! The regression gate — compares a fresh matrix run against committed
//! `BENCH_<scenario>.json` anchors and fails on drift beyond the
//! per-scenario tolerances in `gates.toml`.
//!
//! Comparison rules, per metric class (see [`MetricClass`]):
//!
//! * `time_hi`/`time_lo` — wall-clock metrics (throughput, latency
//!   percentiles). A regression beyond the scenario's `time_pct` fails:
//!   throughput dropping below `anchor × (1 − pct/100)`, or latency rising
//!   above `anchor × (1 + pct/100)`. Improvements never fail (they print a
//!   re-baseline hint).
//! * `model_hi`/`model_lo` — outputs of deterministic models (heap
//!   utilization, coalescing cost, fragmentation expansion). Same rule with
//!   the tighter `model_pct`.
//! * `exact` — failure counts and structural flags; any difference fails.
//!
//! Guards: a non-finite value on either side fails, and an anchor whose
//! higher-is-better metric is ≤ 0 (a zero-throughput anchor) fails loudly —
//! dividing by it would otherwise turn every comparison into a vacuous pass
//! or an infinite regression.

use std::collections::BTreeMap;
use std::fmt;

use crate::anchor::{Anchor, Metric, MetricClass};

/// Tolerances for one scenario, in percent.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tolerances {
    /// Allowed drift for `time_*` metrics (regression direction only).
    pub time_pct: f64,
    /// Allowed drift for `model_*` metrics.
    pub model_pct: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances { time_pct: 60.0, model_pct: 25.0 }
    }
}

/// Parsed `gates.toml`: a `[default]` section, per-scenario overrides
/// (`[latency]`), and per-family overrides within a scenario
/// (`[latency.CUDA-Allocator]`) — the family is the metric-key prefix
/// before the first `/`, i.e. the manager label.
#[derive(Clone, Debug, Default)]
pub struct Gates {
    pub default: Tolerances,
    pub per_scenario: BTreeMap<String, Tolerances>,
}

impl Gates {
    /// Effective tolerances for `scenario` (override or default).
    pub fn tolerances(&self, scenario: &str) -> Tolerances {
        self.per_scenario.get(scenario).copied().unwrap_or(self.default)
    }

    /// Effective tolerances for one metric of `scenario`: the most specific
    /// of `[scenario.family]`, `[scenario]`, `[default]`, where the family
    /// is `metric_key` up to its first `/` (the manager label in every
    /// matrix scenario's `{manager}/{cell}/{measure}` key scheme).
    pub fn tolerances_for(&self, scenario: &str, metric_key: &str) -> Tolerances {
        let family = metric_key.split('/').next().unwrap_or("");
        if !family.is_empty() {
            if let Some(t) = self.per_scenario.get(&format!("{scenario}.{family}")) {
                return *t;
            }
        }
        self.tolerances(scenario)
    }

    /// Parses the checked-in `gates.toml` subset: `[section]` headers and
    /// `key = <number>` lines, `#` comments. Unknown keys are errors so a
    /// typo cannot silently leave a scenario ungated.
    pub fn parse(text: &str) -> Result<Gates, String> {
        let mut gates = Gates::default();
        let mut section: Option<String> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let name = name.trim().to_string();
                if name.is_empty() {
                    return Err(format!("gates.toml line {}: empty section name", lineno + 1));
                }
                if name != "default" {
                    // A `[scenario.family]` section starts from its
                    // scenario's tolerances (if declared above it), so a
                    // family override of one knob keeps the other one's
                    // scenario-level value.
                    let seed = name
                        .split_once('.')
                        .and_then(|(scenario, _)| gates.per_scenario.get(scenario).copied())
                        .unwrap_or(gates.default);
                    gates.per_scenario.entry(name.clone()).or_insert(seed);
                }
                section = Some(name);
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("gates.toml line {}: expected key = value", lineno + 1))?;
            let key = key.trim();
            let value: f64 = value.trim().parse().map_err(|e| {
                format!("gates.toml line {}: bad number for {key:?}: {e}", lineno + 1)
            })?;
            if !value.is_finite() || value < 0.0 {
                return Err(format!(
                    "gates.toml line {}: tolerance {key:?} must be a finite non-negative percent",
                    lineno + 1
                ));
            }
            let sec = section
                .clone()
                .ok_or_else(|| format!("gates.toml line {}: key outside a section", lineno + 1))?;
            let tol = if sec == "default" {
                &mut gates.default
            } else {
                gates.per_scenario.get_mut(&sec).expect("section inserted on header")
            };
            match key {
                "time_pct" => tol.time_pct = value,
                "model_pct" => tol.model_pct = value,
                other => {
                    return Err(format!(
                        "gates.toml line {}: unknown key {other:?} (expected time_pct/model_pct)",
                        lineno + 1
                    ))
                }
            }
        }
        // Overrides declared before [default] still inherit the final
        // defaults for keys they did not set? No — sections snapshot the
        // defaults seen so far; keep [default] first in the file.
        Ok(gates)
    }
}

/// Why one comparison failed (or is worth a note).
#[derive(Clone, Debug, PartialEq)]
pub enum FindingKind {
    /// Metric drifted in the regression direction beyond tolerance.
    Regression,
    /// Metric improved beyond tolerance — not a failure; re-baseline hint.
    Improvement,
    /// `exact`-class metric differs.
    ExactMismatch,
    /// Metric present in the anchor but absent from the current run.
    MissingMetric,
    /// Anchor value unusable (NaN, infinite, or ≤ 0 for a ratio base).
    InvalidAnchor,
    /// Current value unusable (NaN or infinite).
    InvalidCurrent,
    /// Scenario names differ between the two documents.
    ScenarioMismatch,
    /// Tier (smoke/full) differs — parameters are not comparable.
    TierMismatch,
    /// Metric present in the current run but not the anchor (informational).
    NewMetric,
}

impl FindingKind {
    /// Whether this finding fails the gate.
    pub fn is_failure(&self) -> bool {
        !matches!(self, FindingKind::Improvement | FindingKind::NewMetric)
    }
}

/// One comparison outcome.
#[derive(Clone, Debug)]
pub struct Finding {
    pub kind: FindingKind,
    pub key: String,
    pub anchor: f64,
    pub current: f64,
    /// Signed drift in percent, positive = regression direction.
    pub drift_pct: f64,
    /// The tolerance that applied.
    pub limit_pct: f64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FindingKind::Regression => write!(
                f,
                "REGRESSION {}: {:.4} -> {:.4} ({:+.1}% past the {:.0}% tolerance)",
                self.key, self.anchor, self.current, self.drift_pct, self.limit_pct
            ),
            FindingKind::Improvement => write!(
                f,
                "improved {}: {:.4} -> {:.4} ({:.1}% better; consider re-baselining)",
                self.key,
                self.anchor,
                self.current,
                self.drift_pct.abs()
            ),
            FindingKind::ExactMismatch => write!(
                f,
                "EXACT MISMATCH {}: anchor {:.4} != current {:.4}",
                self.key, self.anchor, self.current
            ),
            FindingKind::MissingMetric => {
                write!(f, "MISSING {}: in anchor but not in the current run", self.key)
            }
            FindingKind::InvalidAnchor => write!(
                f,
                "INVALID ANCHOR {}: value {} cannot gate (NaN/inf/zero-throughput)",
                self.key, self.anchor
            ),
            FindingKind::InvalidCurrent => {
                write!(f, "INVALID CURRENT {}: value {} is not finite", self.key, self.current)
            }
            FindingKind::ScenarioMismatch => {
                write!(f, "SCENARIO MISMATCH: comparing against anchor {:?}", self.key)
            }
            FindingKind::TierMismatch => {
                write!(f, "TIER MISMATCH {}: anchors from one tier cannot gate another", self.key)
            }
            FindingKind::NewMetric => {
                write!(f, "new metric {} = {:.4} (not in anchor)", self.key, self.current)
            }
        }
    }
}

/// Result of gating one scenario.
#[derive(Clone, Debug)]
pub struct GateReport {
    pub scenario: String,
    pub findings: Vec<Finding>,
    /// Metrics compared (excluding structural findings).
    pub compared: usize,
}

impl GateReport {
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.kind.is_failure())
    }

    pub fn passed(&self) -> bool {
        self.failures().next().is_none()
    }
}

/// Compares a current run against its committed anchor with one flat
/// tolerance for every metric.
pub fn compare(anchor: &Anchor, current: &Anchor, tol: &Tolerances) -> GateReport {
    compare_by(anchor, current, &|_key| *tol)
}

/// Compares a current run against its committed anchor, resolving the
/// tolerance per metric through [`Gates::tolerances_for`] — so
/// `[latency.CUDA-Allocator]` can loosen one family's percentile gates
/// without loosening the whole scenario.
pub fn compare_with_gates(anchor: &Anchor, current: &Anchor, gates: &Gates) -> GateReport {
    compare_by(anchor, current, &|key| gates.tolerances_for(&anchor.scenario, key))
}

fn compare_by(
    anchor: &Anchor,
    current: &Anchor,
    tol_for: &dyn Fn(&str) -> Tolerances,
) -> GateReport {
    let mut findings = Vec::new();
    let mut compared = 0usize;
    if anchor.scenario != current.scenario {
        findings.push(Finding {
            kind: FindingKind::ScenarioMismatch,
            key: anchor.scenario.clone(),
            anchor: 0.0,
            current: 0.0,
            drift_pct: 0.0,
            limit_pct: 0.0,
        });
    }
    if anchor.tier != current.tier {
        findings.push(Finding {
            kind: FindingKind::TierMismatch,
            key: format!("{} (anchor) vs {} (current)", anchor.tier, current.tier),
            anchor: 0.0,
            current: 0.0,
            drift_pct: 0.0,
            limit_pct: 0.0,
        });
    }
    for am in &anchor.metrics {
        let Some(cm) = current.metric(&am.key) else {
            findings.push(Finding {
                kind: FindingKind::MissingMetric,
                key: am.key.clone(),
                anchor: am.value,
                current: f64::NAN,
                drift_pct: 0.0,
                limit_pct: 0.0,
            });
            continue;
        };
        compared += 1;
        if let Some(finding) = compare_metric(am, cm, &tol_for(&am.key)) {
            findings.push(finding);
        }
    }
    for cm in &current.metrics {
        if anchor.metric(&cm.key).is_none() {
            findings.push(Finding {
                kind: FindingKind::NewMetric,
                key: cm.key.clone(),
                anchor: f64::NAN,
                current: cm.value,
                drift_pct: 0.0,
                limit_pct: 0.0,
            });
        }
    }
    GateReport { scenario: anchor.scenario.clone(), findings, compared }
}

fn compare_metric(am: &Metric, cm: &Metric, tol: &Tolerances) -> Option<Finding> {
    let finding = |kind: FindingKind, drift_pct: f64, limit_pct: f64| {
        Some(Finding {
            kind,
            key: am.key.clone(),
            anchor: am.value,
            current: cm.value,
            drift_pct,
            limit_pct,
        })
    };
    // NaN/zero-throughput guard: ratio comparisons need a finite, positive
    // base for every non-exact class (latency anchors of 0 ns are equally
    // meaningless). Fail loudly instead of passing vacuously.
    if am.class != MetricClass::Exact && (!am.value.is_finite() || am.value <= 0.0) {
        return finding(FindingKind::InvalidAnchor, 0.0, 0.0);
    }
    if !am.value.is_finite() {
        return finding(FindingKind::InvalidAnchor, 0.0, 0.0);
    }
    if !cm.value.is_finite() {
        return finding(FindingKind::InvalidCurrent, 0.0, 0.0);
    }
    let limit = match am.class {
        MetricClass::TimeHi | MetricClass::TimeLo => tol.time_pct,
        MetricClass::ModelHi | MetricClass::ModelLo => tol.model_pct,
        MetricClass::Exact => {
            return if am.value == cm.value {
                None
            } else {
                finding(FindingKind::ExactMismatch, 0.0, 0.0)
            };
        }
    };
    // Drift in percent, signed so the regression direction is positive.
    let drift = if am.class.higher_is_better() {
        (am.value - cm.value) / am.value * 100.0
    } else {
        (cm.value - am.value) / am.value * 100.0
    };
    if drift > limit {
        finding(FindingKind::Regression, drift, limit)
    } else if drift < -limit {
        finding(FindingKind::Improvement, drift, limit)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anchor::SCHEMA_VERSION;

    fn anchor_with(metrics: Vec<Metric>) -> Anchor {
        Anchor {
            schema: SCHEMA_VERSION,
            scenario: "t".into(),
            tier: "smoke".into(),
            provenance: vec![("git".into(), "x".into())],
            metrics,
        }
    }

    fn tol(time_pct: f64, model_pct: f64) -> Tolerances {
        Tolerances { time_pct, model_pct }
    }

    #[test]
    fn tolerance_boundary_passes_exactly_at_limit() {
        // Anchor throughput 100, tolerance 20%: current 80 is exactly the
        // boundary (drift == limit) and passes; 79.999 fails.
        let a = anchor_with(vec![Metric::time_hi("m/tp", 100.0)]);
        let at = anchor_with(vec![Metric::time_hi("m/tp", 80.0)]);
        let past = anchor_with(vec![Metric::time_hi("m/tp", 79.999)]);
        assert!(compare(&a, &at, &tol(20.0, 5.0)).passed());
        let r = compare(&a, &past, &tol(20.0, 5.0));
        assert!(!r.passed());
        assert_eq!(r.failures().next().unwrap().kind, FindingKind::Regression);
    }

    #[test]
    fn lower_is_better_metrics_gate_the_other_direction() {
        // p99 latency anchor 1000 ns, tolerance 50%: 1500 passes, 1501 fails;
        // a *drop* to 100 ns is an improvement, never a failure.
        let a = anchor_with(vec![Metric::time_lo("m/p99", 1000.0)]);
        assert!(compare(&a, &anchor_with(vec![Metric::time_lo("m/p99", 1500.0)]), &tol(50.0, 5.0))
            .passed());
        assert!(!compare(
            &a,
            &anchor_with(vec![Metric::time_lo("m/p99", 1501.0)]),
            &tol(50.0, 5.0)
        )
        .passed());
        let better =
            compare(&a, &anchor_with(vec![Metric::time_lo("m/p99", 100.0)]), &tol(50.0, 5.0));
        assert!(better.passed());
        assert_eq!(better.findings[0].kind, FindingKind::Improvement);
    }

    #[test]
    fn model_class_uses_model_tolerance() {
        let a = anchor_with(vec![Metric::model_lo("m/cost", 2.0)]);
        // 10% worse: fails under model_pct 5 even though time_pct 60 allows it.
        let worse = anchor_with(vec![Metric::model_lo("m/cost", 2.2)]);
        assert!(!compare(&a, &worse, &tol(60.0, 5.0)).passed());
        assert!(compare(&a, &worse, &tol(60.0, 15.0)).passed());
    }

    #[test]
    fn exact_metrics_fail_on_any_difference() {
        let a = anchor_with(vec![Metric::exact("m/failures", 0.0)]);
        assert!(compare(&a, &anchor_with(vec![Metric::exact("m/failures", 0.0)]), &tol(60.0, 5.0))
            .passed());
        let r = compare(&a, &anchor_with(vec![Metric::exact("m/failures", 1.0)]), &tol(60.0, 5.0));
        assert_eq!(r.failures().next().unwrap().kind, FindingKind::ExactMismatch);
    }

    #[test]
    fn missing_metric_in_current_run_fails() {
        let a = anchor_with(vec![Metric::time_hi("m/tp", 100.0), Metric::time_hi("m/extra", 1.0)]);
        let c = anchor_with(vec![Metric::time_hi("m/tp", 100.0)]);
        let r = compare(&a, &c, &tol(60.0, 5.0));
        assert!(!r.passed());
        assert!(r.failures().any(|f| f.kind == FindingKind::MissingMetric && f.key == "m/extra"));
    }

    #[test]
    fn scenario_and_tier_mismatches_fail() {
        let a = anchor_with(vec![]);
        let mut c = anchor_with(vec![]);
        c.scenario = "other".into();
        assert!(compare(&a, &c, &tol(60.0, 5.0))
            .failures()
            .any(|f| f.kind == FindingKind::ScenarioMismatch));
        let mut full = anchor_with(vec![]);
        full.tier = "full".into();
        assert!(compare(&a, &full, &tol(60.0, 5.0))
            .failures()
            .any(|f| f.kind == FindingKind::TierMismatch));
    }

    #[test]
    fn nan_and_zero_throughput_anchors_fail_loudly() {
        for bad in [f64::NAN, 0.0, -1.0, f64::INFINITY] {
            let a = anchor_with(vec![Metric::time_hi("m/tp", bad)]);
            let c = anchor_with(vec![Metric::time_hi("m/tp", 100.0)]);
            let r = compare(&a, &c, &tol(60.0, 5.0));
            assert_eq!(
                r.failures().next().map(|f| f.kind.clone()),
                Some(FindingKind::InvalidAnchor),
                "anchor value {bad} must be rejected"
            );
        }
        // NaN on the current side fails too (a NaN never trips a plain
        // `drift > limit` comparison, so it needs the explicit guard).
        let a = anchor_with(vec![Metric::time_hi("m/tp", 100.0)]);
        let c = anchor_with(vec![Metric::time_hi("m/tp", f64::NAN)]);
        let r = compare(&a, &c, &tol(60.0, 5.0));
        assert_eq!(r.failures().next().map(|f| f.kind.clone()), Some(FindingKind::InvalidCurrent));
    }

    #[test]
    fn new_metrics_are_informational_only() {
        let a = anchor_with(vec![]);
        let c = anchor_with(vec![Metric::time_hi("m/new", 5.0)]);
        let r = compare(&a, &c, &tol(60.0, 5.0));
        assert!(r.passed());
        assert_eq!(r.findings[0].kind, FindingKind::NewMetric);
    }

    #[test]
    fn gates_toml_parses_defaults_and_overrides() {
        let g = Gates::parse(
            "# comment\n[default]\ntime_pct = 60\nmodel_pct = 25\n\n[exec]\ntime_pct = 75 # loose\n",
        )
        .unwrap();
        assert_eq!(g.default, Tolerances { time_pct: 60.0, model_pct: 25.0 });
        assert_eq!(g.tolerances("exec"), Tolerances { time_pct: 75.0, model_pct: 25.0 });
        assert_eq!(g.tolerances("unlisted"), g.default);
    }

    #[test]
    fn per_family_sections_resolve_most_specific_first() {
        let g = Gates::parse(
            "[default]\ntime_pct = 60\nmodel_pct = 25\n\
             [latency]\ntime_pct = 150\n\
             [latency.CUDA-Allocator]\ntime_pct = 250\n",
        )
        .unwrap();
        // Family override wins for its own metrics...
        let t = g.tolerances_for("latency", "CUDA-Allocator/malloc_p99_ns");
        assert_eq!(t.time_pct, 250.0);
        // ...and inherits the scenario section's other knob, not the default.
        assert_eq!(t.model_pct, 25.0);
        // Other families in the scenario keep the scenario override.
        assert_eq!(g.tolerances_for("latency", "Halloc/malloc_p99_ns").time_pct, 150.0);
        // Other scenarios are untouched by the dotted section.
        assert_eq!(g.tolerances_for("mixed", "CUDA-Allocator/u1024/alloc_mops").time_pct, 60.0);
    }

    #[test]
    fn compare_with_gates_applies_family_tolerance_per_metric() {
        let g = Gates::parse(
            "[default]\ntime_pct = 60\nmodel_pct = 25\n\
             [t]\ntime_pct = 50\n\
             [t.Loose]\ntime_pct = 300\n",
        )
        .unwrap();
        let a = anchor_with(vec![
            Metric::time_lo("Loose/p99", 1000.0),
            Metric::time_lo("Tight/p99", 1000.0),
        ]);
        // Both families regress 2x: Loose passes under its 300% gate, Tight
        // fails its scenario-level 50% gate — within one compare call.
        let c = anchor_with(vec![
            Metric::time_lo("Loose/p99", 2000.0),
            Metric::time_lo("Tight/p99", 2000.0),
        ]);
        let r = compare_with_gates(&a, &c, &g);
        assert!(!r.passed());
        let failed: Vec<&str> = r.failures().map(|f| f.key.as_str()).collect();
        assert_eq!(failed, vec!["Tight/p99"]);
    }

    #[test]
    fn gates_toml_rejects_typos_and_bad_values() {
        assert!(Gates::parse("[default]\ntime_percent = 60\n").is_err());
        assert!(Gates::parse("time_pct = 60\n").is_err(), "key outside section");
        assert!(Gates::parse("[default]\ntime_pct = -5\n").is_err());
        assert!(Gates::parse("[default]\ntime_pct = NaN\n").is_err());
        assert!(Gates::parse("[]\n").is_err());
    }
}
