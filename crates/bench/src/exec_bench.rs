//! Launch-overhead microbenchmark (`repro exec-bench` → `BENCH_exec.json`).
//!
//! Records the perf trajectory of the executor itself: empty-kernel launch
//! latency and warp throughput on the pooled executor, side by side with
//! the spawn-per-launch baseline it replaced. The committed anchor is the
//! schema-versioned `exec` scenario of `crate::matrix` (serialisation via
//! `crate::matrix::exec_metrics` + `crate::anchor`), so future executor
//! changes have a before/after baseline the gate enforces.

use std::time::{Duration, Instant};

use gpu_sim::Device;

/// Results of one microbenchmark run.
#[derive(Clone, Debug)]
pub struct ExecBenchResult {
    pub device: &'static str,
    pub workers: usize,
    /// Reported kernel time of an empty launch (one warp per worker),
    /// minimum over trials.
    pub empty_pooled: Duration,
    /// Same kernel through the spawn-per-launch baseline, which times
    /// spawn + drain + join together.
    pub empty_spawn: Duration,
    /// Wall-clock cost of the whole pooled `launch` call (dispatch + wait),
    /// minimum over trials.
    pub call_pooled: Duration,
    /// Wall-clock cost of the whole `spawn_launch` call.
    pub call_spawn: Duration,
    /// Warps in the throughput launch.
    pub throughput_warps: u32,
    /// Warps retired per second inside the pooled parallel section.
    pub pooled_warps_per_sec: f64,
    /// Warps per second of the spawn baseline (its clock includes
    /// spawn/join, which is the point).
    pub spawn_warps_per_sec: f64,
    /// Workers that executed at least one warp in a `workers`-warp launch —
    /// the small-launch spread the adaptive chunking buys (the fixed
    /// chunk-16 executor reported 1 here).
    pub small_launch_workers_used: usize,
}

impl ExecBenchResult {
    /// Reported-latency improvement of the pooled executor.
    pub fn latency_speedup(&self) -> f64 {
        let p = self.empty_pooled.as_secs_f64();
        if p == 0.0 {
            f64::INFINITY
        } else {
            self.empty_spawn.as_secs_f64() / p
        }
    }
}

/// Runs the microbenchmark on `device`. `trials` scales the repetition
/// count (latency minima get `8 × trials` pooled / `trials` spawn samples).
pub fn run(device: &Device, trials: u32) -> ExecBenchResult {
    let trials = trials.max(8);
    let workers = device.workers();
    let n_empty = workers as u32 * gpumem_core::WARP_SIZE;

    // Empty-kernel latency: reported time and call cost, min over trials.
    let mut empty_pooled = Duration::MAX;
    let mut call_pooled = Duration::MAX;
    for _ in 0..trials * 8 {
        let t = Instant::now();
        let rep = device.launch(n_empty, |_| {});
        call_pooled = call_pooled.min(t.elapsed());
        empty_pooled = empty_pooled.min(rep);
    }
    let mut empty_spawn = Duration::MAX;
    let mut call_spawn = Duration::MAX;
    for _ in 0..trials {
        let t = Instant::now();
        let rep = device.spawn_launch(n_empty, |_| {});
        call_spawn = call_spawn.min(t.elapsed());
        empty_spawn = empty_spawn.min(rep);
    }

    // Throughput: enough warps that chunking reaches its cap.
    let tp_warps = 16_384u32;
    let tp_threads = tp_warps * gpumem_core::WARP_SIZE;
    let body = |ctx: &gpumem_core::ThreadCtx| {
        std::hint::black_box(ctx.scatter_hash());
    };
    let mut tp_pooled = Duration::MAX;
    let mut tp_spawn = Duration::MAX;
    for _ in 0..trials.min(16) {
        tp_pooled = tp_pooled.min(device.launch(tp_threads, body));
        tp_spawn = tp_spawn.min(device.spawn_launch(tp_threads, body));
    }
    let per_sec = |d: Duration| {
        let s = d.as_secs_f64();
        if s == 0.0 {
            f64::INFINITY
        } else {
            f64::from(tp_warps) / s
        }
    };

    // Small-launch spread: one warp per worker, each busy long enough that
    // the whole pool claims before the queue drains.
    let mut small_used = 0usize;
    for _ in 0..trials.min(16) {
        let (_, sched) = device.launch_warps_with_stats(workers as u32, |_| {
            std::thread::sleep(Duration::from_micros(200));
        });
        small_used = small_used.max(sched.workers_used());
    }

    ExecBenchResult {
        device: device.spec().name,
        workers,
        empty_pooled,
        empty_spawn,
        call_pooled,
        call_spawn,
        throughput_warps: tp_warps,
        pooled_warps_per_sec: per_sec(tp_pooled),
        spawn_warps_per_sec: per_sec(tp_spawn),
        small_launch_workers_used: small_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn microbench_runs_and_serialises() {
        let d = Device::with_workers(DeviceSpec::titan_v(), 2);
        let r = run(&d, 8);
        assert_eq!(r.workers, 2);
        assert!(r.small_launch_workers_used >= 1);
        // The anchor serialisation lives in matrix::exec_metrics; here the
        // raw readings must at least be usable as gate bases.
        assert!(r.latency_speedup().is_finite() && r.latency_speedup() > 0.0);
        assert!(r.pooled_warps_per_sec > 0.0);
    }
}
