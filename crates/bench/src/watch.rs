//! `repro watch` — run one matrix scenario under the live telemetry
//! sampler and export the resulting time-series.
//!
//! The wiring problem this module solves: matrix scenario bodies construct
//! their managers internally (each cell builds a fresh manager through
//! [`crate::registry::ManagerBuilder`]), so there is no builder call site
//! the watch command could decorate directly. Instead it installs the
//! *process-global* [`TelemetrySink`] — `try_build` consults it, forces
//! the observability stack on and registers every manager it constructs —
//! runs the scenario unchanged, and tears the sink back down. The same
//! trick aligns sample windows to kernel boundaries: the [`MatrixCfg`]
//! launch hook cuts a window at every [`LaunchPhase::End`].
//!
//! Outputs, all under the `--out` directory:
//!
//! * `telemetry_<scenario>.json` — the schema-versioned time-series dump
//!   ([`TimeSeries::to_json`]) with the anchor's provenance stamps.
//! * `telemetry_<scenario>.csv` — one row per sample window
//!   ([`Sample::CSV_HEADER`]), for `scripts/summarize_results.py`.
//! * `telemetry_<scenario>.prom` — the OpenMetrics exposition, validated
//!   with [`gpumem_core::validate_openmetrics`] before it is written.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpu_sim::LaunchPhase;
use gpumem_core::telemetry::{self, Telemetry, TelemetryConfig, TelemetrySink};
use gpumem_core::{Sample, TimeSeries};

use crate::anchor::Anchor;
use crate::csv::Csv;
use crate::matrix::{self, MatrixCfg};

/// Everything a finished watch run produced.
pub struct WatchOutcome {
    /// The scenario's ordinary anchor (same metrics an unwatched run
    /// yields, modulo any `-m` restriction).
    pub anchor: Anchor,
    /// The sampled time-series.
    pub series: TimeSeries,
    /// Path of the JSON time-series dump.
    pub json_path: PathBuf,
    /// Path of the per-window CSV.
    pub csv_path: PathBuf,
    /// Path of the OpenMetrics exposition.
    pub om_path: PathBuf,
}

/// Clears the process-global sink when the run ends, error paths
/// included — a stale global sink would force tracing onto every later
/// manager construction in this process.
struct SinkGuard;

impl Drop for SinkGuard {
    fn drop(&mut self) {
        telemetry::clear_global_sink();
    }
}

/// Runs `scenario` under the sampler and writes the three exports.
///
/// `listen` optionally serves the live OpenMetrics exposition on a TCP
/// address for the duration of the run (`--telemetry-listen`); the bound
/// address is printed so `port 0` requests are usable.
pub fn watch(
    mut cfg: MatrixCfg,
    scenario: &str,
    tcfg: TelemetryConfig,
    listen: Option<&str>,
    out: &Path,
) -> Result<WatchOutcome, String> {
    let spec = matrix::scenario(scenario)
        .ok_or_else(|| matrix::MatrixError::UnknownScenario(scenario.to_string()).to_string())?;
    let sink = TelemetrySink::new();
    telemetry::install_global_sink(&sink);
    let _guard = SinkGuard;
    let tel = Telemetry::start(tcfg, sink);
    let marker = tel.boundary_marker();
    cfg.launch_hook = Some(Arc::new(move |phase| {
        if matches!(phase, LaunchPhase::End { .. }) {
            marker.mark();
        }
    }));
    let server = match listen {
        Some(addr) => {
            let srv = tel.serve(addr, scenario).map_err(|e| format!("bind {addr}: {e}"))?;
            eprintln!("telemetry: serving OpenMetrics on http://{}/", srv.addr());
            Some(srv)
        }
        None => None,
    };

    let result = matrix::run_scenario(&cfg, spec);
    // Managers are dropped inside the scenario body, which flushes any
    // magazine-parked frees into the counters (`Cached`'s drop-drain), so
    // the final window `stop()` cuts sees complete free accounting. The
    // attached counter blocks and rings outlive the managers via the
    // sink's `Arc`s.
    if let Some(srv) = server {
        srv.stop();
    }
    let series = tel.stop();
    let anchor = result.map_err(|e| e.to_string())?;
    let [json_path, csv_path, om_path] = export(&series, scenario, &anchor.provenance, out)?;
    Ok(WatchOutcome { anchor, series, json_path, csv_path, om_path })
}

/// Writes the three telemetry exports (`telemetry_<label>.{json,csv,prom}`)
/// into `out`, returning the paths in that order. The OpenMetrics text is
/// parse-validated before it lands — an unscrapable export should fail the
/// run, not the consumer.
pub fn export(
    series: &TimeSeries,
    label: &str,
    provenance: &[(String, String)],
    out: &Path,
) -> Result<[PathBuf; 3], String> {
    fs::create_dir_all(out).map_err(|e| format!("create {}: {e}", out.display()))?;
    let write = |path: &Path, body: &str| -> Result<(), String> {
        fs::write(path, body).map_err(|e| format!("write {}: {e}", path.display()))
    };

    let json_path = out.join(format!("telemetry_{label}.json"));
    write(&json_path, &series.to_json(label, provenance))?;

    let om = series.render_openmetrics(label);
    telemetry::validate_openmetrics(&om).map_err(|e| format!("openmetrics render: {e}"))?;
    let om_path = out.join(format!("telemetry_{label}.prom"));
    write(&om_path, &om)?;

    let mut csv = Csv::new(Sample::CSV_HEADER.iter().copied());
    let prov: Vec<String> = provenance.iter().map(|(k, v)| format!("{k}={v}")).collect();
    csv.comment(format!("label={label} {}", prov.join(" ")));
    for s in &series.samples {
        csv.row(s.csv_row());
    }
    let csv_path = out.join(format!("telemetry_{label}.csv"));
    csv.write(&csv_path).map_err(|e| format!("write {}: {e}", csv_path.display()))?;

    Ok([json_path, csv_path, om_path])
}
