//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                         # every experiment, CPU-scaled defaults
//! repro table1                      # survey table (Table 1)
//! repro init                        # §4.1 init + register requirements
//! repro fig9  --num 10000           # Fig 9a/b  (thread-based alloc/free)
//! repro fig9  --num 100000          # Fig 9c/d
//! repro fig9  --num 100000 --device 2080ti   # Fig 9e/f
//! repro fig9  --num 10000 --warp    # Fig 9g   (warp-based)
//! repro perf  --heap-backend mmap   # Fig 9 at the paper's full 8 GiB heap
//! repro mixed --num 100000          # Fig 9h   (mixed sizes)
//! repro scaling --max-exp 20        # Fig 10a-h
//! repro frag                        # Fig 11a
//! repro oom                         # Fig 11b
//! repro workgen --range 4-64        # Fig 11c  (4-4096 → Fig 11d)
//! repro write                       # Fig 11e
//! repro graph-init                  # Fig 11f
//! repro graph-update                # Fig 11g
//! repro trace -m scatter            # Perfetto trace + latency percentiles
//! ```
//!
//! Common options: `-t o+s+h+c+r+x+a` (approach selector, artifact syntax,
//! optional `@mmap` backend suffix), `--device titanv|2080ti`, `--iter N`,
//! `--timeout SECS`, `--out DIR`, `--heap-backend ram|mmap|numa`,
//! `--pretouch auto|full|striped|lazy`, `--heap-mb MB`.

use std::path::PathBuf;
use std::time::Duration;

use gpu_sim::{Device, DeviceSpec};
use gpu_workloads::{sizes, write_test::WritePattern};
use gpumem_bench::anchor::Anchor;
use gpumem_bench::csv::{ms, us, Csv};
use gpumem_bench::gate::{self, Gates};
use gpumem_bench::matrix::{self, MatrixCfg, Tier};
use gpumem_bench::registry::{ManagerKind, ManagerSelection, ALL_KINDS, DEFAULT_KINDS};
use gpumem_bench::runners::{self, Bench};
use gpumem_bench::watch;
use gpumem_core::info::SURVEY_TABLE;
use gpumem_core::telemetry::{self, TelemetryConfig};
use gpumem_core::trace::DEFAULT_EVENTS_PER_SM;
use gpumem_core::{HeapBackendKind, Pretouch, SloSpec, Telemetry, TelemetryServer, TelemetrySink};

#[derive(Clone)]
struct Opts {
    kinds: Vec<ManagerKind>,
    device: DeviceSpec,
    num: u32,
    warp: bool,
    dense: bool,
    max_exp: u32,
    range: (u64, u64),
    iterations: u32,
    timeout: u64,
    cycles: u32,
    edges: u32,
    scale_div: u32,
    oom_heap_mb: u64,
    manager: Option<String>,
    trace_cap: usize,
    /// `None` until `--heap-backend` (or a `-t …@backend` suffix) picks one;
    /// resolved against `GMS_HEAP_BACKEND` / the RAM default at use.
    heap_backend: Option<HeapBackendKind>,
    pretouch: Pretouch,
    /// `--heap-mb`: pins every cell's heap to this size instead of the
    /// demand-derived `heap_for` sizing.
    heap_mb: Option<u64>,
    /// `--cached` (or a `-t …@cached` suffix): wrap every manager in the
    /// `Cached` magazine decorator, with one untimed warm-up pass in the
    /// perf runners so timed iterations measure the hot path.
    cached: bool,
    out: PathBuf,
    /// `matrix`/`gate` tier: `--smoke` or `--tier tiny|smoke|full`
    /// (default full — the main-branch sizing).
    tier: Option<Tier>,
    /// `--seed HEX`: workload seed for matrix scenarios (default 0x5eed).
    seed: Option<u64>,
    /// `--anchors DIR`: where committed `BENCH_*.json` anchors live and
    /// where `matrix` writes them (default: the repo root, `.`).
    anchors: PathBuf,
    /// `--gates FILE`: tolerance config for `gate`.
    gates: PathBuf,
    /// `--candidate DIR`: gate compares anchors in this directory instead
    /// of rerunning scenarios (how check.sh avoids a double matrix run).
    candidate: Option<PathBuf>,
    /// `--scenario NAME` (repeatable): restrict matrix/gate to a subset.
    scenarios: Vec<String>,
    /// `--telemetry`: run `perf`/`matrix` under the live sampler and write
    /// the `telemetry_<cmd>.{json,csv,prom}` exports next to the results.
    telemetry: bool,
    /// `--telemetry-hz N`: sampler cadence (overrides `GMS_TELEMETRY_HZ`;
    /// default 100 Hz, i.e. 10 ms windows).
    telemetry_hz: Option<f64>,
    /// `--telemetry-listen ADDR`: serve the live OpenMetrics exposition on
    /// this TCP address for the duration of the run (implies telemetry).
    telemetry_listen: Option<String>,
    /// `--slo SPEC` (repeatable): rolling-window objectives evaluated by
    /// the sampler, e.g. `malloc_p99_ns<50000@500ms`.
    slos: Vec<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            kinds: DEFAULT_KINDS.to_vec(),
            device: DeviceSpec::titan_v(),
            num: 10_000,
            warp: false,
            dense: false,
            max_exp: 14,
            range: (4, 64),
            iterations: 2,
            timeout: 20,
            cycles: 10,
            edges: 20_000,
            scale_div: 64,
            oom_heap_mb: 64,
            manager: None,
            trace_cap: DEFAULT_EVENTS_PER_SM,
            heap_backend: None,
            pretouch: Pretouch::Auto,
            heap_mb: None,
            cached: false,
            out: PathBuf::from("results"),
            tier: None,
            seed: None,
            anchors: PathBuf::from("."),
            gates: PathBuf::from("gates.toml"),
            candidate: None,
            scenarios: Vec::new(),
            telemetry: false,
            telemetry_hz: None,
            telemetry_listen: None,
            slos: Vec::new(),
        }
    }
}

impl Opts {
    /// The backend every runner uses: explicit flag/selector suffix first,
    /// then the `GMS_HEAP_BACKEND` environment default (normally RAM).
    fn backend(&self) -> HeapBackendKind {
        self.heap_backend.unwrap_or_else(HeapBackendKind::env_default)
    }
}

fn parse_args(args: &[String]) -> Result<(String, Opts), String> {
    let mut opts = Opts::default();
    let mut cmd = args.first().cloned().ok_or_else(usage)?;
    let mut i = 1;
    // `repro --report contention` is sugar for `repro contention`.
    if cmd == "--report" {
        cmd = args.get(1).cloned().ok_or_else(|| "missing report name".to_string())?;
        i = 2;
    }
    let next = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i - 1).cloned().ok_or_else(|| "missing option value".to_string())
    };
    while i < args.len() {
        let flag = args[i].clone();
        i += 1;
        match flag.as_str() {
            "-t" => {
                let raw = next(&mut i)?;
                let sel: ManagerSelection = raw.parse()?;
                opts.kinds = sel.kinds;
                // `o+s@mmap` picks a backend inline; a plain selector leaves
                // any `--heap-backend` choice untouched.
                if raw.contains('@') {
                    opts.heap_backend = Some(sel.backend);
                }
                if sel.cached {
                    opts.cached = true;
                }
            }
            "--device" => {
                let name = next(&mut i)?;
                opts.device =
                    DeviceSpec::by_name(&name).ok_or_else(|| format!("unknown device: {name}"))?;
            }
            "--num" => opts.num = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--warp" => opts.warp = true,
            "--dense" => opts.dense = true,
            "--max-exp" => opts.max_exp = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--range" => {
                let r = next(&mut i)?;
                let (lo, hi) =
                    r.split_once('-').ok_or_else(|| format!("range must be LO-HI: {r}"))?;
                opts.range = (
                    lo.parse().map_err(|e| format!("{e}"))?,
                    hi.parse().map_err(|e| format!("{e}"))?,
                );
            }
            "--iter" => opts.iterations = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--timeout" => opts.timeout = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--cycles" => opts.cycles = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--edges" => opts.edges = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--scale-div" => opts.scale_div = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--oom-heap" => opts.oom_heap_mb = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "-m" | "--manager" => opts.manager = Some(next(&mut i)?),
            "--trace-cap" => opts.trace_cap = next(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--heap-backend" => opts.heap_backend = Some(next(&mut i)?.parse()?),
            "--pretouch" => opts.pretouch = next(&mut i)?.parse()?,
            "--heap-mb" => opts.heap_mb = Some(next(&mut i)?.parse().map_err(|e| format!("{e}"))?),
            "--cached" => opts.cached = true,
            "--out" => opts.out = PathBuf::from(next(&mut i)?),
            "--smoke" => opts.tier = Some(Tier::Smoke),
            "--tier" => {
                let t = next(&mut i)?;
                opts.tier =
                    Some(t.parse().map_err(|()| format!("unknown tier: {t} (tiny|smoke|full)"))?);
            }
            "--seed" => {
                let s = next(&mut i)?;
                let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => s.parse(),
                };
                opts.seed = Some(parsed.map_err(|e| format!("bad seed {s:?}: {e}"))?);
            }
            "--anchors" => opts.anchors = PathBuf::from(next(&mut i)?),
            "--gates" => opts.gates = PathBuf::from(next(&mut i)?),
            "--candidate" => opts.candidate = Some(PathBuf::from(next(&mut i)?)),
            "--scenario" => opts.scenarios.push(next(&mut i)?),
            "--telemetry" => opts.telemetry = true,
            "--telemetry-hz" => {
                let hz = next(&mut i)?;
                opts.telemetry_hz = Some(hz.parse().map_err(|e| format!("bad hz {hz:?}: {e}"))?);
            }
            "--telemetry-listen" => opts.telemetry_listen = Some(next(&mut i)?),
            "--slo" => opts.slos.push(next(&mut i)?),
            other => return Err(format!("unknown option: {other}\n{}", usage())),
        }
    }
    Ok((cmd, opts))
}

fn usage() -> String {
    "usage: repro <table1|init|fig9|perf|mixed|scaling|frag|oom|workgen|write|graph-init|graph-update|churn|contention|sanitize|trace|audit|exec-bench|matrix|gate|watch|check|all> [options]\n\
     (`repro --report contention` is an alias for `repro contention`;\n\
      `repro perf` is fig9 at the paper's full 8 GiB heap, mmap-backed by default;\n\
      `repro matrix` regenerates the committed BENCH_<scenario>.json anchors,\n\
      `repro gate` reruns and compares them against gates.toml tolerances,\n\
      `repro watch --scenario NAME` runs one scenario under the live telemetry\n\
      sampler and writes telemetry_<scenario>.{json,csv,prom} into --out)\n\
     options: -t SELECTOR[@ram|mmap|numa][+cached] --device D --num N --warp --dense --max-exp E\n\
     --range LO-HI --iter N --timeout SECS --cycles N --edges N --scale-div N --oom-heap MB\n\
     -m MANAGER --trace-cap EVENTS_PER_SM --out DIR --cached\n\
     --heap-backend ram|mmap|numa --pretouch auto|full|striped|lazy --heap-mb MB\n\
     matrix/gate: --smoke | --tier tiny|smoke|full, --seed HEX, --anchors DIR,\n\
     --gates FILE, --candidate DIR, --scenario NAME (repeatable)\n\
     telemetry (watch, or perf/matrix with --telemetry): --telemetry-hz N,\n\
     --telemetry-listen ADDR, --slo METRIC<THRESH@WINDOW (repeatable,\n\
     e.g. --slo 'malloc_p99_ns<50000@500ms'); watch restricts managers\n\
     with -m NAME or -t SELECTOR and defaults to the smoke tier"
        .to_string()
}

fn bench_of(opts: &Opts) -> Bench {
    let mut b = Bench::new(Device::new(opts.device));
    b.iterations = opts.iterations;
    b.cell_timeout = Duration::from_secs(opts.timeout);
    b.heap_backend = opts.backend();
    b.pretouch = opts.pretouch;
    b.heap_override = opts.heap_mb.map(|mb| mb << 20);
    b.cached = opts.cached;
    // Cached runs get one untimed warm-up pass so the timed iterations
    // measure the magazine hot path, not the cold first fill.
    b.warmup = opts.cached as u32;
    b
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    // Every report names its worker config so CSV rows stay attributable
    // (the pool size changes contention, and GMS_WORKERS overrides it).
    println!(
        "# device={} sms={} workers={}{}",
        opts.device.name,
        opts.device.num_sms,
        Device::configured_workers(),
        if std::env::var("GMS_WORKERS").is_ok() { " (GMS_WORKERS)" } else { "" }
    );
    match cmd.as_str() {
        "table1" => table1(&opts),
        "init" => init(&opts),
        "fig9" => fig9(&opts),
        "perf" => perf(opts),
        "mixed" => mixed(&opts),
        "scaling" => scaling(&opts),
        "frag" => frag(&opts),
        "oom" => oom(&opts),
        "workgen" => workgen(&opts),
        "write" => write_perf(&opts),
        "graph-init" => graph_init(&opts),
        "graph-update" => graph_update(&opts),
        "churn" => churn(&opts),
        "contention" => contention(&opts),
        "sanitize" => sanitize(&opts),
        "trace" => trace(&opts),
        "audit" => audit(&opts),
        "exec-bench" => exec_overhead(&opts),
        "matrix" => matrix_cmd(&opts),
        "gate" => gate_cmd(&opts),
        "watch" => watch_cmd(&opts),
        "check" => check(&opts),
        "all" => run_all(opts),
        other => {
            eprintln!("unknown command: {other}\n{}", usage());
            std::process::exit(2);
        }
    }
}

/// `repro perf` — the Fig. 9 sweep at the paper's actual scale: an 8 GiB
/// device heap (the TITAN V configuration of §4) instead of the
/// demand-derived CPU-scaled sizing. Defaults to the mmap backend so the
/// address space is reserved `MAP_NORESERVE` and only touched pages commit
/// — a bare `repro perf` works on hosts with far less than 8 GiB free.
/// `--heap-backend`/`--heap-mb` still override both choices.
fn perf(opts: Opts) {
    let opts = Opts {
        heap_backend: Some(opts.heap_backend.unwrap_or(HeapBackendKind::Mmap)),
        heap_mb: Some(opts.heap_mb.unwrap_or(8192)),
        ..opts
    };
    println!(
        "# perf: heap={} MiB backend={} pretouch={}",
        opts.heap_mb.unwrap(),
        opts.backend(),
        opts.pretouch.resolve(opts.backend()),
    );
    let lt = start_live_telemetry(&opts, "perf");
    fig9(&opts);
    finish_live_telemetry(lt, &opts);
}

fn run_all(mut opts: Opts) {
    // CPU-scaled defaults for a complete sweep.
    opts.num = opts.num.min(10_000);
    println!("== Table 1 ==");
    table1(&opts);
    println!("== Section 4.1: init & registers ==");
    init(&opts);
    println!("== Figure 9a/9b: thread-based alloc/free ({}) ==", opts.num);
    fig9(&opts);
    println!("== Figure 9g: warp-based alloc ==");
    let mut warp = Opts { warp: true, ..opts.clone() };
    warp.num = opts.num.min(4096) * 32 / 32;
    fig9(&warp);
    println!("== Figure 9h: mixed allocation ==");
    mixed(&opts);
    println!("== Figure 10: scaling ==");
    scaling(&opts);
    println!("== Figure 11a: fragmentation ==");
    frag(&opts);
    println!("== Figure 11b: out-of-memory ==");
    oom(&opts);
    println!("== Figure 11c: work generation 4-64 B ==");
    workgen(&opts);
    println!("== Figure 11d: work generation 4-4096 B ==");
    let wide = Opts { range: (4, 4096), ..opts.clone() };
    workgen(&wide);
    println!("== Figure 11e: write performance ==");
    write_perf(&opts);
    println!("== Figure 11f: graph initialization ==");
    graph_init(&opts);
    println!("== Figure 11g: graph updates ==");
    graph_update(&opts);
    println!("== Contention report ==");
    contention(&opts);
    println!("== Sanitizer sweep ==");
    sanitize(&opts);
    println!("done; results in {}", opts.out.display());
}

fn table1(opts: &Opts) {
    let mut csv = Csv::new([
        "ref",
        "name",
        "year",
        "availability",
        "build",
        "variants",
        "needs_cuda_alloc",
        "general_purpose",
        "results",
        "stable",
        "evaluated_here",
    ]);
    println!(
        "{:<6}{:<16}{:<6}{:<10}{:<8}{:<9}{:<10}{:<9}{:<8}{:<7}evaluated",
        "ref",
        "name",
        "year",
        "avail",
        "build",
        "variants",
        "cuda-dep",
        "general",
        "results",
        "stable"
    );
    for r in SURVEY_TABLE {
        println!(
            "{:<6}{:<16}{:<6}{:<10}{:<8}{:<9}{:<10}{:<9}{:<8}{:<7}{}",
            r.reference,
            r.short_name,
            r.year,
            r.availability.to_string(),
            r.build,
            r.variants,
            if r.depends_on_cuda_alloc { "yes" } else { "no" },
            r.general_purpose,
            if r.results_available { "yes" } else { "no" },
            r.stable.to_string(),
            if r.evaluated_here { "yes" } else { "no" },
        );
        csv.row([
            r.reference.to_string(),
            r.short_name.to_string(),
            r.year.to_string(),
            r.availability.to_string(),
            r.build.to_string(),
            r.variants.to_string(),
            r.depends_on_cuda_alloc.to_string(),
            r.general_purpose.to_string(),
            r.results_available.to_string(),
            r.stable.to_string(),
            r.evaluated_here.to_string(),
        ]);
    }
    save(csv, opts, "table1.csv");
}

fn init(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "init_ms", "malloc_regs", "free_regs"]);
    println!("{:<16}{:>12}{:>14}{:>12}", "manager", "init_ms", "malloc_regs", "free_regs");
    for &kind in &opts.kinds {
        let c = runners::init_performance(&bench, kind, 256 << 20);
        println!("{:<16}{:>12}{:>14}{:>12}", c.manager, ms(c.init), c.malloc_regs, c.free_regs);
        csv.row([
            c.manager.to_string(),
            ms(c.init),
            c.malloc_regs.to_string(),
            c.free_regs.to_string(),
        ]);
    }
    save(csv, opts, "init_register.csv");
}

fn fig9(opts: &Opts) {
    let bench = bench_of(opts);
    let sweep = sizes::alloc_size_sweep(opts.dense.then_some(64));
    let mode = if opts.warp { "warp" } else { "thread" };
    let mut csv = Csv::new(["manager", "size", "alloc_ms", "free_ms", "failures", "timed_out"]);
    for &kind in &opts.kinds {
        let mut skipping = false;
        for &size in &sweep {
            if skipping {
                csv.row([
                    kind.label().to_string(),
                    size.to_string(),
                    "".into(),
                    "".into(),
                    "".into(),
                    "skipped".into(),
                ]);
                continue;
            }
            let c = runners::alloc_perf(&bench, kind, opts.num, size, opts.warp);
            csv.row([
                c.manager.to_string(),
                size.to_string(),
                ms(c.alloc),
                c.free.map(ms).unwrap_or_default(),
                c.failures.to_string(),
                c.timed_out.to_string(),
            ]);
            skipping = c.timed_out;
        }
        println!("  {} done{}", kind.label(), if skipping { " (timed out)" } else { "" });
    }
    save(csv, opts, &format!("alloc_{mode}_{}_{}.csv", opts.num, opts.device.name));
}

fn mixed(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "upper", "alloc_ms", "free_ms", "failures"]);
    for &kind in &opts.kinds {
        for upper in sizes::mixed_upper_bounds() {
            let c = runners::mixed_perf(&bench, kind, opts.num, upper);
            csv.row([
                c.manager.to_string(),
                upper.to_string(),
                ms(c.alloc),
                c.free.map(ms).unwrap_or_default(),
                c.failures.to_string(),
            ]);
            if c.timed_out {
                break;
            }
        }
        println!("  {} done", kind.label());
    }
    save(csv, opts, &format!("mixed_{}_{}.csv", opts.num, opts.device.name));
}

fn scaling(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "size", "threads", "alloc_ms", "free_ms"]);
    for &size in &[16u64, 64, 512, 8192] {
        for &kind in &opts.kinds {
            for e in 0..=opts.max_exp {
                let n = 1u32 << e;
                let c = runners::alloc_perf(&bench, kind, n, size, false);
                csv.row([
                    c.manager.to_string(),
                    size.to_string(),
                    n.to_string(),
                    ms(c.alloc),
                    c.free.map(ms).unwrap_or_default(),
                ]);
                if c.timed_out {
                    break;
                }
            }
        }
        println!("  size {size} done");
    }
    save(csv, opts, &format!("scaling_{}.csv", opts.device.name));
}

fn frag(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv =
        Csv::new(["manager", "size", "address_range", "baseline", "expansion", "max_range_cycles"]);
    for &kind in &opts.kinds {
        for &size in &[4u64, 16, 64, 256, 1024, 4096, 8192] {
            let c = runners::fragmentation(&bench, kind, opts.num, size, opts.cycles);
            csv.row([
                c.manager.to_string(),
                size.to_string(),
                c.initial.address_range.to_string(),
                c.initial.baseline.to_string(),
                format!("{:.3}", c.initial.expansion_factor()),
                c.max_range_after_cycles.to_string(),
            ]);
        }
        println!("  {} done", kind.label());
    }
    save(csv, opts, "fragmentation.csv");
}

fn oom(opts: &Opts) {
    let bench = bench_of(opts);
    let heap = opts.oom_heap_mb << 20;
    let mut csv = Csv::new(["manager", "size", "allocations", "utilization", "timed_out"]);
    for &kind in &opts.kinds {
        for &size in &[4u64, 16, 64, 256, 1024, 4096, 8192] {
            let c = runners::oom(&bench, kind, heap, size);
            csv.row([
                c.manager.to_string(),
                size.to_string(),
                c.allocations.to_string(),
                format!("{:.4}", c.utilization),
                c.timed_out.to_string(),
            ]);
        }
        println!("  {} done", kind.label());
    }
    save(csv, opts, &format!("oom_{}mb.csv", opts.oom_heap_mb));
}

fn workgen(opts: &Opts) {
    let bench = bench_of(opts);
    let (lo, hi) = opts.range;
    let mut csv = Csv::new(["manager", "threads", "elapsed_ms", "failures"]);
    for e in 0..=opts.max_exp {
        let n = 1u32 << e;
        let base = runners::work_generation_baseline(&bench, n, lo, hi);
        csv.row([
            base.manager.to_string(),
            n.to_string(),
            ms(base.elapsed),
            base.failures.to_string(),
        ]);
    }
    for &kind in &opts.kinds {
        for e in 0..=opts.max_exp {
            let n = 1u32 << e;
            let c = runners::work_generation(&bench, kind, n, lo, hi);
            csv.row([c.manager.to_string(), n.to_string(), ms(c.elapsed), c.failures.to_string()]);
        }
        println!("  {} done", kind.label());
    }
    save(csv, opts, &format!("workgen_{lo}_{hi}.csv"));
}

fn write_perf(opts: &Opts) {
    let bench = bench_of(opts);
    let n = opts.num.max(1 << 14);
    let mut csv = Csv::new(["manager", "pattern", "relative_cost", "failures"]);
    println!("{:<16}{:>24}{:>16}", "manager", "pattern", "rel_cost");
    for &kind in &opts.kinds {
        for pattern in [
            WritePattern::Uniform { bytes: 16 },
            WritePattern::Uniform { bytes: 64 },
            WritePattern::Uniform { bytes: 128 },
            WritePattern::Mixed { lo: 16, hi: 128 },
        ] {
            let c = runners::write_performance(&bench, kind, n, pattern);
            println!("{:<16}{:>24}{:>16.3}", c.manager, c.pattern, c.relative_cost);
            csv.row([
                c.manager.to_string(),
                c.pattern.clone(),
                format!("{:.4}", c.relative_cost),
                c.failures.to_string(),
            ]);
        }
    }
    save(csv, opts, "write_performance.csv");
}

fn graph_init(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "graph", "vertices", "edges", "init_ms", "failures"]);
    for name in dyn_graph::GRAPH_NAMES {
        let csr = dyn_graph::generate(name, opts.scale_div, bench.seed);
        for &kind in &opts.kinds {
            if kind.warp_level_only() {
                continue; // no general free → cannot run the graph cases
            }
            let c = runners::graph_init(&bench, kind, &csr).unwrap_or_else(|e| {
                eprintln!("graph-init {name}: {e}");
                std::process::exit(1);
            });
            csv.row([
                c.manager.to_string(),
                c.graph.clone(),
                csr.vertices().to_string(),
                csr.edges().to_string(),
                ms(c.elapsed),
                c.failures.to_string(),
            ]);
        }
        println!("  {name} done");
    }
    save(csv, opts, &format!("graph_init_div{}.csv", opts.scale_div));
}

fn graph_update(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "graph", "scenario", "edges", "elapsed_ms", "failures"]);
    for name in dyn_graph::GRAPH_NAMES {
        let csr = dyn_graph::generate(name, opts.scale_div, bench.seed);
        for &kind in &opts.kinds {
            if kind.warp_level_only() || kind == ManagerKind::Atomic {
                continue; // update requires general free
            }
            for focused in [false, true] {
                let c = runners::graph_update(&bench, kind, &csr, opts.edges, focused)
                    .unwrap_or_else(|e| {
                        eprintln!("graph-update {name}: {e}");
                        std::process::exit(1);
                    });
                csv.row([
                    c.manager.to_string(),
                    c.graph.clone(),
                    if focused { "focused" } else { "uniform" }.to_string(),
                    opts.edges.to_string(),
                    ms(c.elapsed),
                    c.failures.to_string(),
                ]);
            }
        }
        println!("  {name} done");
    }
    save(csv, opts, &format!("graph_update_div{}.csv", opts.scale_div));
}

/// Repeated alloc/free cycles: slowdown factors per manager (the paper's
/// "slowing down significantly over time" observation, §4.2.1).
fn churn(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new(["manager", "cycles", "first_alloc_ms", "last_alloc_ms", "slowdown"]);
    println!(
        "{:<16}{:>10}{:>16}{:>16}{:>10}",
        "manager", "cycles", "first_ms", "last_ms", "slowdown"
    );
    for &kind in &opts.kinds {
        let alloc = kind
            .builder()
            .heap_spec(bench.heap_spec(opts.num, 256))
            .sms(opts.device.num_sms)
            .build();
        let r = gpu_workloads::churn::run(
            alloc.as_ref(),
            &bench.device,
            opts.num,
            256,
            opts.cycles.max(8),
        );
        let first = r.cycles.first().map(|(a, _)| a.as_secs_f64() * 1e3).unwrap_or(0.0);
        let last = r.cycles.last().map(|(a, _)| a.as_secs_f64() * 1e3).unwrap_or(0.0);
        println!(
            "{:<16}{:>10}{:>16.4}{:>16.4}{:>10.2}",
            kind.label(),
            r.cycles.len(),
            first,
            last,
            r.slowdown_factor()
        );
        csv.row([
            kind.label().to_string(),
            r.cycles.len().to_string(),
            format!("{first:.4}"),
            format!("{last:.4}"),
            format!("{:.3}", r.slowdown_factor()),
        ]);
    }
    save(csv, opts, "churn.csv");
}

/// Contention report: per-manager counter activity of a `--num`-thread
/// alloc/free run (default 10 000 threads, 16 B), with the metrics-off
/// wall-clock alongside so the observability overhead is visible.
fn contention(opts: &Opts) {
    let bench = bench_of(opts);
    let size = 16u64;
    let workers = bench.device.workers();
    let mut csv = Csv::new([
        "manager",
        "threads",
        "size",
        "workers",
        "observed_ms",
        "baseline_ms",
        "overhead",
        "dispatch_us",
        "workers_used",
        "steals",
        "malloc_calls",
        "malloc_failures",
        "free_calls",
        "free_failures",
        "cas_retries",
        "probe_steps",
        "queue_spins",
        "list_hops",
        "oom_fallbacks",
        "warp_coalesced",
        "dropped_events",
    ]);
    println!(
        "{:<16}{:>9}{:>9}{:>9}{:>10}{:>6}{:>8}{:>11}{:>12}{:>12}{:>10}{:>10}{:>10}{:>9}",
        "manager",
        "obs_ms",
        "base_ms",
        "ovhd",
        "disp_us",
        "used",
        "steals",
        "cas_retry",
        "probe_step",
        "queue_spin",
        "list_hop",
        "oom_fall",
        "coalesced",
        "dropped"
    );
    for &kind in &opts.kinds {
        let c = runners::contention_profile(&bench, kind, opts.num, size);
        let s = &c.counters;
        println!(
            "{:<16}{:>9}{:>9}{:>8.2}x{:>10}{:>6}{:>8}{:>11}{:>12}{:>12}{:>10}{:>10}{:>10}{:>9}",
            c.manager,
            ms(c.observed),
            ms(c.baseline),
            c.overhead_factor(),
            us(c.dispatch),
            c.workers_used,
            c.steals,
            s.cas_retries(),
            s.probe_steps(),
            s.queue_spins(),
            s.list_hops(),
            s.oom_fallbacks(),
            s.warp_coalesced(),
            c.dropped_events,
        );
        csv.row([
            c.manager.to_string(),
            c.num.to_string(),
            c.size.to_string(),
            workers.to_string(),
            ms(c.observed),
            ms(c.baseline),
            format!("{:.3}", c.overhead_factor()),
            us(c.dispatch),
            c.workers_used.to_string(),
            c.steals.to_string(),
            s.malloc_calls().to_string(),
            s.malloc_failures().to_string(),
            s.free_calls().to_string(),
            s.free_failures().to_string(),
            s.cas_retries().to_string(),
            s.probe_steps().to_string(),
            s.queue_spins().to_string(),
            s.list_hops().to_string(),
            s.oom_fallbacks().to_string(),
            s.warp_coalesced().to_string(),
            c.dropped_events.to_string(),
        ]);
    }
    save(csv, opts, &format!("contention_{}_{}.csv", opts.num, opts.device.name));
}

/// Launch-overhead microbenchmark: empty-kernel latency and warp throughput
/// of the pooled executor vs the spawn-per-launch baseline. Alias for the
/// matrix's `exec` scenario: refreshes `BENCH_exec.json` in `--anchors`
/// (default: the repo root) in the schema-versioned anchor format. Use
/// `--smoke` to regenerate the committed (smoke-tier) anchor.
fn exec_overhead(opts: &Opts) {
    let cfg = matrix_cfg(opts);
    let spec = matrix::scenario("exec").expect("exec scenario registered");
    let anchor = matrix::run_scenario(&cfg, spec).unwrap_or_else(|e| {
        eprintln!("exec-bench: {e}");
        std::process::exit(1);
    });
    let get = |k: &str| anchor.metric(k).map(|m| m.value).unwrap_or(f64::NAN);
    println!(
        "empty kernel: pooled {:.0} ns vs spawn {:.0} ns ({:.1}x); call cost {:.0} ns vs {:.0} ns",
        get("empty_pooled_ns"),
        get("empty_spawn_ns"),
        get("launch_speedup"),
        get("call_pooled_ns"),
        get("call_spawn_ns"),
    );
    println!(
        "throughput ({:.0} warps): pooled {:.0} warps/s vs spawn {:.0} warps/s",
        get("throughput_warps"),
        get("pooled_warps_per_sec"),
        get("spawn_warps_per_sec"),
    );
    println!(
        "small launch: {:.0}% of {:.0} workers used",
        get("small_launch_worker_frac") * 100.0,
        get("workers"),
    );
    write_anchor(&anchor, &opts.anchors, spec.name);
}

/// Matrix/gate configuration from the command line: tier (default full),
/// seed, device, backend. Iteration counts and timeouts are tier-pinned so
/// anchors of the same tier are always comparable.
fn matrix_cfg(opts: &Opts) -> MatrixCfg {
    let mut cfg = MatrixCfg::new(opts.tier.unwrap_or(Tier::Full));
    cfg.device = opts.device;
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    cfg.heap_backend = opts.backend();
    cfg.pretouch = opts.pretouch;
    cfg
}

/// The scenario subset selected with `--scenario` (all when none given).
fn selected_scenarios(opts: &Opts) -> Vec<&'static matrix::ScenarioSpec> {
    if opts.scenarios.is_empty() {
        return matrix::SCENARIOS.iter().collect();
    }
    opts.scenarios
        .iter()
        .map(|name| {
            matrix::scenario(name).unwrap_or_else(|| {
                eprintln!("{}", matrix::MatrixError::UnknownScenario(name.clone()));
                std::process::exit(2);
            })
        })
        .collect()
}

/// Writes one anchor file, exiting nonzero on failure — a silently missing
/// anchor would let a gated CI run pass vacuously.
fn write_anchor(anchor: &Anchor, dir: &std::path::Path, name: &str) {
    let path = Anchor::path_for(dir, name);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(e) = std::fs::write(&path, anchor.render()) {
        eprintln!("failed to write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("  wrote {} ({} metrics, tier {})", path.display(), anchor.metrics.len(), anchor.tier);
}

/// `repro matrix` — run the scenario registry at the selected tier and
/// write one `BENCH_<scenario>.json` anchor per scenario.
fn matrix_cmd(opts: &Opts) {
    let mut cfg = matrix_cfg(opts);
    let lt = start_live_telemetry(opts, "matrix");
    if let Some(lt) = &lt {
        let marker = lt.tel.boundary_marker();
        cfg.launch_hook = Some(std::sync::Arc::new(move |phase| {
            if matches!(phase, gpu_sim::LaunchPhase::End { .. }) {
                marker.mark();
            }
        }));
    }
    let specs = selected_scenarios(opts);
    println!(
        "# matrix tier={} seed={:#x} backend={} anchors={}",
        cfg.tier.as_str(),
        cfg.seed,
        cfg.heap_backend,
        opts.anchors.display()
    );
    for spec in specs {
        let started = std::time::Instant::now();
        match matrix::run_scenario(&cfg, spec) {
            Ok(anchor) => {
                print!("{:<14} {:>6.1}s", spec.name, started.elapsed().as_secs_f64());
                write_anchor(&anchor, &opts.anchors, spec.name);
            }
            Err(e) => {
                eprintln!("matrix {}: {e}", spec.name);
                std::process::exit(1);
            }
        }
    }
    finish_live_telemetry(lt, opts);
}

/// Builds the sampler config from the command line: cadence from
/// `--telemetry-hz` (falling back to `GMS_TELEMETRY_HZ`, then the 10 ms
/// default) and rolling-window objectives from repeated `--slo` flags.
fn telemetry_config(opts: &Opts) -> TelemetryConfig {
    let mut cfg = TelemetryConfig::from_env();
    if let Some(hz) = opts.telemetry_hz {
        cfg = cfg.hz(hz);
    }
    for raw in &opts.slos {
        match raw.parse::<SloSpec>() {
            Ok(spec) => cfg = cfg.slo(spec),
            Err(e) => {
                eprintln!("bad --slo {raw:?}: {e}");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// The manager restriction `repro watch` applies to its scenario: `-m NAME`
/// pins one manager, an explicit `-t` selector pins a set, and neither
/// runs the scenario's natural set.
fn watch_kinds(opts: &Opts) -> Option<Vec<ManagerKind>> {
    if let Some(name) = &opts.manager {
        match resolve_manager(name) {
            Ok(k) => return Some(vec![k]),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    (opts.kinds != DEFAULT_KINDS).then(|| opts.kinds.clone())
}

/// `repro watch` — run one matrix scenario under the live telemetry
/// sampler and export the sampled time-series (JSON, per-window CSV,
/// OpenMetrics). Defaults to the smoke tier: watch is an interactive
/// diagnosis tool, not the anchor producer.
fn watch_cmd(opts: &Opts) {
    let scenario = match opts.scenarios.as_slice() {
        [one] => one.clone(),
        [] => {
            eprintln!("watch requires --scenario NAME\n{}", usage());
            std::process::exit(2);
        }
        _ => {
            eprintln!("watch takes exactly one --scenario");
            std::process::exit(2);
        }
    };
    let mut cfg = MatrixCfg::new(opts.tier.unwrap_or(Tier::Smoke));
    cfg.device = opts.device;
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    cfg.heap_backend = opts.backend();
    cfg.pretouch = opts.pretouch;
    cfg.kinds = watch_kinds(opts);
    let outcome = watch::watch(
        cfg,
        &scenario,
        telemetry_config(opts),
        opts.telemetry_listen.as_deref(),
        &opts.out,
    )
    .unwrap_or_else(|e| {
        eprintln!("watch: {e}");
        std::process::exit(1);
    });
    if outcome.anchor.metrics.is_empty() {
        eprintln!("warning: manager restriction excluded every kind this scenario runs");
    }
    let s = &outcome.series;
    let boundaries = s.samples.iter().filter(|x| x.boundary).count();
    println!(
        "watched {scenario}: {} samples ({} kernel-boundary cuts, {} evicted), \
         {} launches, {} mallocs / {} frees, {} trace events dropped",
        s.samples.len(),
        boundaries,
        s.evicted,
        s.launches,
        s.totals.malloc_calls(),
        s.totals.free_calls(),
        s.dropped_events,
    );
    print!("{}", s.slo_table());
    for p in [&outcome.json_path, &outcome.csv_path, &outcome.om_path] {
        println!("wrote {}", p.display());
    }
    // Breached objectives make the run's exit status actionable in CI.
    if s.slo.iter().any(|r| !r.breaches.is_empty()) {
        std::process::exit(3);
    }
}

/// Live sampler attached to a `--telemetry` run of `perf`/`matrix` (the
/// `watch` subcommand manages its own). Holds the process-global sink
/// installed; [`finish_live_telemetry`] clears it and writes the exports.
struct LiveTelemetry {
    tel: Telemetry,
    server: Option<TelemetryServer>,
    label: String,
}

fn start_live_telemetry(opts: &Opts, label: &str) -> Option<LiveTelemetry> {
    if !opts.telemetry && opts.telemetry_listen.is_none() {
        return None;
    }
    let sink = TelemetrySink::new();
    telemetry::install_global_sink(&sink);
    let tel = Telemetry::start(telemetry_config(opts), sink);
    let server = opts.telemetry_listen.as_deref().map(|addr| match tel.serve(addr, label) {
        Ok(s) => {
            eprintln!("telemetry: serving OpenMetrics on http://{}/", s.addr());
            s
        }
        Err(e) => {
            eprintln!("telemetry: bind {addr}: {e}");
            std::process::exit(2);
        }
    });
    Some(LiveTelemetry { tel, server, label: label.to_string() })
}

fn finish_live_telemetry(lt: Option<LiveTelemetry>, opts: &Opts) {
    let Some(LiveTelemetry { tel, server, label }) = lt else { return };
    telemetry::clear_global_sink();
    if let Some(s) = server {
        s.stop();
    }
    let series = tel.stop();
    let prov = vec![("cmd".to_string(), label.clone()), ("run".to_string(), provenance(opts))];
    match watch::export(&series, &label, &prov, &opts.out) {
        Ok(paths) => {
            print!("{}", series.slo_table());
            for p in &paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("telemetry export: {e}");
            std::process::exit(1);
        }
    }
}

/// `repro gate` — load committed anchors, rerun the same scenarios (or read
/// a `--candidate` directory), and fail on drift beyond `gates.toml`.
fn gate_cmd(opts: &Opts) {
    let gates = match std::fs::read_to_string(&opts.gates) {
        Ok(text) => match Gates::parse(&text) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        Err(e) => {
            eprintln!("cannot read {}: {e}", opts.gates.display());
            std::process::exit(2);
        }
    };
    let cfg = matrix_cfg(opts);
    let load = |path: &std::path::Path| -> Result<Anchor, String> {
        let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Anchor::parse(&text).map_err(|e| e.to_string())
    };
    let mut failures = 0usize;
    let mut compared = 0usize;
    for spec in selected_scenarios(opts) {
        let path = Anchor::path_for(&opts.anchors, spec.name);
        let anchor = match load(&path) {
            Ok(a) => a,
            Err(e) => {
                println!("FAIL {}: anchor {}: {e}", spec.name, path.display());
                failures += 1;
                continue;
            }
        };
        let current = if let Some(dir) = &opts.candidate {
            let cpath = Anchor::path_for(dir, spec.name);
            match load(&cpath) {
                Ok(a) => a,
                Err(e) => {
                    println!("FAIL {}: candidate {}: {e}", spec.name, cpath.display());
                    failures += 1;
                    continue;
                }
            }
        } else {
            match matrix::run_scenario(&cfg, spec) {
                Ok(a) => a,
                Err(e) => {
                    println!("FAIL {}: rerun: {e}", spec.name);
                    failures += 1;
                    continue;
                }
            }
        };
        let tol = gates.tolerances(spec.name);
        let report = gate::compare_with_gates(&anchor, &current, &gates);
        compared += report.compared;
        for f in &report.findings {
            println!("  {}: {f}", spec.name);
        }
        let n_fail = report.failures().count();
        failures += n_fail;
        println!(
            "{} {} ({} metrics, base time ±{}%, model ±{}%; per-family overrides apply)",
            if n_fail == 0 { "pass" } else { "FAIL" },
            spec.name,
            report.compared,
            tol.time_pct,
            tol.model_pct
        );
    }
    if failures > 0 {
        eprintln!("gate: {failures} failure(s) across {compared} compared metrics");
        std::process::exit(1);
    }
    println!("gate: all scenarios pass ({compared} metrics compared)");
}

/// Concurrency-audit summary: runs the memlint atomics-ordering pass over
/// the workspace in-process and prints a per-crate table of standing vs.
/// allowlisted diagnostics (one row per crate and rule), plus every
/// allowlist entry with its written reason. Exits non-zero if anything
/// stands, so `repro audit` doubles as the CI gate the same way
/// `cargo run -p memlint -- --deny` does.
fn audit(opts: &Opts) {
    // Prefer the checkout we are running in; fall back to the build-time
    // workspace for out-of-tree invocations.
    let root = if std::path::Path::new("crates").is_dir() {
        PathBuf::from(".")
    } else {
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    };
    let report = match memlint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };

    // Per-pass rollup first: the one-screen answer to "is the audit clean",
    // one row per analysis pass of the framework.
    println!("{:<22}{:>9}{:>13}", "pass", "standing", "allowlisted");
    for pass in memlint::Pass::ALL {
        let (s, a) = report.pass_counts(pass);
        println!("{:<22}{s:>9}{a:>13}", pass.name());
    }
    println!();

    // Then the detail, grouped by (crate, rule).
    let crate_of = |d: &memlint::Diagnostic| -> String {
        let s = d.file.to_string_lossy().replace('\\', "/");
        match s.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
            Some(name) => name.to_string(),
            None => "workspace-root".to_string(),
        }
    };
    let mut rows: Vec<(String, memlint::Rule, u32, u32)> = Vec::new();
    for d in &report.diagnostics {
        let key = (crate_of(d), d.rule);
        let row = match rows.iter_mut().find(|(c, r, ..)| *c == key.0 && *r == key.1) {
            Some(r) => r,
            None => {
                rows.push((key.0, key.1, 0, 0));
                rows.last_mut().unwrap()
            }
        };
        if d.allowed.is_some() {
            row.3 += 1;
        } else {
            row.2 += 1;
        }
    }
    rows.sort_by(|a, b| (&a.0, a.1.name()).cmp(&(&b.0, b.1.name())));

    let mut csv = Csv::new(["crate", "pass", "rule", "standing", "allowlisted"]);
    println!("{:<18}{:<22}{:<28}{:>9}{:>13}", "crate", "pass", "rule", "standing", "allowlisted");
    for (krate, rule, standing, allowed) in &rows {
        println!(
            "{krate:<18}{:<22}{:<28}{standing:>9}{allowed:>13}",
            rule.pass().name(),
            rule.name()
        );
        csv.row([
            krate.clone(),
            rule.pass().name().to_string(),
            rule.name().to_string(),
            standing.to_string(),
            allowed.to_string(),
        ]);
    }
    if rows.is_empty() {
        println!("(no diagnostics at all — {} files scanned)", report.files);
    }
    println!();
    for d in report.allowlisted() {
        println!(
            "allow {}:{} [{}] — {}",
            d.file.display(),
            d.line,
            d.rule,
            d.allowed.as_deref().unwrap_or("")
        );
    }
    let standing = report.denied().count();
    for d in report.denied() {
        println!("STANDING {d}");
    }
    println!(
        "\naudit: {} files, {} standing, {} allowlisted",
        report.files,
        standing,
        report.allowlisted().count()
    );

    csv.comment(provenance(opts));
    let path = opts.out.join("audit.csv");
    match csv.write(&path) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if standing > 0 {
        std::process::exit(2);
    }
}

/// Sanitizer sweep: every selected manager runs the churn + mixed-size
/// workloads under `Sanitized` (shadow interval map, occupancy bitmap,
/// canary redzones, poison-on-free) and reports a per-manager violation
/// table. A stable manager shows an all-zero row; non-zero cells are the
/// paper's "not entirely stable" classification made concrete.
fn sanitize(opts: &Opts) {
    let bench = bench_of(opts);
    let mut csv = Csv::new([
        "manager",
        "threads",
        "cycles",
        "alloc_failures",
        "overlap",
        "out_of_heap",
        "misaligned",
        "double_free",
        "unknown_free",
        "redzone_corrupt",
        "total",
        "live_after",
        "clean",
    ]);
    println!(
        "{:<16}{:>9}{:>8}{:>9}{:>9}{:>12}{:>8}{:>9}{:>9}{:>10}{:>7}",
        "manager",
        "failures",
        "overlap",
        "out_heap",
        "misalign",
        "double_free",
        "unknown",
        "redzone",
        "total",
        "live",
        "clean"
    );
    let mut dirty = 0u32;
    for &kind in &opts.kinds {
        let c = runners::sanitize_run(&bench, kind, opts.num, opts.cycles.max(8));
        let [overlap, out_of_heap, misaligned, double_free, unknown_free, redzone] = c.counts;
        println!(
            "{:<16}{:>9}{:>8}{:>9}{:>9}{:>12}{:>8}{:>9}{:>9}{:>10}{:>7}",
            c.manager,
            c.failures,
            overlap,
            out_of_heap,
            misaligned,
            double_free,
            unknown_free,
            redzone,
            c.total_violations(),
            c.live_after,
            if c.is_clean() { "yes" } else { "NO" }
        );
        if !c.is_clean() {
            dirty += 1;
        }
        csv.row([
            c.manager.to_string(),
            c.num.to_string(),
            c.cycles.to_string(),
            c.failures.to_string(),
            overlap.to_string(),
            out_of_heap.to_string(),
            misaligned.to_string(),
            double_free.to_string(),
            unknown_free.to_string(),
            redzone.to_string(),
            c.total_violations().to_string(),
            c.live_after.to_string(),
            if c.is_clean() { "yes" } else { "no" }.to_string(),
        ]);
    }
    save(csv, opts, &format!("sanitize_{}_{}.csv", opts.num, opts.device.name));
    if dirty > 0 {
        println!("{dirty} manager(s) reported violations");
    }
}

/// Lowercases and strips non-alphanumerics so `"Ouro-S-P"`, `"ouro s p"`,
/// and `"OuroSP"` all compare (and name files) identically.
fn sanitize_token(name: &str) -> String {
    name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_ascii_lowercase()
}

/// Resolves a user-supplied manager name against the registry labels by
/// normalized prefix match (`scatter` → ScatterAlloc, `halloc` → Halloc).
/// Exact matches win over prefix matches; ambiguity is an error listing
/// the candidates.
fn resolve_manager(name: &str) -> Result<ManagerKind, String> {
    let want = sanitize_token(name);
    if want.is_empty() {
        return Err(format!("empty manager name: {name:?}"));
    }
    if let Some(&k) = ALL_KINDS.iter().find(|k| sanitize_token(k.label()) == want) {
        return Ok(k);
    }
    let matches: Vec<ManagerKind> = ALL_KINDS
        .iter()
        .copied()
        .filter(|k| sanitize_token(k.label()).starts_with(&want))
        .collect();
    let labels = |ks: &[ManagerKind]| ks.iter().map(|k| k.label()).collect::<Vec<_>>().join(", ");
    match matches.as_slice() {
        [k] => Ok(*k),
        [] => Err(format!("unknown manager: {name} (available: {})", labels(&ALL_KINDS))),
        many => Err(format!("ambiguous manager {name}: matches {}", labels(many))),
    }
}

/// Event-tracing run (`repro trace -m scatter`): executes the mixed-size
/// alloc/free workload on one manager with the per-SM ring-buffer recorder
/// attached, then writes the Chrome trace-event JSON (load it in
/// <https://ui.perfetto.dev>) plus a latency-percentile CSV derived from
/// the same event stream.
fn trace(opts: &Opts) {
    let bench = bench_of(opts);
    let (kind, token) = match &opts.manager {
        Some(name) => match resolve_manager(name) {
            Ok(k) => (k, sanitize_token(name)),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        None => (ManagerKind::ScatterAlloc, sanitize_token(ManagerKind::ScatterAlloc.label())),
    };
    let r = runners::trace_profile(&bench, kind, opts.num, opts.trace_cap);
    if let Err(e) = gpumem_core::validate_chrome_json(&r.json) {
        eprintln!("exported trace failed Chrome-JSON validation: {e}");
        std::process::exit(1);
    }
    let json_path = opts.out.join(format!("trace_{token}.json"));
    if let Some(parent) = json_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&json_path, &r.json) {
        Ok(()) => println!("wrote {} ({} bytes)", json_path.display(), r.json.len()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
    let mut csv = Csv::new([
        "manager", "op", "events", "dropped", "p50_ns", "p95_ns", "p99_ns", "max_ns", "mean_ns",
    ]);
    println!(
        "{:<16}{:<8}{:>9}{:>9}{:>10}{:>10}{:>10}{:>12}",
        "manager", "op", "events", "dropped", "p50_ns", "p95_ns", "p99_ns", "max_ns"
    );
    for (op, h) in [("malloc", &r.latencies.malloc), ("free", &r.latencies.free)] {
        println!(
            "{:<16}{:<8}{:>9}{:>9}{:>10}{:>10}{:>10}{:>12}",
            r.manager,
            op,
            h.count(),
            r.trace.dropped,
            h.p50(),
            h.p95(),
            h.p99(),
            h.max_ns()
        );
        csv.row([
            r.manager.to_string(),
            op.to_string(),
            h.count().to_string(),
            r.trace.dropped.to_string(),
            h.p50().to_string(),
            h.p95().to_string(),
            h.p99().to_string(),
            h.max_ns().to_string(),
            h.mean_ns().to_string(),
        ]);
    }
    save(csv, opts, &format!("trace_latency_{}_{}.csv", opts.num, opts.device.name));
    let occ = &r.occupancy;
    if r.trace.dropped > 0 {
        eprintln!(
            "warning: {} events dropped at ring capacity {} (drop-newest) — \
             latency percentiles and the occupancy timeline are truncated; \
             raise --trace-cap",
            r.trace.dropped, opts.trace_cap
        );
    }
    println!(
        "{} events recorded ({} dropped), span {:.3} ms; occupancy: {} samples, peak {} B in {} allocs, address range {} B",
        r.trace.len(),
        r.trace.dropped,
        r.trace.span_ns() as f64 / 1e6,
        occ.samples.len(),
        occ.peak_live_bytes,
        occ.peak_live_allocs,
        occ.address_range.range()
    );
}

/// Validates a finished run's CSVs against the paper's qualitative shapes.
fn check(opts: &Opts) {
    let results = gpumem_bench::shapes::check_all(&opts.out);
    if results.is_empty() {
        eprintln!("no result CSVs found in {} — run `repro all` first", opts.out.display());
        std::process::exit(2);
    }
    let mut failed = 0;
    for r in &results {
        println!(
            "[{}] {:<32} {} — {}",
            if r.pass { "PASS" } else { "FAIL" },
            r.id,
            r.paper,
            r.statement
        );
        if !r.pass {
            failed += 1;
        }
    }
    println!("\n{} of {} shape expectations hold", results.len() - failed, results.len());
    if failed > 0 {
        std::process::exit(1);
    }
}

/// One-line provenance stamp attached to every CSV `repro` writes: enough
/// to reproduce the run (git revision, worker configuration, seed) and to
/// detect schema drift. Rendered as a `# ...` comment line above the
/// header; `scripts/summarize_results.py` skips it.
fn provenance(opts: &Opts) -> String {
    let git = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    let backend = opts.backend();
    format!(
        "git={git} device={} workers={} gms_workers={} heap_backend={backend} pretouch={} \
         heap_mb={} seed=0x5eed schema=1",
        opts.device.name,
        Device::configured_workers(),
        std::env::var("GMS_WORKERS").unwrap_or_else(|_| "-".to_string()),
        opts.pretouch.resolve(backend),
        opts.heap_mb.map(|mb| mb.to_string()).unwrap_or_else(|| "-".to_string()),
    )
}

fn save(mut csv: Csv, opts: &Opts, name: &str) {
    csv.comment(provenance(opts));
    let path = opts.out.join(name);
    match csv.write(&path) {
        Ok(()) => println!("wrote {} ({} rows)", path.display(), csv.len()),
        Err(e) => {
            // Exiting nonzero here is load-bearing: a result file that
            // silently failed to land would let a gated CI run pass vacuously.
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
