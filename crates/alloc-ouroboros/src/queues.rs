//! The three queue designs of Ouroboros (paper §2.10, Figure 7).
//!
//! * [`StandardQueue`] (`Ouro-S-*`): a fixed-capacity lock-free ring. "Fast
//!   and efficient", but "needs static space, which has to be large enough
//!   to hold the largest expected number of free pages/chunks."
//! * [`VirtArrayQueue`] (`Ouro-VA-*`): the *virtualized array-hierarchy
//!   queue* — a small chunk-pointer array references the chunks currently
//!   backing the queue; entries live in those chunks in device memory, and
//!   storage chunks are acquired/released from the chunk pool as the
//!   virtual front/back move.
//! * [`VirtLinkedQueue`] (`Ouro-VL-*`): the *virtualized linked-chunk
//!   queue* — no pointer array at all; storage chunks are linked through a
//!   header word, giving an unlimited virtual queue size.
//!
//! The standard queue is a Vyukov-style ticket ring (the lock-free design
//! the original uses). The two virtualized queues guard their multi-word
//! front/back/storage state with a tiny spin lock: the original synchronises
//! these transitions with a bespoke semaphore scheme; the lock preserves the
//! ordering behaviour and the *two-tier cost* (every operation touches
//! device memory, occasionally allocating or releasing a storage chunk),
//! which is what the survey's measurements expose.

use gpumem_core::sync::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use gpumem_core::DeviceHeap;

use crate::pool::{ChunkPool, CHUNK_BYTES, CLASS_QUEUE};

/// Why an enqueue failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueError {
    /// Fixed-capacity storage exhausted (standard / array-hierarchy).
    Full,
    /// The chunk pool could not supply a storage chunk (virtualized).
    OutOfChunks,
}

/// A queue of `u32` indices (pages or chunks).
pub trait IndexQueue: Send + Sync {
    /// Creates a queue able to hold roughly `capacity_hint` entries (the
    /// standard queue sizes its static storage from this; the virtualized
    /// queues ignore it).
    fn create(capacity_hint: u64) -> Self
    where
        Self: Sized;

    /// Enqueues `v`.
    fn enqueue(&self, pool: &ChunkPool, heap: &DeviceHeap, v: u32) -> Result<(), QueueError> {
        let mut spins = 0;
        self.enqueue_with(pool, heap, v, &mut spins)
    }

    /// [`IndexQueue::enqueue`] that also counts retry iterations — lost
    /// ticket CASes (standard) or spin-lock busy turns (virtualized) — into
    /// `spins` (the `queue_spins` source of the contention-observability
    /// layer).
    fn enqueue_with(
        &self,
        pool: &ChunkPool,
        heap: &DeviceHeap,
        v: u32,
        spins: &mut u64,
    ) -> Result<(), QueueError>;

    /// Dequeues the oldest entry.
    fn dequeue(&self, pool: &ChunkPool, heap: &DeviceHeap) -> Option<u32> {
        let mut spins = 0;
        self.dequeue_with(pool, heap, &mut spins)
    }

    /// [`IndexQueue::dequeue`] with the same spin accounting as
    /// [`IndexQueue::enqueue_with`].
    fn dequeue_with(&self, pool: &ChunkPool, heap: &DeviceHeap, spins: &mut u64) -> Option<u32>;

    /// Approximate occupancy.
    fn len(&self) -> usize;

    /// Whether the queue is (approximately) empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Variant tag used in manager labels: "S", "VA" or "VL".
    fn tag() -> &'static str
    where
        Self: Sized;
}

// ---------------------------------------------------------------- standard

/// Fixed-capacity lock-free MPMC ring (static storage).
///
/// Slot sequence numbers are stored *relative* to the slot index
/// (`stored = seq - i`), so the required initial state (`seq[i] = i`) is
/// all-zeroes — the storage comes straight from the zero page and
/// initialisation is O(1), matching the fast init of the original's static
/// queues (§4.1: standard Ouroboros initialises in ~6 ms).
pub struct StandardQueue {
    seq: Box<[AtomicU64]>,
    val: Box<[AtomicU32]>,
    head: AtomicU64,
    tail: AtomicU64,
    mask: u64,
}

/// Reinterprets a zeroed `Vec<u64>` (lazily-mapped calloc pages) as atomic
/// storage without touching every element.
fn zeroed_atomics_u64(n: usize) -> Box<[AtomicU64]> {
    let v = vec![0u64; n];
    // SAFETY: AtomicU64 has the same size, alignment and validity as u64.
    // memlint: allow(atomic-transmute) — AtomicU64 is repr(transparent) over u64 in both std and the loom shim, so size/align/validity match.
    unsafe { std::mem::transmute::<Box<[u64]>, Box<[AtomicU64]>>(v.into_boxed_slice()) }
}

/// As [`zeroed_atomics_u64`], for `u32`.
fn zeroed_atomics_u32(n: usize) -> Box<[AtomicU32]> {
    let v = vec![0u32; n];
    // SAFETY: AtomicU32 has the same size, alignment and validity as u32.
    // memlint: allow(atomic-transmute) — AtomicU32 is repr(transparent) over u32 in both std and the loom shim, so size/align/validity match.
    unsafe { std::mem::transmute::<Box<[u32]>, Box<[AtomicU32]>>(v.into_boxed_slice()) }
}

/// Cap on static queue storage: 2²² entries (16 MiB of indices) — large
/// heaps would otherwise demand absurd static allocations, which is exactly
/// the drawback (§2.10) that motivated virtualization.
pub const STANDARD_CAP_MAX: u64 = 1 << 22;

impl IndexQueue for StandardQueue {
    fn create(capacity_hint: u64) -> Self {
        let cap = capacity_hint.clamp(64, STANDARD_CAP_MAX).next_power_of_two() as usize;
        StandardQueue {
            seq: zeroed_atomics_u64(cap),
            val: zeroed_atomics_u32(cap),
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            mask: cap as u64 - 1,
        }
    }

    fn enqueue_with(
        &self,
        _pool: &ChunkPool,
        _heap: &DeviceHeap,
        v: u32,
        spins: &mut u64,
    ) -> Result<(), QueueError> {
        let mut tail = self.tail.load(Ordering::Relaxed);
        loop {
            let idx = (tail & self.mask) as usize;
            // Stored sequences are relative to the slot index (see type
            // docs): the logical sequence is `stored + idx`.
            let seq = self.seq[idx].load(Ordering::Acquire) + idx as u64;
            if seq == tail {
                // memlint: allow(relaxed-cas-success) — Vyukov ticket ring: the slot seq word carries the Release/Acquire edge; model-checked in loom_tests.
                match self.tail.compare_exchange_weak(
                    tail,
                    tail + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.val[idx].store(v, Ordering::Relaxed);
                        self.seq[idx].store(tail + 1 - idx as u64, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => {
                        *spins += 1;
                        tail = actual;
                    }
                }
            } else if seq < tail {
                return Err(QueueError::Full);
            } else {
                *spins += 1;
                tail = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    fn dequeue_with(&self, _pool: &ChunkPool, _heap: &DeviceHeap, spins: &mut u64) -> Option<u32> {
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            let idx = (head & self.mask) as usize;
            let seq = self.seq[idx].load(Ordering::Acquire) + idx as u64;
            if seq == head + 1 {
                // memlint: allow(relaxed-cas-success) — ticket claim only; the seq Acquire load above ordered the slot, seq Release below publishes it.
                match self.head.compare_exchange_weak(
                    head,
                    head + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = self.val[idx].load(Ordering::Relaxed);
                        self.seq[idx].store(head + self.mask + 1 - idx as u64, Ordering::Release);
                        return Some(v);
                    }
                    Err(actual) => {
                        *spins += 1;
                        head = actual;
                    }
                }
            } else if seq <= head {
                return None;
            } else {
                *spins += 1;
                head = self.head.load(Ordering::Relaxed);
            }
        }
    }

    fn len(&self) -> usize {
        let t = self.tail.load(Ordering::Relaxed);
        let h = self.head.load(Ordering::Relaxed);
        t.saturating_sub(h) as usize
    }

    fn tag() -> &'static str {
        "S"
    }
}

// -------------------------------------------------------------- spin guard

/// Minimal spin lock guarding the virtualized queues' multi-word state.
struct Spin {
    flag: AtomicBool,
}

impl Spin {
    const fn new() -> Self {
        Spin { flag: AtomicBool::new(false) }
    }

    /// Acquires the lock, counting busy turns into `spins`.
    fn lock_counted(&self, spins: &mut u64) -> SpinGuard<'_> {
        while self
            .flag
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            *spins += 1;
            gpumem_core::sync::hint::spin_loop();
        }
        SpinGuard { spin: self }
    }
}

struct SpinGuard<'a> {
    spin: &'a Spin,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.spin.flag.store(false, Ordering::Release);
    }
}

// ----------------------------------------------------- virtualized (array)

/// Entries per storage chunk (plain `u32` payload, whole chunk).
pub const VA_ENTRIES_PER_CHUNK: u64 = CHUNK_BYTES / 4;
/// Slots in the chunk-pointer array.
pub const VA_SLOTS: usize = 512;

const NO_STORAGE: u32 = u32::MAX;

struct VaState {
    front: u64,
    back: u64,
    slots: [u32; VA_SLOTS],
}

/// Virtualized array-hierarchy queue: entries live in pool chunks referenced
/// by a small pointer array.
pub struct VirtArrayQueue {
    lock: Spin,
    // memlint: allow(shared-unsafe-cell) — all access is serialised by `lock` (Spin); mutual exclusion model-checked in loom_tests.
    state: std::cell::UnsafeCell<VaState>,
    approx_len: AtomicU64,
}

// SAFETY: `state` is only touched under `lock`.
unsafe impl Send for VirtArrayQueue {}
// SAFETY: as for Send — `lock` serialises all access to `state`.
unsafe impl Sync for VirtArrayQueue {}

impl VirtArrayQueue {
    /// Virtual capacity: the pointer array times one chunk of entries.
    pub const fn virtual_capacity() -> u64 {
        VA_SLOTS as u64 * VA_ENTRIES_PER_CHUNK
    }
}

impl IndexQueue for VirtArrayQueue {
    fn create(_capacity_hint: u64) -> Self {
        VirtArrayQueue {
            lock: Spin::new(),
            state: std::cell::UnsafeCell::new(VaState {
                front: 0,
                back: 0,
                slots: [NO_STORAGE; VA_SLOTS],
            }),
            approx_len: AtomicU64::new(0),
        }
    }

    fn enqueue_with(
        &self,
        pool: &ChunkPool,
        heap: &DeviceHeap,
        v: u32,
        spins: &mut u64,
    ) -> Result<(), QueueError> {
        let _g = self.lock.lock_counted(spins);
        // SAFETY: lock held.
        let st = unsafe { &mut *self.state.get() };
        if st.back - st.front >= Self::virtual_capacity() {
            return Err(QueueError::Full);
        }
        let pos = st.back % Self::virtual_capacity();
        let slot = (pos / VA_ENTRIES_PER_CHUNK) as usize;
        if st.slots[slot] == NO_STORAGE {
            let c = pool.acquire(CLASS_QUEUE).ok_or(QueueError::OutOfChunks)?;
            st.slots[slot] = c;
        }
        let chunk = st.slots[slot];
        let off = pool.chunk_base(chunk) + (pos % VA_ENTRIES_PER_CHUNK) * 4;
        heap.store_u32(off, v);
        st.back += 1;
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn dequeue_with(&self, pool: &ChunkPool, heap: &DeviceHeap, spins: &mut u64) -> Option<u32> {
        let _g = self.lock.lock_counted(spins);
        // SAFETY: lock held.
        let st = unsafe { &mut *self.state.get() };
        if st.front == st.back {
            return None;
        }
        let pos = st.front % Self::virtual_capacity();
        let slot = (pos / VA_ENTRIES_PER_CHUNK) as usize;
        let chunk = st.slots[slot];
        debug_assert_ne!(chunk, NO_STORAGE);
        let v = heap.load_u32(pool.chunk_base(chunk) + (pos % VA_ENTRIES_PER_CHUNK) * 4);
        st.front += 1;
        self.approx_len.fetch_sub(1, Ordering::Relaxed);
        // Release the storage chunk once the front leaves it (and the back
        // is not still writing into it).
        if st.front % VA_ENTRIES_PER_CHUNK == 0 || st.front == st.back {
            let back_slot = ((st.back % Self::virtual_capacity()) / VA_ENTRIES_PER_CHUNK) as usize;
            let front_done = st.front % VA_ENTRIES_PER_CHUNK == 0;
            if front_done && slot != back_slot {
                pool.release(chunk);
                st.slots[slot] = NO_STORAGE;
            }
        }
        Some(v)
    }

    fn len(&self) -> usize {
        self.approx_len.load(Ordering::Relaxed) as usize
    }

    fn tag() -> &'static str {
        "VA"
    }
}

// ---------------------------------------------------- virtualized (linked)

/// Entry capacity of one linked storage chunk (8-byte header: next, unused).
pub const VL_ENTRIES_PER_CHUNK: u64 = (CHUNK_BYTES - 8) / 4;

struct VlState {
    front_chunk: u32,
    front_idx: u64,
    back_chunk: u32,
    back_idx: u64,
    len: u64,
}

/// Virtualized linked-chunk queue: unlimited virtual size, no pointer array.
pub struct VirtLinkedQueue {
    lock: Spin,
    // memlint: allow(shared-unsafe-cell) — all access is serialised by `lock` (Spin); mutual exclusion model-checked in loom_tests.
    state: std::cell::UnsafeCell<VlState>,
    approx_len: AtomicU64,
}

// SAFETY: `state` is only touched under `lock`.
unsafe impl Send for VirtLinkedQueue {}
// SAFETY: as for Send — `lock` serialises all access to `state`.
unsafe impl Sync for VirtLinkedQueue {}

impl VirtLinkedQueue {
    fn entry_off(pool: &ChunkPool, chunk: u32, idx: u64) -> u64 {
        pool.chunk_base(chunk) + 8 + idx * 4
    }
}

impl IndexQueue for VirtLinkedQueue {
    fn create(_capacity_hint: u64) -> Self {
        VirtLinkedQueue {
            lock: Spin::new(),
            state: std::cell::UnsafeCell::new(VlState {
                front_chunk: NO_STORAGE,
                front_idx: 0,
                back_chunk: NO_STORAGE,
                back_idx: 0,
                len: 0,
            }),
            approx_len: AtomicU64::new(0),
        }
    }

    fn enqueue_with(
        &self,
        pool: &ChunkPool,
        heap: &DeviceHeap,
        v: u32,
        spins: &mut u64,
    ) -> Result<(), QueueError> {
        let _g = self.lock.lock_counted(spins);
        // SAFETY: lock held.
        let st = unsafe { &mut *self.state.get() };
        if st.back_chunk == NO_STORAGE || st.back_idx == VL_ENTRIES_PER_CHUNK {
            let c = pool.acquire(CLASS_QUEUE).ok_or(QueueError::OutOfChunks)?;
            heap.store_u32(pool.chunk_base(c), NO_STORAGE); // next link
            if st.back_chunk != NO_STORAGE {
                heap.store_u32(pool.chunk_base(st.back_chunk), c);
            } else {
                st.front_chunk = c;
                st.front_idx = 0;
            }
            st.back_chunk = c;
            st.back_idx = 0;
        }
        heap.store_u32(Self::entry_off(pool, st.back_chunk, st.back_idx), v);
        st.back_idx += 1;
        st.len += 1;
        self.approx_len.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn dequeue_with(&self, pool: &ChunkPool, heap: &DeviceHeap, spins: &mut u64) -> Option<u32> {
        let _g = self.lock.lock_counted(spins);
        // SAFETY: lock held.
        let st = unsafe { &mut *self.state.get() };
        if st.len == 0 {
            return None;
        }
        let v = heap.load_u32(Self::entry_off(pool, st.front_chunk, st.front_idx));
        st.front_idx += 1;
        st.len -= 1;
        self.approx_len.fetch_sub(1, Ordering::Relaxed);
        // Front chunk exhausted: follow the link and release it.
        if st.front_idx == VL_ENTRIES_PER_CHUNK {
            let next = heap.load_u32(pool.chunk_base(st.front_chunk));
            pool.release(st.front_chunk);
            st.front_chunk = next;
            st.front_idx = 0;
            if next == NO_STORAGE {
                st.back_chunk = NO_STORAGE;
                st.back_idx = 0;
                debug_assert_eq!(st.len, 0);
            }
        } else if st.len == 0 {
            // Queue drained mid-chunk: keep the chunk, reset the cursors so
            // the chunk is reused from the top.
            st.back_idx = st.front_idx;
        }
        Some(v)
    }

    fn len(&self) -> usize {
        self.approx_len.load(Ordering::Relaxed) as usize
    }

    fn tag() -> &'static str {
        "VL"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn env(chunks: u32) -> (Arc<DeviceHeap>, ChunkPool) {
        (Arc::new(DeviceHeap::new(chunks as u64 * CHUNK_BYTES)), ChunkPool::new(chunks))
    }

    fn fifo_roundtrip<Q: IndexQueue>() {
        let (heap, pool) = env(16);
        let q = Q::create(1024);
        assert!(q.is_empty());
        for v in 0..100 {
            q.enqueue(&pool, &heap, v).unwrap();
        }
        assert_eq!(q.len(), 100);
        for v in 0..100 {
            assert_eq!(q.dequeue(&pool, &heap), Some(v), "FIFO order");
        }
        assert_eq!(q.dequeue(&pool, &heap), None);
    }

    #[test]
    fn standard_fifo() {
        fifo_roundtrip::<StandardQueue>();
    }

    #[test]
    fn va_fifo() {
        fifo_roundtrip::<VirtArrayQueue>();
    }

    #[test]
    fn vl_fifo() {
        fifo_roundtrip::<VirtLinkedQueue>();
    }

    #[test]
    fn standard_full_reports() {
        let (heap, pool) = env(1);
        let q = StandardQueue::create(64);
        for v in 0..64 {
            q.enqueue(&pool, &heap, v).unwrap();
        }
        assert_eq!(q.enqueue(&pool, &heap, 999), Err(QueueError::Full));
    }

    fn virtualized_storage_cycles<Q: IndexQueue>() {
        let (heap, pool) = env(8);
        let q = Q::create(0);
        // Push/pop far more entries than one chunk holds; storage chunks
        // must be acquired and released along the way.
        let n = 3 * VA_ENTRIES_PER_CHUNK as u32;
        for round in 0..3 {
            for v in 0..n {
                q.enqueue(&pool, &heap, round * n + v).unwrap();
            }
            for v in 0..n {
                assert_eq!(q.dequeue(&pool, &heap), Some(round * n + v));
            }
        }
        // All storage must be back in the pool: we can still acquire
        // nearly all chunks (at most one may be parked by the queue).
        let mut got = 0;
        while pool.acquire(0).is_some() {
            got += 1;
        }
        assert!(got >= 7, "queue leaked storage chunks: only {got} reusable");
    }

    #[test]
    fn va_storage_cycles() {
        virtualized_storage_cycles::<VirtArrayQueue>();
    }

    #[test]
    fn vl_storage_cycles() {
        virtualized_storage_cycles::<VirtLinkedQueue>();
    }

    #[test]
    fn virtualized_out_of_chunks_surfaces() {
        let (heap, pool) = env(1);
        pool.acquire(0).unwrap(); // drain the pool
        let q = VirtLinkedQueue::create(0);
        assert_eq!(q.enqueue(&pool, &heap, 1), Err(QueueError::OutOfChunks));
    }

    fn concurrent_conservation<Q: IndexQueue + 'static>() {
        let (heap, pool) = env(32);
        let q = Arc::new(Q::create(1 << 16));
        let heap = Arc::new(heap);
        let pool = Arc::new(pool);
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let q = q.clone();
            let heap = Arc::clone(&heap);
            let pool = Arc::clone(&pool);
            handles.push(std::thread::spawn(move || {
                let mut popped = Vec::new();
                for i in 0..2000u32 {
                    let v = t * 10_000 + i + 1;
                    while q.enqueue(&pool, &heap, v).is_err() {
                        gpumem_core::sync::hint::spin_loop();
                    }
                    if i % 2 == 1 {
                        if let Some(v) = q.dequeue(&pool, &heap) {
                            popped.push(v);
                        }
                    }
                }
                popped
            }));
        }
        let mut all: Vec<u32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        // Drain the rest.
        while let Some(v) = q.dequeue(&pool, &heap) {
            all.push(v);
        }
        assert_eq!(all.len(), 8000, "elements lost or duplicated");
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000);
    }

    #[test]
    fn standard_concurrent() {
        concurrent_conservation::<StandardQueue>();
    }

    #[test]
    fn va_concurrent() {
        concurrent_conservation::<VirtArrayQueue>();
    }

    #[test]
    fn vl_concurrent() {
        concurrent_conservation::<VirtLinkedQueue>();
    }

    #[test]
    fn tags() {
        assert_eq!(StandardQueue::tag(), "S");
        assert_eq!(VirtArrayQueue::tag(), "VA");
        assert_eq!(VirtLinkedQueue::tag(), "VL");
    }
}

/// Model-checked interleaving suite (built with `RUSTFLAGS="--cfg loom"`).
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use gpumem_core::sync::model;
    use gpumem_core::sync::thread;
    use std::sync::Arc;

    fn fixture() -> (Arc<ChunkPool>, Arc<DeviceHeap>, Arc<StandardQueue>) {
        (
            Arc::new(ChunkPool::new(4)),
            Arc::new(DeviceHeap::new(4 * crate::pool::CHUNK_BYTES)),
            Arc::new(StandardQueue::create(64)),
        )
    }

    /// Two concurrent enqueues both land and dequeue returns each exactly
    /// once — the ticket CAS plus seq Release/Acquire pair conserves
    /// elements under every schedule.
    #[test]
    fn standard_queue_concurrent_enqueues_conserve() {
        model(|| {
            let (pool, heap, q) = fixture();
            let spawn_enq = |v: u32| {
                let (pool, heap, q) = (pool.clone(), heap.clone(), q.clone());
                thread::spawn(move || {
                    let mut spins = 0;
                    q.enqueue_with(&pool, &heap, v, &mut spins).unwrap();
                })
            };
            let h1 = spawn_enq(11);
            let h2 = spawn_enq(22);
            h1.join().unwrap();
            h2.join().unwrap();
            let mut spins = 0;
            let mut got = vec![
                q.dequeue_with(&pool, &heap, &mut spins).expect("first element"),
                q.dequeue_with(&pool, &heap, &mut spins).expect("second element"),
            ];
            got.sort_unstable();
            assert_eq!(got, vec![11, 22], "enqueued values lost or duplicated");
            assert_eq!(q.dequeue_with(&pool, &heap, &mut spins), None);
        });
    }

    /// Concurrent enqueue vs. dequeue: the dequeuer either sees the (whole)
    /// element or an empty queue — never a torn/stale slot value. This is
    /// the "dequeue index reads" audit target: the Relaxed val/ticket loads
    /// are safe only because the seq word carries the Release/Acquire edge.
    #[test]
    fn standard_queue_enqueue_vs_dequeue() {
        model(|| {
            let (pool, heap, q) = fixture();
            let enq = {
                let (pool, heap, q) = (pool.clone(), heap.clone(), q.clone());
                thread::spawn(move || {
                    let mut spins = 0;
                    q.enqueue_with(&pool, &heap, 77, &mut spins).unwrap();
                })
            };
            let deq = {
                let (pool, heap, q) = (pool.clone(), heap.clone(), q.clone());
                thread::spawn(move || {
                    let mut spins = 0;
                    q.dequeue_with(&pool, &heap, &mut spins)
                })
            };
            enq.join().unwrap();
            let got = deq.join().unwrap();
            if let Some(v) = got {
                assert_eq!(v, 77, "dequeue returned a value never enqueued");
            }
            // Whatever the racer saw, the element must be drainable now.
            let mut spins = 0;
            if got.is_none() {
                assert_eq!(q.dequeue_with(&pool, &heap, &mut spins), Some(77));
            }
            assert_eq!(q.dequeue_with(&pool, &heap, &mut spins), None);
        });
    }

    /// The spin lock guarding the virtualized queues' multi-word state is
    /// mutually exclusive: two locked increments of a plain counter never
    /// lose an update.
    #[test]
    fn spin_lock_is_mutually_exclusive() {
        model(|| {
            struct Guarded {
                lock: Spin,
                cell: std::cell::UnsafeCell<u32>,
            }
            // SAFETY: `cell` is only touched under `lock` (that exclusivity
            // is exactly what this model verifies).
            unsafe impl Sync for Guarded {}
            let g = Arc::new(Guarded { lock: Spin::new(), cell: std::cell::UnsafeCell::new(0) });
            let spawn_inc = || {
                let g = g.clone();
                thread::spawn(move || {
                    let mut spins = 0;
                    let _guard = g.lock.lock_counted(&mut spins);
                    // SAFETY: under the spin lock.
                    unsafe { *g.cell.get() += 1 };
                })
            };
            let h1 = spawn_inc();
            let h2 = spawn_inc();
            h1.join().unwrap();
            h2.join().unwrap();
            let mut spins = 0;
            let _guard = g.lock.lock_counted(&mut spins);
            // SAFETY: under the spin lock.
            assert_eq!(unsafe { *g.cell.get() }, 2, "lost update under the spin lock");
        });
    }
}
